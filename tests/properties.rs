//! Property-based tests (proptest) over the core data structures and
//! protocol invariants.

use alpha::core::{Association, Config, Mode, Reliability, Timestamp};
use alpha::crypto::chain::{ChainKind, ChainVerifier, HashChain};
use alpha::crypto::merkle::{self, MerkleTree};
use alpha::crypto::{amt, Algorithm, Digest};
use alpha::wire::{
    A2Disclosure, AckCommit, Body, Handshake, HandshakeAuth, HandshakeRole, Packet, PreSignature,
};
use proptest::prelude::*;
use rand::SeedableRng;

const T0: Timestamp = Timestamp::ZERO;

fn algorithms() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Sha1),
        Just(Algorithm::Sha256),
        Just(Algorithm::MmoAes)
    ]
}

fn digest(alg: Algorithm) -> impl Strategy<Value = Digest> {
    proptest::collection::vec(any::<u8>(), alg.digest_len())
        .prop_map(move |v| Digest::from_slice(&v))
}

// ---------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------

fn arbitrary_packet() -> impl Strategy<Value = Packet> {
    algorithms().prop_flat_map(|alg| {
        let body = prop_oneof![
            // S1 cumulative
            (digest(alg), proptest::collection::vec(digest(alg), 1..32)).prop_map(
                move |(element, macs)| Body::S1 {
                    element,
                    presig: PreSignature::Cumulative(macs),
                }
            ),
            // S1 merkle
            (digest(alg), digest(alg), 1u32..1_000_000).prop_map(move |(element, root, leaves)| {
                Body::S1 {
                    element,
                    presig: PreSignature::MerkleRoot { root, leaves },
                }
            }),
            // S1 merkle forest (ALPHA-C + ALPHA-M combination)
            (
                digest(alg),
                proptest::collection::vec((digest(alg), 1u32..64), 1..16)
            )
                .prop_map(move |(element, trees)| Body::S1 {
                    element,
                    presig: PreSignature::MerkleForest(
                        trees
                            .into_iter()
                            .map(|(root, leaves)| alpha::wire::TreeDescriptor { root, leaves })
                            .collect(),
                    ),
                }),
            // A1 variants
            (digest(alg), digest(alg), digest(alg), any::<u8>()).prop_map(
                move |(element, a, b, pick)| Body::A1 {
                    element,
                    commit: match pick % 3 {
                        0 => AckCommit::None,
                        1 => AckCommit::Flat {
                            pre_ack: a,
                            pre_nack: b
                        },
                        _ => AckCommit::Amt { root: a, leaves: 7 },
                    },
                }
            ),
            // S2
            (
                digest(alg),
                any::<u32>(),
                proptest::collection::vec(digest(alg), 0..12),
                proptest::collection::vec(any::<u8>(), 0..300)
            )
                .prop_map(move |(key, seq, path, payload)| Body::S2 {
                    key,
                    seq,
                    path,
                    payload
                }),
            // A2 flat
            (digest(alg), any::<bool>(), any::<[u8; 16]>()).prop_map(
                move |(element, ack, secret)| {
                    Body::A2 {
                        element,
                        disclosure: A2Disclosure::Flat { ack, secret },
                    }
                }
            ),
            // Handshake
            (
                digest(alg),
                digest(alg),
                any::<u64>(),
                any::<u64>(),
                any::<bool>(),
                proptest::collection::vec(any::<u8>(), 0..64),
            )
                .prop_map(move |(sa, aa, si, ai, init, blob)| {
                    Body::Handshake(Handshake {
                        role: if init {
                            HandshakeRole::Init
                        } else {
                            HandshakeRole::Reply
                        },
                        sig_anchor: sa,
                        sig_anchor_index: si,
                        ack_anchor: aa,
                        ack_anchor_index: ai,
                        auth: if blob.is_empty() {
                            None
                        } else {
                            Some(HandshakeAuth {
                                scheme: 1,
                                public_key: blob.clone(),
                                signature: blob,
                            })
                        },
                    })
                }),
        ];
        (any::<u64>(), any::<u64>(), body).prop_map(move |(assoc_id, chain_index, body)| Packet {
            assoc_id,
            alg,
            chain_index,
            body,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wire_roundtrip(pkt in arbitrary_packet()) {
        let bytes = pkt.emit();
        let parsed = Packet::parse(&bytes).expect("own encodings parse");
        prop_assert_eq!(parsed, pkt);
    }

    #[test]
    fn wire_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Packet::parse(&bytes); // must not panic, leak, or loop
    }

    #[test]
    fn wire_truncation_always_errors(pkt in arbitrary_packet(), cut in 0usize..64) {
        let bytes = pkt.emit();
        if cut < bytes.len() {
            let prefix = &bytes[..bytes.len() - 1 - cut % bytes.len().max(1)];
            prop_assert!(Packet::parse(prefix).is_err());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Piggyback bundles of arbitrary packets round-trip, and arbitrary
    /// bytes never panic the bundle parser.
    #[test]
    fn bundle_roundtrip_and_robustness(
        pkts in proptest::collection::vec(arbitrary_packet(), 1..16),
        junk in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let frame = alpha::wire::bundle::emit(&pkts).expect("1..=16 packets fit a bundle");
        prop_assert_eq!(alpha::wire::bundle::parse(&frame).unwrap(), pkts);
        let _ = alpha::wire::bundle::parse(&junk); // must not panic
        // A bundle-tagged prefix over junk must not panic either.
        let mut tagged = vec![0xB1];
        tagged.extend_from_slice(&junk);
        let _ = alpha::wire::bundle::parse(&tagged);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating an encoded packet at *every* byte offset must error out
    /// of both decoders (owned and borrowed) without panicking, and both
    /// must report the same error.
    #[test]
    fn truncation_at_every_offset_agrees(pkt in arbitrary_packet()) {
        let bytes = pkt.emit();
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            let owned = Packet::parse(prefix);
            let view = alpha::wire::PacketView::parse(prefix);
            prop_assert!(owned.is_err(), "prefix of {} bytes decoded", cut);
            match (owned, view) {
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "error mismatch at cut {}", cut),
                _ => prop_assert!(false, "view decoded a prefix the owned decoder rejected"),
            }
        }
    }

    /// Flipping any single byte of an encoded packet never panics either
    /// decoder, and the borrowed view never disagrees with the owned
    /// decode: both succeed with identical packets or fail identically.
    #[test]
    fn single_flipped_byte_never_diverges(
        pkt in arbitrary_packet(),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let mut bytes = pkt.emit();
        let pos = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[pos] ^= xor;
        match (Packet::parse(&bytes), alpha::wire::PacketView::parse(&bytes)) {
            (Ok(p), Ok(v)) => prop_assert_eq!(v.to_packet(), p),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (owned, view) => prop_assert!(
                false,
                "decoders diverge at byte {}: owned {:?}, view {:?}",
                pos,
                owned.is_ok(),
                view.is_ok()
            ),
        }
    }

    /// On completely arbitrary bytes the two decoders agree byte for byte.
    #[test]
    fn view_never_disagrees_with_owned(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        match (Packet::parse(&bytes), alpha::wire::PacketView::parse(&bytes)) {
            (Ok(p), Ok(v)) => prop_assert_eq!(v.to_packet(), p),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "owned and view decode disagree"),
        }
    }
}

// ---------------------------------------------------------------------
// Hash chains
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chain_any_element_verifies_against_anchor(
        seed in any::<[u8; 16]>(),
        len in 2u64..80,
        idx_frac in 0.0f64..1.0,
    ) {
        let chain = HashChain::from_seed(Algorithm::Sha1, ChainKind::RoleBoundSignature, len, &seed);
        let n = chain.anchor_index();
        let idx = 1 + ((idx_frac * (n - 1) as f64) as u64).min(n - 2);
        let verifier = ChainVerifier::new(
            Algorithm::Sha1,
            ChainKind::RoleBoundSignature,
            chain.anchor(),
            n,
        ).with_max_skip(n);
        prop_assert!(verifier.check(idx, &chain.element(idx)).is_ok());
    }

    #[test]
    fn chain_cross_seed_never_verifies(
        seed_a in any::<[u8; 16]>(),
        seed_b in any::<[u8; 16]>(),
        idx in 1u64..15,
    ) {
        prop_assume!(seed_a != seed_b);
        let a = HashChain::from_seed(Algorithm::Sha1, ChainKind::RoleBoundSignature, 16, &seed_a);
        let b = HashChain::from_seed(Algorithm::Sha1, ChainKind::RoleBoundSignature, 16, &seed_b);
        let verifier = ChainVerifier::new(
            Algorithm::Sha1,
            ChainKind::RoleBoundSignature,
            a.anchor(),
            a.anchor_index(),
        ).with_max_skip(64);
        prop_assert!(verifier.check(idx, &b.element(idx)).is_err());
    }

    #[test]
    fn chain_disclosure_order_strictly_descends(seed in any::<[u8; 16]>(), len in 4u64..64) {
        let mut chain = HashChain::from_seed(Algorithm::Sha1, ChainKind::RoleBoundAck, len, &seed);
        let mut last = u64::MAX;
        while let Ok((announce, key)) = chain.disclose_pair() {
            prop_assert!(announce.0 < last);
            prop_assert_eq!(key.0, announce.0 - 1);
            last = key.0;
        }
    }
}

// ---------------------------------------------------------------------
// Merkle trees / AMT
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merkle_every_leaf_proves(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 1..40),
        alg in algorithms(),
    ) {
        let tree = MerkleTree::from_messages(alg, &msgs);
        let key = alg.hash(b"key");
        let root = tree.keyed_root(&key);
        for (j, m) in msgs.iter().enumerate() {
            let leaf = alg.hash(m);
            prop_assert!(merkle::verify_keyed(alg, &key, &leaf, j, &tree.auth_path(j), &root));
        }
    }

    #[test]
    fn merkle_wrong_index_or_message_fails(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 2..20),
        wrong in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let alg = Algorithm::Sha1;
        let tree = MerkleTree::from_messages(alg, &msgs);
        let key = alg.hash(b"key");
        let root = tree.keyed_root(&key);
        // Message swap fails unless identical.
        if !msgs.contains(&wrong) {
            let leaf = alg.hash(&wrong);
            prop_assert!(!merkle::verify_keyed(alg, &key, &leaf, 0, &tree.auth_path(0), &root));
        }
        // Index swap fails unless leaves identical.
        if msgs[0] != msgs[1] {
            let leaf = alg.hash(&msgs[0]);
            prop_assert!(!merkle::verify_keyed(alg, &key, &leaf, 1, &tree.auth_path(1), &root));
        }
    }

    #[test]
    fn capacity_formula_matches_real_trees(n in 1u64..300) {
        // Per-packet signature bytes from a real tree == the formula term.
        let alg = Algorithm::Sha1;
        let msgs: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; 4]).collect();
        let tree = MerkleTree::from_messages(alg, &msgs);
        let sig = (tree.auth_path(0).len() as u64 + 1) * 20;
        prop_assert_eq!(sig, 20 * (merkle::log2_ceil(n) + 1));
    }

    #[test]
    fn amt_verdicts_are_unforgeable_across_indices(
        n in 1usize..40,
        j in 0usize..40,
        k in 0usize..40,
        ack in any::<bool>(),
    ) {
        prop_assume!(j < n && k < n && j != k);
        let alg = Algorithm::Sha1;
        let mut rng = rand::rngs::StdRng::seed_from_u64((n * 41 + j) as u64);
        let tree = amt::AckMerkleTree::generate(alg, n, &mut rng);
        let key = alg.hash(b"ack element");
        let root = tree.keyed_root(&key);
        // The real verdict verifies…
        let d = tree.disclose(j, ack);
        prop_assert_eq!(amt::verify_disclosure(alg, &key, n, &d, &root), Some(ack));
        // …and cannot be re-targeted to another packet or flipped.
        let mut retarget = d.clone();
        retarget.packet_index = k as u32;
        prop_assert_eq!(amt::verify_disclosure(alg, &key, n, &retarget, &root), None);
        let mut flip = d;
        flip.ack = !ack;
        prop_assert_eq!(amt::verify_disclosure(alg, &key, n, &flip, &root), None);
    }
}

// ---------------------------------------------------------------------
// Wire ⇄ core size formulas
// ---------------------------------------------------------------------

/// Drive one unreliable exchange and check every serialized packet
/// against the planning formulas [`Mode::s1_wire_len`] and
/// [`Mode::s2_overhead`] (the adaptation plane budgets bytes with these,
/// so they must track the real wire exactly).
///
/// The S2 constant 28 is header (21) + seq (4) + path count (1) +
/// payload length (2); key and path are the `s2_overhead` term.
fn check_exchange_sizes(alg: Algorithm, mode: Mode, payloads: &[Vec<u8>]) {
    let n = payloads.len();
    let h = alg.digest_len();
    let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
    let cfg = Config::new(alg).with_chain_len(8);
    let (mut alice, mut bob) = Association::pair(cfg, 1, &mut rng);
    let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();

    let s1 = alice.sign_batch(&refs, mode, T0).unwrap();
    assert_eq!(
        s1.wire_len(),
        mode.s1_wire_len(n, h),
        "S1 size for {mode:?} n={n} alg={alg:?}"
    );
    assert_eq!(s1.emit().len(), s1.wire_len());

    let a1 = bob.handle(&s1, T0, &mut rng).unwrap().packet().unwrap();
    let s2s = alice.handle(&a1, T0, &mut rng).unwrap().packets;
    assert_eq!(s2s.len(), n, "one S2 per message");
    for s2 in &s2s {
        let Body::S2 { seq, payload, .. } = &s2.body else {
            panic!("expected S2, got {s2:?}")
        };
        let sig_bytes = s2.wire_len() - payload.len() - 28;
        let bound = mode.s2_overhead(n, h);
        assert!(
            sig_bytes <= bound,
            "S2 overhead for {mode:?} n={n}: {sig_bytes} > formula {bound}"
        );
        // The formula is exact except for messages in a ragged final
        // CumulativeMerkle tree, whose path is shallower.
        let exact = match mode {
            Mode::CumulativeMerkle { leaves_per_tree } => {
                let lpt = leaves_per_tree.max(1);
                let tree_size = lpt.min(n - (*seq as usize / lpt) * lpt);
                tree_size == lpt.min(n)
            }
            _ => true,
        };
        if exact {
            assert_eq!(sig_bytes, bound, "S2 overhead for {mode:?} n={n} seq={seq}");
        }
        assert_eq!(s2.emit().len(), s2.wire_len());
    }
}

#[test]
fn s1_and_s2_sizes_match_formulas_for_all_modes_and_bundle_sizes() {
    // Exhaustive sweep: every mode at every bundle size 1..=64 (Base is
    // single-message by definition, so it runs at n = 1 only).
    check_exchange_sizes(Algorithm::Sha1, Mode::Base, &[vec![7u8; 33]]);
    for n in 1..=64usize {
        let payloads: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 17 + i % 5]).collect();
        check_exchange_sizes(Algorithm::Sha1, Mode::Cumulative, &payloads);
        check_exchange_sizes(Algorithm::Sha1, Mode::Merkle, &payloads);
        for lpt in [1, 3, 4, 8] {
            check_exchange_sizes(
                Algorithm::Sha1,
                Mode::CumulativeMerkle {
                    leaves_per_tree: lpt,
                },
                &payloads,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The same size laws under arbitrary algorithms, bundle sizes,
    /// tree widths and payload lengths.
    #[test]
    fn s1_and_s2_sizes_match_formulas(
        alg in algorithms(),
        mode_pick in 0u8..3,
        lpt in 1usize..=8,
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..=64),
    ) {
        let mode = match mode_pick {
            0 => Mode::Cumulative,
            1 => Mode::Merkle,
            _ => Mode::CumulativeMerkle { leaves_per_tree: lpt },
        };
        check_exchange_sizes(alg, mode, &payloads);
    }
}

// ---------------------------------------------------------------------
// Protocol invariants under random schedules
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random bundles through random modes with random S2 delivery orders
    /// and random duplication: every message delivered exactly once, with
    /// exactly its original bytes.
    #[test]
    fn exchange_delivers_exactly_once_any_order(
        seed in any::<u64>(),
        mode_pick in 0u8..3,
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..12),
        order_seed in any::<u64>(),
    ) {
        let mode = match mode_pick {
            0 => Mode::Base,
            1 => Mode::Cumulative,
            _ => Mode::Merkle,
        };
        let msgs = if mode == Mode::Base { vec![msgs[0].clone()] } else { msgs };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = Config::new(Algorithm::Sha1).with_chain_len(32);
        let (mut alice, mut bob) = Association::pair(cfg, 1, &mut rng);
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let s1 = alice.sign_batch(&refs, mode, T0).unwrap();
        let a1 = bob.handle(&s1, T0, &mut rng).unwrap().packet().unwrap();
        let mut s2s = alice.handle(&a1, T0, &mut rng).unwrap().packets;
        // Shuffle and duplicate the S2s.
        let mut order_rng = rand::rngs::StdRng::seed_from_u64(order_seed);
        use rand::seq::SliceRandom;
        let dups: Vec<_> = s2s.clone();
        s2s.extend(dups);
        s2s.shuffle(&mut order_rng);
        let mut delivered: Vec<(u32, Vec<u8>)> = Vec::new();
        for s2 in &s2s {
            let resp = bob.handle(s2, T0, &mut rng).unwrap();
            delivered.extend(resp.deliveries);
        }
        prop_assert_eq!(delivered.len(), msgs.len(), "exactly-once");
        delivered.sort_by_key(|(seq, _)| *seq);
        for (i, (seq, payload)) in delivered.iter().enumerate() {
            prop_assert_eq!(*seq as usize, i);
            prop_assert_eq!(payload, &msgs[i]);
        }
    }

    /// Any single-byte corruption of an S2 payload or MAC key is rejected.
    #[test]
    fn any_s2_corruption_rejected(
        seed in any::<u64>(),
        flip_byte in any::<u8>(),
        flip_pos_frac in 0.0f64..1.0,
    ) {
        prop_assume!(flip_byte != 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = Config::new(Algorithm::Sha1).with_chain_len(16);
        let (mut alice, mut bob) = Association::pair(cfg, 1, &mut rng);
        let s1 = alice.sign(b"integrity protected payload", T0).unwrap();
        let a1 = bob.handle(&s1, T0, &mut rng).unwrap().packet().unwrap();
        let s2 = alice.handle(&a1, T0, &mut rng).unwrap().packets.remove(0);
        let mut bytes = s2.emit();
        // Flip one byte anywhere beyond the 21-byte header.
        let pos = 21 + ((flip_pos_frac * (bytes.len() - 21) as f64) as usize).min(bytes.len() - 22);
        bytes[pos] ^= flip_byte;
        match Packet::parse(&bytes) {
            Err(_) => {} // parser caught it
            Ok(corrupted) => {
                // Protocol layer must reject; never deliver wrong bytes.
                match bob.handle(&corrupted, T0, &mut rng) {
                    Err(_) => {}
                    Ok(resp) => {
                        for (_, p) in &resp.deliveries {
                            prop_assert_eq!(p.as_slice(), b"integrity protected payload".as_slice());
                        }
                    }
                }
            }
        }
    }

    /// Reliable-mode exchanges complete under arbitrary loss patterns once
    /// retransmission is driven long enough.
    #[test]
    fn reliable_exchange_converges_under_loss(
        seed in any::<u64>(),
        loss_mask in any::<u32>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = Config::new(Algorithm::Sha1)
            .with_chain_len(16)
            .with_reliability(Reliability::Reliable)
            .with_rto_micros(1_000);
        let (mut alice, mut bob) = Association::pair(cfg, 1, &mut rng);
        let msgs: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 50]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let mut wire: Vec<Packet> = vec![alice.sign_batch(&refs, Mode::Merkle, T0).unwrap()];
        let mut t = T0;
        let mut drop_idx = 0u32;
        for _ in 0..400 {
            if alice.signer().is_idle() {
                break;
            }
            let mut next = Vec::new();
            for pkt in wire.drain(..) {
                // Drop packets per the loss mask (cycled).
                let lose = (loss_mask >> (drop_idx % 32)) & 1 == 1;
                drop_idx += 1;
                if lose {
                    continue;
                }
                let resp = match pkt.packet_type() {
                    alpha::wire::PacketType::S1 | alpha::wire::PacketType::S2 => {
                        bob.handle(&pkt, t, &mut rng)
                    }
                    _ => alice.handle(&pkt, t, &mut rng),
                };
                if let Ok(resp) = resp {
                    next.extend(resp.packets);
                }
            }
            t = t.plus_micros(1_100);
            next.extend(alice.poll(t).packets);
            bob.verifier().poll(t);
            wire = next;
        }
        // With ≤50% structured loss and 400 rounds, the exchange converges
        // unless the mask drops everything.
        if loss_mask.count_ones() < 30 {
            prop_assert!(alice.signer().is_idle(), "exchange converged");
        }
    }
}

// ---------------------------------------------------------------------
// Relay robustness: arbitrary packets never panic, never forge
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A relay with a live association fed arbitrary well-formed packets:
    /// must never panic, and must never emit a VerifiedPayload for content
    /// the signer did not send.
    #[test]
    fn relay_survives_arbitrary_packets(pkt in arbitrary_packet(), seed in any::<u64>()) {
        use alpha::core::{bootstrap, Relay, RelayConfig, RelayEvent};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = Config::new(pkt.alg).with_chain_len(16);
        let (hs, init) = bootstrap::initiate(cfg, pkt.assoc_id, None, &mut rng);
        let mut relay = Relay::new(RelayConfig { s1_bytes_per_sec: None, ..RelayConfig::default() });
        relay.observe(&init, T0);
        let (_bob, reply, _) = bootstrap::respond(
            cfg,
            &init,
            None,
            bootstrap::AuthRequirement::None,
            &mut rng,
        )
        .unwrap();
        relay.observe(&reply, T0);
        let _ = hs;
        // The arbitrary packet claims this association: whatever happens,
        // no panic, and no extraction of unverified payloads.
        let (_decision, events) = relay.observe(&pkt, T0);
        for ev in events {
            prop_assert!(
                !matches!(ev, RelayEvent::VerifiedPayload { .. }),
                "relay extracted a payload from an arbitrary packet"
            );
        }
    }

    /// Endpoints fed arbitrary packets for their own association id and
    /// algorithm never panic and never deliver unverified payloads.
    #[test]
    fn endpoint_survives_arbitrary_packets(pkt in arbitrary_packet(), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = Config::new(pkt.alg).with_chain_len(16);
        let (mut alice, mut bob) = Association::pair(cfg, pkt.assoc_id, &mut rng);
        for host in [&mut alice, &mut bob] {
            match host.handle(&pkt, T0, &mut rng) {
                Err(_) => {}
                Ok(resp) => prop_assert!(
                    resp.deliveries.is_empty(),
                    "arbitrary packet produced a delivery"
                ),
            }
        }
    }
}
