//! Multi-hop relay mesh: chained per-hop verification, the static
//! relay-set bypass defense, and live path failover over loopback UDP.

use std::net::SocketAddr;

use alpha::core::{Config, Mode, Timestamp};
use alpha::crypto::Algorithm;
use alpha::engine::{EngineConfig, EngineCore, EngineOutput};
use alpha::wire::{bundle, PacketType};

fn base_cfg() -> Config {
    Config::new(Algorithm::Sha1).with_chain_len(64)
}

fn addr(p: u16) -> SocketAddr {
    format!("10.77.0.1:{p}").parse().unwrap()
}

/// A relay-role engine in mesh mode: accepts traffic only from `up` and
/// `down`, routes `left`'s datagrams toward `right` (and back).
fn mesh_relay(cfg: Config, up: SocketAddr, down: SocketAddr) -> EngineCore {
    let mut ecfg = EngineConfig::new(cfg);
    ecfg.accept_handshakes = false;
    let core = EngineCore::new(ecfg);
    core.mesh_enable(true);
    core.mesh_register_peer(up);
    core.mesh_register_peer(down);
    core
}

/// Deliver queued datagrams until the net is quiet, dispatching each to
/// the core bound at its destination address. `hold` intercepts: the
/// first datagram it matches is returned instead of delivered.
fn pump(
    net: &mut Vec<(SocketAddr, SocketAddr, Vec<u8>)>,
    nodes: &[(SocketAddr, &EngineCore)],
    rng: &mut impl rand::RngCore,
    mut hold: impl FnMut(SocketAddr, SocketAddr, &[u8]) -> bool,
) -> Option<(SocketAddr, SocketAddr, Vec<u8>)> {
    for step in 0..256 {
        if net.is_empty() {
            return None;
        }
        let now = Timestamp::from_millis(10 + step);
        for (src, dst, bytes) in std::mem::take(net) {
            if hold(src, dst, &bytes) {
                return Some((src, dst, bytes));
            }
            let core = nodes
                .iter()
                .find(|(a, _)| *a == dst)
                .map(|(_, c)| *c)
                .unwrap_or_else(|| panic!("datagram to unbound address {dst}"));
            let out = core.handle_datagram(src, &bytes, now, rng);
            queue(net, dst, out);
        }
    }
    None
}

fn queue(net: &mut Vec<(SocketAddr, SocketAddr, Vec<u8>)>, src: SocketAddr, out: EngineOutput) {
    for (dst, frame) in out.datagrams {
        net.push((src, dst, frame.into_vec()));
    }
}

fn contains_s2(bytes: &[u8]) -> bool {
    bundle::parse(bytes)
        .map(|pkts| pkts.iter().any(|p| p.packet_type() == PacketType::S2))
        .unwrap_or(false)
}

/// A 3-hop chain of mesh relays (client → R1 → R2 → R3 → server), all
/// verifying. A perfectly timed forgery of the payload inside a legit
/// S2 must die at hop 2 — the hop that sees it first — and the original
/// S2 must still deliver end-to-end afterwards. A replay of the valid
/// S2 from an address outside the relay set must be rejected before any
/// crypto (the §3.5 static-relay-set bypass defense).
#[test]
fn forged_s2_dies_at_hop_two_and_foreign_sources_are_rejected() {
    use std::sync::atomic::Ordering::Relaxed;
    let cfg = base_cfg();
    let mut rng = alpha::test_rng(77);
    let (c, r1, r2, r3, s) = (addr(100), addr(1), addr(2), addr(3), addr(200));

    let client = EngineCore::new(EngineConfig::new(cfg));
    let server = EngineCore::new(EngineConfig::new(cfg));
    let rc1 = mesh_relay(cfg, c, r2);
    let rc2 = mesh_relay(cfg, r1, r3);
    let rc3 = mesh_relay(cfg, r2, s);
    rc1.add_route(c, r2);
    rc2.add_route(r1, r3);
    rc3.add_route(r2, s);
    let nodes: [(SocketAddr, &EngineCore); 5] = [
        (c, &client),
        (r1, &rc1),
        (r2, &rc2),
        (r3, &rc3),
        (s, &server),
    ];

    // Bootstrap through the chain, then stage one Base exchange and
    // intercept the S2 on the wire between hop 1 and hop 2.
    let mut net = Vec::new();
    let (key, out) = client.connect(r1, 7, Timestamp::from_millis(1), &mut rng);
    queue(&mut net, c, out);
    assert!(pump(&mut net, &nodes, &mut rng, |_, _, _| false).is_none());
    assert!(client.flow_is_idle(key), "handshake completed");

    let payload = b"hop-by-hop authenticated payload";
    let out = client
        .sign_batch(key, &[payload], Mode::Base, Timestamp::from_millis(5))
        .expect("sign");
    queue(&mut net, c, out);
    let (src, _dst, s2_bytes) = pump(&mut net, &nodes, &mut rng, |src, dst, bytes| {
        src == r1 && dst == r2 && contains_s2(bytes)
    })
    .expect("S2 must appear on the r1 → r2 link");
    assert_eq!(src, r1);

    // Forge: flip one byte of the payload inside the otherwise-valid S2.
    let at = s2_bytes
        .windows(payload.len())
        .position(|w| w == payload)
        .expect("payload travels inside the S2");
    let mut forged = s2_bytes.clone();
    forged[at] ^= 0x01;
    let hop3_seen = rc3.metrics().packets_in.load(Relaxed);
    let now = Timestamp::from_millis(20);
    let out = rc2.handle_datagram(r1, &forged, now, &mut rng);
    assert!(
        out.datagrams.is_empty() && out.extracted.is_empty(),
        "hop 2 must drop the forged S2, not forward it"
    );
    assert_eq!(rc2.metrics().verify_failures.load(Relaxed), 1);
    assert_eq!(
        rc3.metrics().packets_in.load(Relaxed),
        hop3_seen,
        "the forgery never reached hop 3"
    );

    // Bypass attempt: the *valid* S2 replayed from an address outside
    // the registered relay set is refused without inspection.
    let intruder = addr(666);
    let out = rc2.handle_datagram(intruder, &s2_bytes, now, &mut rng);
    assert!(out.datagrams.is_empty() && out.extracted.is_empty());
    assert_eq!(
        rc2.core_mesh_upstream_rejects(),
        1,
        "foreign source counted as an upstream reject"
    );

    // The original S2 still verifies at hop 2 and delivers end-to-end.
    let out = rc2.handle_datagram(r1, &s2_bytes, now, &mut rng);
    assert!(!out.datagrams.is_empty(), "legit S2 forwarded");
    queue(&mut net, r2, out);
    assert!(pump(&mut net, &nodes, &mut rng, |_, _, _| false).is_none());
    for (rc, hop) in [(&rc1, 1), (&rc2, 2), (&rc3, 3)] {
        assert_eq!(
            rc.metrics().s2_verified.load(Relaxed),
            1,
            "hop {hop} verified the payload in transit"
        );
    }
    assert_eq!(
        server.metrics().s2_verified.load(Relaxed),
        1,
        "server delivered the payload"
    );
}

/// Convenience: `metrics().mesh.upstream_rejects` through one call.
trait MeshRejects {
    fn core_mesh_upstream_rejects(&self) -> u64;
}

impl MeshRejects for EngineCore {
    fn core_mesh_upstream_rejects(&self) -> u64 {
        use std::sync::atomic::Ordering::Relaxed;
        self.metrics().mesh.upstream_rejects.load(Relaxed)
    }
}

/// The flagship end-to-end scenario over real loopback UDP: a 3-hop
/// chain (client → R1 → R2 → verifier) where R2 is shadowed by a
/// standby R2b. Mid-stream, R2 is killed. R1 (forward path) and the
/// verifier (reverse path) must each detect the death within a bounded
/// number of probe intervals and re-route the live flow to R2b, and the
/// stream must complete with full verification at every surviving hop.
#[test]
fn live_three_hop_chain_survives_mid_path_relay_death() {
    use alpha::mesh::{MeshConfig, MeshNode, MeshNodeConfig};
    use alpha::transport::{HandshakeAuth, UdpHost};
    use std::net::UdpSocket;
    use std::sync::atomic::Ordering::Relaxed;
    use std::time::Duration;

    let cfg = base_cfg().with_reliability(alpha::core::Reliability::Reliable);
    let fast = MeshConfig {
        probe_interval_us: 20_000,
        initial_rto_us: 40_000,
        ..MeshConfig::default()
    };
    let relay_engine = || {
        let mut ecfg = EngineConfig::new(cfg);
        ecfg.accept_handshakes = false;
        ecfg
    };
    let any: SocketAddr = "127.0.0.1:0".parse().unwrap();

    // The client's socket is reserved first: R1 needs its address both
    // in the upstream accept set and as a route source.
    let client_sock = UdpSocket::bind("127.0.0.1:0").expect("client sock");
    let client_addr = client_sock.local_addr().unwrap();

    // Spawn back-to-front so each node knows its next hop's address.
    let mut vcfg = MeshNodeConfig::new(any, EngineConfig::new(cfg));
    vcfg.mesh = fast;
    let verifier = MeshNode::spawn(vcfg).expect("verifier");
    let v_addr = verifier.local_addr().unwrap();

    let spawn_mid = |label: &str| {
        let mut c = MeshNodeConfig::new(any, relay_engine());
        c.mesh = fast;
        c.next_hops = vec![v_addr];
        let node = MeshNode::spawn(c).unwrap_or_else(|e| panic!("{label}: {e}"));
        let addr = node.local_addr().unwrap();
        (node, addr)
    };
    let (r2, r2_addr) = spawn_mid("r2");
    let (r2b, r2b_addr) = spawn_mid("r2b");

    let mut c1 = MeshNodeConfig::new(any, relay_engine());
    c1.mesh = fast;
    c1.upstreams = vec![client_addr];
    c1.next_hops = vec![r2_addr, r2b_addr]; // primary + standby
    c1.route_sources = vec![client_addr];
    let r1 = MeshNode::spawn(c1).expect("r1");
    let r1_addr = r1.local_addr().unwrap();

    // Close the bind-order cycle: the mid relays learn their upstream,
    // and the verifier registers both mid relays so its reverse path
    // has a failover candidate (probing both).
    for mid in [&r2, &r2b] {
        mid.join_upstream(r1_addr);
        mid.core().add_route(r1_addr, v_addr);
    }
    verifier.join_upstream(r2_addr);
    verifier.join_upstream(r2b_addr);

    // Stream 6 reliable Cumulative batches; kill R2 after the second.
    const BATCHES: usize = 6;
    const PER_BATCH: usize = 5;
    let mut host = UdpHost::connect_socket(
        cfg,
        42,
        client_sock,
        r1_addr,
        Duration::from_secs(20),
        HandshakeAuth::default(),
    )
    .expect("client handshake through the chain");
    let mut r2_alive = Some(r2);
    for b in 0..BATCHES {
        let msgs: Vec<String> = (0..PER_BATCH)
            .map(|i| format!("batch {b} message {i}"))
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(String::as_bytes).collect();
        host.send_batch(&refs, Mode::Cumulative, Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("batch {b} failed: {e}"));
        if b == 1 {
            // Mid-stream crash of the primary mid-path relay.
            r2_alive.take().expect("r2 still running").shutdown();
        }
    }

    // Both neighbours of the dead relay re-routed the live flow.
    assert!(
        r1.failovers() >= 1,
        "R1 never failed the forward path over: {}",
        r1.peers_json()
    );
    assert!(
        verifier.failovers() >= 1,
        "verifier never failed the reverse path over: {}",
        verifier.peers_json()
    );
    // The standby carried (and verified) the tail of the stream.
    assert!(
        r2b.core().metrics().s2_verified.load(Relaxed) > 0,
        "standby verified no traffic: {}",
        r2b.stats_json()
    );
    // Every hop of the surviving path ran full verification; the
    // verifier delivered every exchange of the stream.
    assert!(r1.core().metrics().s2_verified.load(Relaxed) >= BATCHES as u64);
    assert!(verifier.core().metrics().s2_verified.load(Relaxed) >= BATCHES as u64);
    assert!(
        r1.peers_json().contains("\"health\":\"down\""),
        "R1's registry records the dead peer: {}",
        r1.peers_json()
    );

    r1.shutdown();
    r2b.shutdown();
    verifier.shutdown();
}
