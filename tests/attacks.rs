//! Adversarial test suite: every attack the paper names, executed against
//! the real implementation.
//!
//! | attack | paper section | expected outcome |
//! |---|---|---|
//! | reformatting (reuse S2 key as S1 element) | §3.2.1 | rejected by role binding |
//! | pre-(n)ack forgery / replay | §3.2.2 | rejected |
//! | AMT verdict mix-and-match across exchanges | §3.3.3 | rejected |
//! | handshake downgrade (strip the signature) | §3.4 | rejected under Pinned/AnyKey |
//! | cross-chain element confusion (ack vs sig) | §3.1 | rejected by domain separation |
//! | S2 replay into a later exchange | §3.1 | rejected by chain descent |

use alpha::core::bootstrap::{self, AuthRequirement};
use alpha::core::{Association, Config, Mode, ProtocolError, Reliability, Timestamp};
use alpha::crypto::Algorithm;
use alpha::pk::Signer;
use alpha::wire::{A2Disclosure, AckCommit, Body, Packet, PreSignature};
use rand::rngs::StdRng;
use rand::SeedableRng;

const T0: Timestamp = Timestamp::ZERO;

fn cfg() -> Config {
    Config::new(Algorithm::Sha1).with_chain_len(64)
}

fn pair(seed: u64, c: Config) -> (Association, Association, StdRng) {
    let mut r = StdRng::seed_from_u64(seed);
    let (a, b) = Association::pair(c, 1, &mut r);
    (a, b, r)
}

/// The reformatting attack (§3.2.1): an attacker takes the key disclosed
/// in an S2 and replays it as the *announce* element of a forged S1 whose
/// pre-signature it can now compute. Role binding makes announce and key
/// elements structurally distinct, so the forged S1 dies at the chain
/// check.
#[test]
fn reformatting_attack_rejected_by_role_binding() {
    let (mut alice, mut bob, mut r) = pair(1, cfg());
    let s1 = alice.sign(b"legit", T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    bob.handle(&s2, T0, &mut r).unwrap();

    // Attacker extracts the disclosed key (an even-position element) and
    // builds an S1 from it.
    let (key, key_index) = match (&s2.body, s2.chain_index) {
        (Body::S2 { key, .. }, idx) => (*key, idx),
        _ => unreachable!(),
    };
    let forged_mac = alpha::core::message_mac(
        Algorithm::Sha1,
        alpha::core::MacScheme::Hmac,
        &key, // attacker knows this now
        0,
        b"forged message",
    );
    let forged_s1 = Packet {
        assoc_id: 1,
        alg: Algorithm::Sha1,
        chain_index: key_index, // even position: Disclose role
        body: Body::S1 {
            element: key,
            presig: PreSignature::Cumulative(vec![forged_mac]),
        },
    };
    let err = bob.handle(&forged_s1, T0, &mut r).unwrap_err();
    assert!(matches!(err, ProtocolError::Chain(_)), "got {err:?}");
}

/// Chain elements are domain-separated per chain kind: a signature-chain
/// element can never authenticate on the acknowledgment chain, even at a
/// structurally valid position.
#[test]
fn signature_element_rejected_on_ack_chain() {
    use alpha::crypto::chain::{ChainKind, ChainVerifier, HashChain, Role};
    let sig = HashChain::from_seed(Algorithm::Sha1, ChainKind::RoleBoundSignature, 16, b"same");
    let ack = HashChain::from_seed(Algorithm::Sha1, ChainKind::RoleBoundAck, 16, b"same");
    // Same seed, same positions — but the tags differ, so anchors and all
    // elements differ and cross-verification fails.
    assert_ne!(sig.anchor(), ack.anchor());
    let mut v = ChainVerifier::new(Algorithm::Sha1, ChainKind::RoleBoundAck, ack.anchor(), 16);
    assert!(v.accept_role(15, &sig.element(15), Role::Announce).is_err());
    assert!(v.accept_role(15, &ack.element(15), Role::Announce).is_ok());
}

/// Pre-acknowledgment replay: a captured A2 verdict from exchange k must
/// not validate exchange k+1 (fresh secrets per exchange, §3.2.2).
#[test]
fn preack_replay_across_exchanges_rejected() {
    let c = cfg().with_reliability(Reliability::Reliable);
    let (mut alice, mut bob, mut r) = pair(2, c);
    // Exchange 1 completes; capture its A2.
    let s1 = alice.sign(b"one", T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    let a2_old = bob.handle(&s2, T0, &mut r).unwrap().packets.remove(0);
    alice.handle(&a2_old, T0, &mut r).unwrap();
    // Exchange 2 up to AwaitA2; replay the OLD A2.
    let s1 = alice.sign(b"two", T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let _s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    let err = alice.handle(&a2_old, T0, &mut r).unwrap_err();
    assert!(
        matches!(err, ProtocolError::Chain(_) | ProtocolError::BadMac),
        "replayed verdict accepted: {err:?}"
    );
    assert!(
        !alice.signer().is_idle(),
        "exchange 2 must not be completed by a replay"
    );
}

/// AMT mix-and-match: a verdict disclosure from exchange k fails against
/// exchange k+1's AMT root even at the same packet index.
#[test]
fn amt_verdict_from_older_exchange_rejected() {
    let c = cfg().with_reliability(Reliability::Reliable);
    let (mut alice, mut bob, mut r) = pair(3, c);
    let msgs: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 32]).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();

    // Exchange 1: capture the A2 for seq 0, complete normally.
    let s1 = alice.sign_batch(&refs, Mode::Merkle, T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let s2s = alice.handle(&a1, T0, &mut r).unwrap().packets;
    let mut old_a2 = None;
    for s2 in &s2s {
        let resp = bob.handle(s2, T0, &mut r).unwrap();
        for a2 in resp.packets {
            if old_a2.is_none() {
                old_a2 = Some(a2.clone());
            }
            let _ = alice.handle(&a2, T0, &mut r);
        }
    }
    assert!(alice.signer().is_idle());

    // Exchange 2: replay exchange 1's verdict.
    let s1 = alice.sign_batch(&refs, Mode::Merkle, T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let _ = alice.handle(&a1, T0, &mut r).unwrap();
    let err = alice.handle(&old_a2.unwrap(), T0, &mut r).unwrap_err();
    assert!(
        matches!(err, ProtocolError::Chain(_) | ProtocolError::BadMac),
        "got {err:?}"
    );
}

/// Handshake downgrade: stripping the signature from a protected HS1 must
/// not yield an association when the responder demands authentication.
#[test]
fn handshake_downgrade_rejected() {
    let mut r = StdRng::seed_from_u64(4);
    let key = alpha::pk::ecdsa::EcdsaPrivateKey::generate(&mut r);
    let pinned = key.verifying_key();
    let (_hs, mut init) = bootstrap::initiate(cfg(), 9, Some(&key), &mut r);
    if let Body::Handshake(hs) = &mut init.body {
        hs.auth = None; // downgrade
    }
    for require in [AuthRequirement::AnyKey, AuthRequirement::Pinned(&pinned)] {
        let err = bootstrap::respond(cfg(), &init, None, require, &mut r)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, ProtocolError::BadAuth);
    }
}

/// A1 forgery: an attacker who has not seen the verifier's chain cannot
/// trick the signer into disclosing its MAC key early.
#[test]
fn forged_a1_does_not_elicit_s2() {
    let (mut alice, _bob, mut r) = pair(5, cfg());
    let _s1 = alice.sign(b"keep it secret", T0).unwrap();
    let forged_a1 = Packet {
        assoc_id: 1,
        alg: Algorithm::Sha1,
        chain_index: 63,
        body: Body::A1 {
            element: Algorithm::Sha1.hash(b"guessed ack element"),
            commit: AckCommit::None,
        },
    };
    let err = alice.handle(&forged_a1, T0, &mut r).unwrap_err();
    assert!(matches!(err, ProtocolError::Chain(_)));
    assert!(!alice.signer().is_idle(), "MAC key not disclosed");
}

/// A forged flat A2 (guessed secret) neither completes nor aborts the
/// exchange.
#[test]
fn forged_flat_a2_rejected() {
    let c = cfg().with_reliability(Reliability::Reliable);
    let (mut alice, mut bob, mut r) = pair(6, c);
    let s1 = alice.sign(b"confirm me", T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let _s2 = alice.handle(&a1, T0, &mut r).unwrap();
    // Attacker knows the ack element only after bob discloses it; guess.
    let forged = Packet {
        assoc_id: 1,
        alg: Algorithm::Sha1,
        chain_index: a1.chain_index - 1,
        body: Body::A2 {
            element: Algorithm::Sha1.hash(b"guessed"),
            disclosure: A2Disclosure::Flat {
                ack: true,
                secret: [7u8; 16],
            },
        },
    };
    let err = alice.handle(&forged, T0, &mut r).unwrap_err();
    assert!(matches!(err, ProtocolError::Chain(_)));
    assert!(!alice.signer().is_idle());
}

/// S2 from exchange k replayed after exchange k+1 began: the superseded
/// exchange stays buffered for reordering tolerance, so the replay is
/// accepted as a duplicate — but per-seq dedup means it is never
/// re-delivered. Two exchanges later the buffer is gone and the replay is
/// rejected outright.
#[test]
fn old_s2_replay_never_redelivered() {
    let (mut alice, mut bob, mut r) = pair(7, cfg());
    let s1 = alice.sign(b"first", T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let s2_old = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    assert_eq!(bob.handle(&s2_old, T0, &mut r).unwrap().deliveries.len(), 1);
    // Next exchange begins; replaying the old S2 delivers nothing.
    let s1 = alice.sign(b"second", T0).unwrap();
    bob.handle(&s1, T0, &mut r).unwrap();
    let resp = bob.handle(&s2_old, T0, &mut r).unwrap();
    assert!(resp.deliveries.is_empty(), "duplicate suppressed");
    // Complete exchange 2 and start exchange 3: the old buffer is evicted
    // and the replay is now rejected.
    let a1 = alice.poll(Timestamp::from_millis(250)).packets.remove(0); // retransmit S1 (A1 was dropped above? no — fetch fresh)
    let _ = a1;
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap(); // idempotent A1
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    bob.handle(&s2, T0, &mut r).unwrap();
    let s1 = alice.sign(b"third", T0).unwrap();
    bob.handle(&s1, T0, &mut r).unwrap();
    let err = bob.handle(&s2_old, T0, &mut r).unwrap_err();
    assert!(matches!(
        err,
        ProtocolError::NoExchange | ProtocolError::Chain(_)
    ));
}

/// Tampering with every individual byte of a Base-mode S2 payload: all
/// 0x01..=0xff single-byte XORs at every payload position are rejected.
#[test]
fn exhaustive_payload_tampering_rejected() {
    let (mut alice, mut bob, mut r) = pair(8, cfg());
    let s1 = alice.sign(b"exhaustive", T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    let payload_len = match &s2.body {
        Body::S2 { payload, .. } => payload.len(),
        _ => unreachable!(),
    };
    for pos in 0..payload_len {
        for mask in [0x01u8, 0x80, 0xff] {
            let mut tampered = s2.clone();
            if let Body::S2 { payload, .. } = &mut tampered.body {
                payload[pos] ^= mask;
            }
            assert_eq!(
                bob.handle(&tampered, T0, &mut r).unwrap_err(),
                ProtocolError::BadMac,
                "pos={pos} mask={mask:#x}"
            );
        }
    }
    // The genuine packet still delivers afterwards.
    assert_eq!(
        bob.handle(&s2, T0, &mut r).unwrap().payload().unwrap(),
        b"exhaustive"
    );
}
