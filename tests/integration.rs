//! Cross-crate integration tests: full scenarios through the simulator,
//! attacks end to end, and interplay between the protocol core, wire
//! format, simulator and baselines.

use alpha::core::{Config, MacScheme, Mode, Reliability, Timestamp};
use alpha::crypto::Algorithm;
use alpha::sim::{
    protected_path, App, Attacker, DeviceModel, LinkConfig, Node, SenderApp, Simulator,
};

fn base_cfg() -> Config {
    Config::new(Algorithm::Sha1).with_chain_len(2048)
}

#[test]
fn five_hop_path_delivers_all_modes() {
    for (mode, batch) in [
        (Mode::Base, 1usize),
        (Mode::Cumulative, 8),
        (Mode::Merkle, 8),
    ] {
        let mut sim = Simulator::new(7);
        let app = App::Sender(SenderApp::new(mode, batch, 200, 40));
        let (_s, relays, v) = protected_path(
            &mut sim,
            4,
            DeviceModel::xeon(),
            DeviceModel::geode_lx(),
            LinkConfig::ideal(),
            base_cfg(),
            app,
        );
        sim.run_until(Timestamp::from_millis(30_000));
        assert_eq!(sim.metrics[v].delivered_msgs, 40, "mode {mode:?}");
        // Every relay on the path verified the payloads in transit.
        for r in relays {
            assert!(sim.metrics[r].extracted_payloads >= 40, "mode {mode:?}");
        }
    }
}

#[test]
fn reliable_stream_survives_heavy_loss() {
    let mut sim = Simulator::new(8);
    let cfg = base_cfg()
        .with_reliability(Reliability::Reliable)
        .with_rto_micros(60_000);
    let app = App::Sender(SenderApp::new(Mode::Merkle, 8, 300, 96));
    let (_s, _r, v) = protected_path(
        &mut sim,
        2,
        DeviceModel::xeon(),
        DeviceModel::geode_lx(),
        LinkConfig::ideal().with_loss(0.10),
        cfg,
        app,
    );
    sim.run_until(Timestamp::from_millis(240_000));
    assert_eq!(
        sim.metrics[v].delivered_msgs, 96,
        "10% loss per hop must be repaired; drops: {:?}",
        sim.metrics[v].drops
    );
}

#[test]
fn replay_attacker_cannot_duplicate_deliveries() {
    // A compromised forwarder replays every frame 50 ms later. Chain
    // descent and per-seq dedup must keep deliveries exact.
    let mut sim = Simulator::new(9);
    let cfg = base_cfg();
    let app = App::Sender(SenderApp::new(Mode::Cumulative, 5, 100, 50));
    let signer = sim.add_node(Node::Endpoint(alpha::sim::Endpoint::initiator(
        DeviceModel::xeon(),
        cfg,
        1,
        2,
        app,
    )));
    let replayer = sim.add_node(Node::Attacker {
        device: DeviceModel::xeon(),
        attacker: Attacker::ReplayRelay {
            delay_us: 50_000,
            pending: Vec::new(),
            replayed: 0,
        },
    });
    let verifier = sim.add_node(Node::Endpoint(alpha::sim::Endpoint::responder(
        DeviceModel::xeon(),
        cfg,
        1,
        signer,
        App::Sink,
    )));
    sim.add_link(signer, replayer, LinkConfig::ideal());
    sim.add_link(replayer, verifier, LinkConfig::ideal());
    sim.run_until(Timestamp::from_millis(30_000));

    let replayed = match sim.node(replayer) {
        Node::Attacker {
            attacker: Attacker::ReplayRelay { replayed, .. },
            ..
        } => *replayed,
        _ => unreachable!(),
    };
    assert!(replayed > 20, "attacker replayed traffic ({replayed})");
    assert_eq!(
        sim.metrics[verifier].delivered_msgs, 50,
        "each message delivered exactly once despite replay"
    );
}

#[test]
fn incremental_deployment_with_dumb_relay() {
    // One ALPHA-aware relay plus one legacy forwarder: the paper's
    // incremental-deployment story — isolated ALPHA relays still verify.
    let mut sim = Simulator::new(10);
    let cfg = base_cfg();
    let app = App::Sender(SenderApp::new(Mode::Base, 1, 100, 20));
    let signer = sim.add_node(Node::Endpoint(alpha::sim::Endpoint::initiator(
        DeviceModel::xeon(),
        cfg,
        1,
        3,
        app,
    )));
    let dumb = sim.add_node(Node::DumbRelay {
        device: DeviceModel::geode_lx(),
    });
    let aware = sim.add_node(Node::Relay(alpha::sim::RelayNode::new(
        DeviceModel::geode_lx(),
        alpha::core::RelayConfig::default(),
    )));
    let verifier = sim.add_node(Node::Endpoint(alpha::sim::Endpoint::responder(
        DeviceModel::xeon(),
        cfg,
        1,
        signer,
        App::Sink,
    )));
    sim.add_link(signer, dumb, LinkConfig::ideal());
    sim.add_link(dumb, aware, LinkConfig::ideal());
    sim.add_link(aware, verifier, LinkConfig::ideal());
    sim.run_until(Timestamp::from_millis(20_000));
    assert_eq!(sim.metrics[verifier].delivered_msgs, 20);
    assert!(
        sim.metrics[dumb].forwarded > 0,
        "legacy node forwards blindly"
    );
    assert!(
        sim.metrics[aware].extracted_payloads >= 20,
        "the isolated ALPHA relay still verifies everything"
    );
}

#[test]
fn corrupted_frames_rejected_by_parsers_or_macs() {
    // Byte-level corruption on the wire: either the parser rejects the
    // frame or the MAC check does; deliveries never contain corrupted
    // payloads (payload integrity is end-to-end).
    let mut sim = Simulator::new(11);
    // A generous retry budget: with 8% per-link corruption an unlucky
    // streak can eat the default 5 retries and abandon the exchange,
    // which would test the corruption pattern rather than integrity.
    let cfg = base_cfg()
        .with_reliability(Reliability::Reliable)
        .with_rto_micros(60_000)
        .with_max_retries(40);
    let app = App::Sender(SenderApp::new(Mode::Cumulative, 4, 120, 40));
    let (_s, _r, v) = protected_path(
        &mut sim,
        1,
        DeviceModel::xeon(),
        DeviceModel::geode_lx(),
        LinkConfig::ideal().with_corrupt(0.08),
        cfg,
        app,
    );
    sim.run_until(Timestamp::from_millis(240_000));
    let m = &sim.metrics[v];
    // Corruption must be caught, not delivered. Full delivery is NOT
    // guaranteed under corruption: a retransmitted S1 reuses its chain
    // element, so a relay that saw the original announcement treats the
    // retry as a replay and an unlucky pattern can abandon the exchange
    // (bounded by max_retries). Require a high floor plus evidence that
    // the abandon accounting explains every missing message.
    assert!(
        m.delivered_msgs >= 36,
        "delivered {}/40, drops: {:?}",
        m.delivered_msgs,
        m.drops
    );
    let abandoned = sim
        .metrics
        .iter()
        .map(|nm| *nm.drops.get("exchange-abandoned").unwrap_or(&0))
        .sum::<u64>();
    assert!(
        m.delivered_msgs + abandoned >= 40,
        "missing messages unaccounted for: delivered {}, abandoned {abandoned}",
        m.delivered_msgs
    );
    // Latency headers decode on every delivery: corrupted payloads would
    // produce nonsense timestamps; all recorded latencies must be sane.
    assert!(m.latencies_us.iter().all(|&l| l < 240_000_000));
}

#[test]
fn mmo_prefix_mac_deployment_end_to_end() {
    // The §4.1.3 sensor profile: MMO hashing + prefix MACs through relays.
    let mut sim = Simulator::new(12);
    let cfg = Config::new(Algorithm::MmoAes)
        .with_chain_len(1024)
        .with_mac_scheme(MacScheme::Prefix)
        .with_reliability(Reliability::Reliable)
        .with_rto_micros(400_000);
    let app = App::Sender(SenderApp::new(Mode::Cumulative, 5, 64, 30));
    let (_s, relays, v) = protected_path(
        &mut sim,
        2,
        DeviceModel::cc2430(),
        DeviceModel::cc2430(),
        LinkConfig::sensor(),
        cfg,
        app,
    );
    sim.run_until(Timestamp::from_millis(200_000));
    assert_eq!(
        sim.metrics[v].delivered_msgs, 30,
        "drops: {:?}",
        sim.metrics[v].drops
    );
    assert!(sim.metrics[relays[0]].extracted_payloads >= 30);
    // The CC2430's virtual CPU cost must reflect MMO pricing (≈ms scale).
    assert!(sim.metrics[relays[0]].cpu_ns > 1e6);
}

#[test]
fn tesla_vs_alpha_latency_profile() {
    // Qualitative §2.1.1 comparison, executed: TESLA delivers only after
    // the disclosure delay, ALPHA after 1.5 RTT.
    use alpha::baselines::tesla::{TeslaConfig, TeslaReceiver, TeslaSender};
    let mut rng = alpha::test_rng(13);
    let tcfg = TeslaConfig::new(Algorithm::Sha1); // 100 ms epochs, lag 2
    let sender = TeslaSender::new(tcfg, Timestamp::ZERO, &mut rng);
    let (anchor, start) = sender.commitment();
    let mut receiver = TeslaReceiver::new(tcfg, anchor, start);
    let pkt = sender.send(b"reading", Timestamp::from_millis(10)).unwrap();
    // Arrives after 5 ms of network delay: not yet verifiable.
    assert!(receiver
        .receive(pkt, Timestamp::from_millis(15))
        .unwrap()
        .is_empty());
    // ALPHA on an equivalent 5 ms link: delivered within ~3 link crossings.
    let mut sim = Simulator::new(14);
    let app = App::Sender(SenderApp::new(Mode::Base, 1, 64, 1));
    let link = LinkConfig {
        latency_us: 5_000,
        ..LinkConfig::ideal()
    };
    let (_s, _r, v) = protected_path(
        &mut sim,
        0,
        DeviceModel::xeon(),
        DeviceModel::xeon(),
        link,
        base_cfg(),
        app,
    );
    sim.run_until(Timestamp::from_millis(5_000));
    let alpha_latency_us = sim.metrics[v].latencies_us[0];
    // TESLA's floor here is 2 epochs = 200 ms; ALPHA's measured latency is
    // far below it.
    assert!(
        alpha_latency_us < 100_000,
        "ALPHA delivered in {alpha_latency_us} µs"
    );
}

#[test]
fn renewal_works_across_simulated_path() {
    // Chain renewal end to end over the simulator: a short-chained sender
    // streams more messages than one chain allows; the sim app cannot
    // renew automatically, so this drives the association manually through
    // in-memory "links" with both sides renewing.
    let mut rng = alpha::test_rng(77);
    let cfg = Config::new(Algorithm::Sha1).with_chain_len(8);
    let (mut alice, mut bob) = alpha::core::Association::pair(cfg, 1, &mut rng);
    let t = Timestamp::ZERO;
    let mut delivered = 0;
    for round in 0..12 {
        let msg = format!("long-lived round {round}");
        let s1 = alice.sign(msg.as_bytes(), t).unwrap();
        let a1 = bob.handle(&s1, t, &mut rng).unwrap().packet().unwrap();
        let s2 = alice.handle(&a1, t, &mut rng).unwrap().packets.remove(0);
        delivered += bob.handle(&s2, t, &mut rng).unwrap().deliveries.len();
        // Renew both directions every round (chain_len 8 = 3 pairs).
        for _ in 0..1 {
            let (offer, s1) = alice.begin_renewal(t, &mut rng).unwrap();
            let a1 = bob.handle(&s1, t, &mut rng).unwrap().packet().unwrap();
            let s2 = alice.handle(&a1, t, &mut rng).unwrap().packets.remove(0);
            assert!(bob.handle(&s2, t, &mut rng).unwrap().peer_renewed);
            alice.commit_renewal(offer).unwrap();
            let (offer, s1) = bob.begin_renewal(t, &mut rng).unwrap();
            let a1 = alice.handle(&s1, t, &mut rng).unwrap().packet().unwrap();
            let s2 = bob.handle(&a1, t, &mut rng).unwrap().packets.remove(0);
            assert!(alice.handle(&s2, t, &mut rng).unwrap().peer_renewed);
            bob.commit_renewal(offer).unwrap();
        }
    }
    assert_eq!(delivered, 12);
}

/// §3.1.1's *bypass attack*, demonstrated: two colluding attackers divert
/// genuine signature packets around a victim relay, then — after the real
/// key disclosure — replay a reformatted exchange carrying a forged
/// message. The victim relay accepts it (its data-extraction function is
/// compromised, exactly as the paper states), while end-to-end integrity
/// at the verifier is unaffected. The paper's fix is keeping the relay set
/// static / adding n-hop neighbor checks, which is out of ALPHA's core.
#[test]
fn bypass_attack_compromises_relay_extraction_not_end_to_end() {
    use alpha::core::bootstrap::{self, AuthRequirement};
    use alpha::core::message_mac;
    use alpha::core::{Relay, RelayConfig, RelayDecision, RelayEvent};
    use alpha::wire::{Body, Packet, PreSignature};

    let mut rng = alpha::test_rng(666);
    let cfg = Config::new(Algorithm::Sha1).with_chain_len(64);
    let t = Timestamp::ZERO;

    // Handshake observed by the victim relay (it is on the original path).
    let (hs, init) = bootstrap::initiate(cfg, 9, None, &mut rng);
    let mut victim = Relay::new(RelayConfig {
        s1_bytes_per_sec: None,
        ..RelayConfig::default()
    });
    victim.observe(&init, t);
    let (mut bob, reply, _) =
        bootstrap::respond(cfg, &init, None, AuthRequirement::None, &mut rng).unwrap();
    victim.observe(&reply, t);
    let (mut alice, _) = hs.complete(&reply, AuthRequirement::None).unwrap();

    // The colluders divert this exchange AROUND the victim: alice and bob
    // complete it without the victim seeing any packet.
    let s1 = alice.sign(b"pay 5 to bob", t).unwrap();
    let a1 = bob.handle(&s1, t, &mut rng).unwrap().packet().unwrap();
    let s2 = alice.handle(&a1, t, &mut rng).unwrap().packets.remove(0);
    assert_eq!(
        bob.handle(&s2, t, &mut rng).unwrap().payload().unwrap(),
        b"pay 5 to bob"
    );

    // The attackers captured everything and now know the disclosed MAC key.
    let (s1_element, s1_index) = match (&s1.body, s1.chain_index) {
        (Body::S1 { element, .. }, idx) => (*element, idx),
        _ => unreachable!(),
    };
    let (disclosed_key, key_index) = match (&s2.body, s2.chain_index) {
        (Body::S2 { key, .. }, idx) => (*key, idx),
        _ => unreachable!(),
    };
    // Forge a pre-signature for an attacker-chosen message with the now
    // public key, replay the (element, forged MAC) to the victim...
    let evil = b"pay 5000 to mallory";
    let forged_mac = message_mac(Algorithm::Sha1, cfg.mac_scheme, &disclosed_key, 0, evil);
    let forged_s1 = Packet {
        assoc_id: 9,
        alg: Algorithm::Sha1,
        chain_index: s1_index,
        body: Body::S1 {
            element: s1_element,
            presig: PreSignature::Cumulative(vec![forged_mac]),
        },
    };
    assert_eq!(victim.observe(&forged_s1, t).0, RelayDecision::Forward);
    // ...then "disclose".
    let forged_s2 = Packet {
        assoc_id: 9,
        alg: Algorithm::Sha1,
        chain_index: key_index,
        body: Body::S2 {
            key: disclosed_key,
            seq: 0,
            path: vec![],
            payload: evil.to_vec(),
        },
    };
    let (decision, events) = victim.observe(&forged_s2, t);
    // The victim relay verifies and extracts the FORGED message: its
    // signaling function is compromised by the bypass, as §3.1.1 warns.
    assert_eq!(decision, RelayDecision::Forward);
    assert!(events.iter().any(|e| matches!(
        e,
        RelayEvent::VerifiedPayload { payload, .. } if payload == evil
    )));
    // End-to-end integrity is NOT affected: bob still buffers the GENUINE
    // pre-signature for this exchange, so the replayed S1 only provokes an
    // idempotent A1 replay (no state change) and the forged S2 fails the
    // MAC check against the genuine commitment.
    let resp = bob.handle(&forged_s1, t, &mut rng).unwrap();
    assert!(resp.deliveries.is_empty() && !resp.peer_renewed);
    let err = bob.handle(&forged_s2, t, &mut rng).unwrap_err();
    assert_eq!(err, alpha::core::ProtocolError::BadMac);
}

#[test]
fn route_change_mid_stream_recovers_with_reliability() {
    // ALPHA needs ~2 RTTs of path stability (§3.5). A route flap in the
    // middle of a reliable stream: packets in flight on the dead link are
    // lost, the new path's relay has never seen the association (it
    // forwards unknown traffic), and retransmission repairs the rest.
    let mut sim = Simulator::new(21);
    let cfg = base_cfg()
        .with_reliability(Reliability::Reliable)
        .with_rto_micros(80_000);
    let mut sender_app = SenderApp::new(Mode::Merkle, 8, 200, 80);
    sender_app.interval_us = 30_000; // pace the stream across the reroute
    let app = App::Sender(sender_app);
    let signer = sim.add_node(Node::Endpoint(alpha::sim::Endpoint::initiator(
        DeviceModel::xeon(),
        cfg,
        1,
        3,
        app,
    )));
    let relay_a = sim.add_node(Node::Relay(alpha::sim::RelayNode::new(
        DeviceModel::geode_lx(),
        alpha::core::RelayConfig::default(),
    )));
    let relay_b = sim.add_node(Node::Relay(alpha::sim::RelayNode::new(
        DeviceModel::geode_lx(),
        alpha::core::RelayConfig::default(),
    )));
    let verifier = sim.add_node(Node::Endpoint(alpha::sim::Endpoint::responder(
        DeviceModel::xeon(),
        cfg,
        1,
        signer,
        App::Sink,
    )));
    // Primary path through relay A; relay B is the (longer) backup.
    sim.add_link(signer, relay_a, LinkConfig::ideal());
    sim.add_link(relay_a, verifier, LinkConfig::ideal());
    let slow = LinkConfig {
        latency_us: 4_000,
        ..LinkConfig::ideal()
    };
    sim.add_link(signer, relay_b, slow);
    sim.add_link(relay_b, verifier, slow);

    // Let the stream start on the primary path…
    sim.run_until(Timestamp::from_millis(300));
    assert!(sim.metrics[relay_a].forwarded > 0, "primary path in use");
    // …then kill it.
    sim.remove_link(signer, relay_a);
    sim.remove_link(relay_a, verifier);
    sim.run_until(Timestamp::from_millis(120_000));

    let v = &sim.metrics[verifier];
    assert_eq!(
        v.delivered_msgs, 80,
        "all messages recovered after reroute; drops {:?}",
        v.drops
    );
    assert!(sim.metrics[relay_b].forwarded > 0, "backup path took over");
}

#[test]
fn energy_accounting_tracks_device_class() {
    // Same workload on sensor-class vs router-class hardware: the sensor
    // spends far more CPU time (MMO at ms per hash) and its radio charges
    // ~7x more per byte, but its 30 mW CPU draws far less power, so the
    // *composition* of its energy differs. The check: energy is recorded,
    // nonzero, and consistent with the device model's own pricing.
    let mut sim = Simulator::new(22);
    let cfg = Config::new(Algorithm::MmoAes)
        .with_chain_len(512)
        .with_mac_scheme(MacScheme::Prefix)
        .with_reliability(Reliability::Reliable)
        .with_rto_micros(400_000);
    let app = App::Sender(SenderApp::new(Mode::Cumulative, 5, 64, 25));
    let (s, relays, v) = protected_path(
        &mut sim,
        1,
        DeviceModel::cc2430(),
        DeviceModel::cc2430(),
        LinkConfig::sensor(),
        cfg,
        app,
    );
    sim.run_until(Timestamp::from_millis(120_000));
    assert_eq!(
        sim.metrics[v].delivered_msgs, 25,
        "drops: {:?}",
        sim.metrics[v].drops
    );
    for id in [s, relays[0], v] {
        let m = &sim.metrics[id];
        assert!(m.energy_uj > 0.0);
        let dev = DeviceModel::cc2430();
        let expected = dev.energy_uj(m.cpu_ns, m.sent_bytes);
        assert!((m.energy_uj - expected).abs() < 1.0, "node {id}");
    }
}

#[test]
fn trace_records_exchange_structure() {
    use alpha::sim::PacketKind;
    let mut sim = Simulator::new(23);
    sim.enable_trace();
    let app = App::Sender(SenderApp::new(Mode::Cumulative, 4, 100, 12));
    let (_s, _r, v) = protected_path(
        &mut sim,
        1,
        DeviceModel::xeon(),
        DeviceModel::geode_lx(),
        LinkConfig::ideal(),
        base_cfg(),
        app,
    );
    sim.run_until(Timestamp::from_millis(10_000));
    assert_eq!(sim.metrics[v].delivered_msgs, 12);
    let trace = sim.trace().expect("tracing enabled");
    // 3 exchanges of 4 messages: per exchange one S1, one A1 and one
    // piggyback bundle of 4 S2s, each crossing 2 hops.
    assert_eq!(trace.count_kind(PacketKind::S1), 3 * 2);
    assert_eq!(trace.count_kind(PacketKind::A1), 3 * 2);
    assert_eq!(trace.count_kind(PacketKind::Bundle), 3 * 2);
    assert_eq!(trace.count_kind(PacketKind::Handshake), 2 * 2);
    // JSON round trip preserves everything.
    let json = trace.to_json_lines();
    let back = alpha::sim::Trace::from_json_lines(&json).unwrap();
    assert_eq!(back.entries().len(), trace.entries().len());
}

#[test]
fn full_duplex_streams_in_both_directions() {
    // Each host is signer AND verifier (§3.1): two independent simplex
    // channels share the association, so streams can flow both ways
    // concurrently.
    let mut sim = Simulator::new(24);
    let cfg = base_cfg();
    let app_a = App::Sender(SenderApp::new(Mode::Cumulative, 5, 100, 40));
    let app_b = App::Sender(SenderApp::new(Mode::Cumulative, 5, 100, 40));
    let a = sim.add_node(Node::Endpoint(alpha::sim::Endpoint::initiator(
        DeviceModel::xeon(),
        cfg,
        1,
        2,
        app_a,
    )));
    let relay = sim.add_node(Node::Relay(alpha::sim::RelayNode::new(
        DeviceModel::geode_lx(),
        alpha::core::RelayConfig::default(),
    )));
    let b = sim.add_node(Node::Endpoint(alpha::sim::Endpoint::responder(
        DeviceModel::xeon(),
        cfg,
        1,
        a,
        app_b,
    )));
    sim.add_link(a, relay, LinkConfig::ideal());
    sim.add_link(relay, b, LinkConfig::ideal());
    sim.run_until(Timestamp::from_millis(30_000));
    assert_eq!(sim.metrics[b].delivered_msgs, 40, "a→b stream");
    assert_eq!(sim.metrics[a].delivered_msgs, 40, "b→a stream");
    // The relay verified both directions.
    assert!(sim.metrics[relay].extracted_payloads >= 80);
}

#[test]
fn latency_floor_is_one_and_a_half_rtts() {
    // §3.5: "For scenarios in which the maximum acceptable latency is below
    // 1.5 RTTs, ALPHA signatures are not applicable." Measure it: with a
    // symmetric one-way delay d, a message needs S1 (d) + A1 (d) + S2 (d) =
    // 3d = 1.5 RTT before delivery.
    let one_way_ms = 20u64;
    let mut sim = Simulator::new(25);
    sim.set_tick_us(1_000);
    let app = App::Sender(SenderApp::new(Mode::Base, 1, 64, 5));
    let link = LinkConfig {
        latency_us: one_way_ms * 1000,
        ..LinkConfig::ideal()
    };
    let (_s, _r, v) = protected_path(
        &mut sim,
        0,
        DeviceModel::xeon(),
        DeviceModel::xeon(),
        link,
        base_cfg(),
        app,
    );
    sim.run_until(Timestamp::from_millis(10_000));
    let m = &sim.metrics[v];
    assert_eq!(m.delivered_msgs, 5);
    let floor_us = 3 * one_way_ms * 1000;
    for &l in &m.latencies_us {
        assert!(
            l >= floor_us,
            "latency {l} µs below the 1.5-RTT floor {floor_us} µs"
        );
        assert!(
            l < floor_us + 10_000,
            "latency {l} µs far above the floor (tick slack only)"
        );
    }
}

#[test]
fn relay_scales_across_many_flows() {
    // §3.1.1: "on forwarding devices in particular, pre-signatures offer
    // significantly better scalability with the number of flows". Run 8
    // independent flows through one relay and check (a) everything
    // delivers, (b) per-flow relay state stays at the Table 2 level.
    use alpha::sim::star_through_relay;
    let mut sim = Simulator::new(30);
    let cfg = base_cfg();
    let pairs = 8;
    let (relay, endpoints) = star_through_relay(
        &mut sim,
        pairs,
        DeviceModel::xeon(),
        DeviceModel::geode_lx(),
        LinkConfig::ideal(),
        cfg,
        |_k| App::Sender(SenderApp::new(Mode::Cumulative, 5, 100, 20)),
    );
    sim.run_until(Timestamp::from_millis(30_000));
    for (k, (_s, r)) in endpoints.iter().enumerate() {
        assert_eq!(sim.metrics[*r].delivered_msgs, 20, "flow {k}");
    }
    // The relay verified every flow's payloads.
    assert!(sim.metrics[relay].extracted_payloads >= (pairs * 20) as u64);
    // Per-flow relay state: 4 chain trackers (~28 B each) + at most one
    // outstanding exchange's pre-signatures (5 × 20 B) + ack state.
    let relay_node = sim.node(relay).as_relay().unwrap();
    assert_eq!(relay_node.relay.association_count(), pairs);
    let per_flow = relay_node.relay.total_buffered_bytes() / pairs;
    assert!(per_flow < 400, "per-flow relay bytes: {per_flow}");
}

#[test]
fn echo_app_measures_round_trips() {
    // Request-response over ALPHA: the responder echoes each payload back
    // through its own signing channel. The requester's measured latency is
    // two full signature exchanges = 2 x 1.5 RTT = 3 RTT (echo preserves
    // the original timestamp header).
    let one_way_ms = 10u64;
    let mut sim = Simulator::new(40);
    sim.set_tick_us(1_000);
    let cfg = base_cfg();
    let requester = sim.add_node(Node::Endpoint(alpha::sim::Endpoint::initiator(
        DeviceModel::xeon(),
        cfg,
        1,
        1, // peer is the echo server (next node)
        App::Sender(SenderApp::new(Mode::Base, 1, 64, 6)),
    )));
    let server = sim.add_node(Node::Endpoint(alpha::sim::Endpoint::responder(
        DeviceModel::xeon(),
        cfg,
        1,
        requester,
        App::Echo {
            pending: Vec::new(),
            echoed: 0,
        },
    )));
    let link = LinkConfig {
        latency_us: one_way_ms * 1000,
        ..LinkConfig::ideal()
    };
    sim.add_link(requester, server, link);
    sim.run_until(Timestamp::from_millis(20_000));

    assert_eq!(sim.metrics[server].delivered_msgs, 6, "requests arrived");
    assert_eq!(sim.metrics[requester].delivered_msgs, 6, "echoes arrived");
    let rtt_floor = 6 * one_way_ms * 1000; // 2 exchanges x 3 one-way trips
    for &l in &sim.metrics[requester].latencies_us {
        assert!(l >= rtt_floor, "round trip {l} µs below 2x1.5 RTT floor");
        assert!(l < rtt_floor + 40_000, "round trip {l} µs far above floor");
    }
    match sim.node(server).as_endpoint().unwrap().app {
        App::Echo { echoed, .. } => assert_eq!(echoed, 6),
        _ => unreachable!(),
    }
}

// ---------------------------------------------------------------------------
// Engine: many concurrent associations through one in-process relay
// ---------------------------------------------------------------------------

/// 32 simultaneous associations, each its own client/server pair, all
/// routed through ONE in-process relay engine over loopback UDP. Every
/// server must receive exactly its own client's payload — nothing less
/// (lost flows) and nothing more (cross-flow bleed).
#[test]
fn engine_relays_32_concurrent_associations_without_bleed() {
    use alpha::engine::{EngineConfig, EngineCore};
    use alpha::transport::Engine;
    use alpha::transport::UdpHost;
    use std::net::UdpSocket;
    use std::time::Duration;

    use alpha::transport::HandshakeAuth;

    const FLOWS: usize = 32;
    let cfg = Config::new(Algorithm::Sha1).with_chain_len(64);

    // Reserve distinct loopback sockets for every endpoint up front so
    // the relay can be routed before anyone transmits. The sockets stay
    // bound and are handed to the hosts — releasing and re-binding the
    // addresses would race other ephemeral-port allocations.
    let reserve = |_: usize| UdpSocket::bind("127.0.0.1:0").unwrap();
    let client_socks: Vec<_> = (0..FLOWS).map(reserve).collect();
    let server_socks: Vec<_> = (0..FLOWS).map(reserve).collect();
    let client_addrs: Vec<_> = client_socks
        .iter()
        .map(|s| s.local_addr().unwrap())
        .collect();
    let server_addrs: Vec<_> = server_socks
        .iter()
        .map(|s| s.local_addr().unwrap())
        .collect();

    // One relay engine; all 32 address pairs are its routes.
    let relay_core = EngineCore::new(EngineConfig::new(cfg).with_shards(8));
    for i in 0..FLOWS {
        relay_core.add_route(client_addrs[i], server_addrs[i]);
    }
    let relay = Engine::bind("127.0.0.1:0", relay_core, 4).expect("relay bind");
    let relay_addr = relay.local_addr().unwrap();

    let servers: Vec<_> = server_socks
        .into_iter()
        .enumerate()
        .map(|(i, sock)| {
            std::thread::spawn(move || {
                let mut host = UdpHost::accept_socket(
                    cfg,
                    sock,
                    Duration::from_secs(30),
                    HandshakeAuth::default(),
                )
                .unwrap_or_else(|e| panic!("server {i} accept: {e}"));
                host.serve(Duration::from_millis(4000))
                    .unwrap_or_else(|e| panic!("server {i} serve: {e}"))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    let clients: Vec<_> = client_socks
        .into_iter()
        .enumerate()
        .map(|(i, sock)| {
            std::thread::spawn(move || {
                let mut host = UdpHost::connect_socket(
                    cfg,
                    1000 + i as u64,
                    sock,
                    relay_addr,
                    Duration::from_secs(30),
                    HandshakeAuth::default(),
                )
                .unwrap_or_else(|e| panic!("client {i} connect: {e}"));
                let payload = format!("flow {i} payload");
                host.send_batch(&[payload.as_bytes()], Mode::Base, Duration::from_secs(20))
                    .unwrap_or_else(|e| panic!("client {i} send: {e}"));
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    for (i, s) in servers.into_iter().enumerate() {
        let delivered = s.join().expect("server thread");
        assert_eq!(
            delivered,
            vec![format!("flow {i} payload").into_bytes()],
            "server {i} must see exactly its own flow's payload"
        );
    }

    use std::sync::atomic::Ordering::Relaxed;
    let core = relay.core();
    assert_eq!(core.flow_count(), FLOWS, "one relay flow per association");
    let m = core.metrics();
    assert_eq!(
        m.s2_verified.load(Relaxed),
        FLOWS as u64,
        "relay verified every payload"
    );
    assert_eq!(
        m.handshakes.load(Relaxed),
        FLOWS as u64,
        "relay learned every association"
    );
    relay.shutdown();
}

/// Cross-flow forgery: with two flows mid-exchange (S1 buffered, S2
/// pending) at one relay engine, replaying flow B's perfectly valid S2
/// on flow A's route must be rejected — flow A's buffered pre-signature
/// must never authenticate another flow's traffic — and must not damage
/// flow A, whose own S2 still verifies afterwards.
#[test]
fn engine_relay_rejects_cross_flow_forged_s2() {
    use alpha::engine::{EngineConfig, EngineCore, EngineOutput};
    use alpha::wire::{bundle, PacketType};
    use std::net::SocketAddr;
    use std::sync::atomic::Ordering::Relaxed;

    let cfg = Config::new(Algorithm::Sha1).with_chain_len(64);
    let mut rng = alpha::test_rng(4242);
    let addr = |p: u16| -> SocketAddr { format!("10.9.0.1:{p}").parse().unwrap() };
    let (relay_addr, a_client, a_server, b_client, b_server) =
        (addr(1), addr(100), addr(101), addr(200), addr(201));

    let mut ecfg = EngineConfig::new(cfg);
    ecfg.accept_handshakes = false;
    let relay = EngineCore::new(ecfg);
    relay.add_route(a_client, a_server);
    relay.add_route(b_client, b_server);

    let host_cfg = EngineConfig::new(cfg);
    // Endpoint engines, each standing in for one UDP socket. Both flows
    // deliberately share assoc id 7: only addressing separates them.
    let a_cli = EngineCore::new(host_cfg);
    let b_cli = EngineCore::new(host_cfg);
    let a_srv = EngineCore::new(host_cfg);
    let b_srv = EngineCore::new(host_cfg);

    let now = Timestamp::from_millis(1);
    let (a_key, a_out) = a_cli.connect(relay_addr, 7, now, &mut rng);
    let (b_key, b_out) = b_cli.connect(relay_addr, 7, now, &mut rng);

    // Deterministic in-memory "network": endpoints address the relay,
    // the relay addresses endpoints; source addresses drive routing.
    let mut held_s2: Vec<(SocketAddr, Vec<u8>)> = Vec::new();
    let mut inflight: Vec<(SocketAddr, SocketAddr, Vec<u8>)> = Vec::new(); // (src, dst, bytes)
    let stage = |src: SocketAddr,
                 out: EngineOutput,
                 inflight: &mut Vec<(SocketAddr, SocketAddr, Vec<u8>)>,
                 held: &mut Vec<(SocketAddr, Vec<u8>)>| {
        for (dst, bytes) in out.datagrams {
            let bytes = bytes.into_vec();
            let is_s2 = bundle::parse(&bytes)
                .map(|pkts| pkts.iter().any(|p| p.packet_type() == PacketType::S2))
                .unwrap_or(false);
            if is_s2 {
                held.push((src, bytes)); // capture S2s instead of delivering
            } else {
                inflight.push((src, dst, bytes));
            }
        }
    };
    stage(a_client, a_out, &mut inflight, &mut held_s2);
    stage(b_client, b_out, &mut inflight, &mut held_s2);

    let mut relay_extracted = 0usize;
    for hop in 0..64 {
        if inflight.is_empty() {
            break;
        }
        let now = Timestamp::from_millis(2 + hop);
        for (src, dst, bytes) in std::mem::take(&mut inflight) {
            if dst == relay_addr {
                let out = relay.handle_datagram(src, &bytes, now, &mut rng);
                relay_extracted += out.extracted.len();
                for (fwd_dst, fwd_bytes) in out.datagrams {
                    inflight.push((relay_addr, fwd_dst, fwd_bytes.into_vec()));
                }
            } else {
                let endpoint = match dst {
                    d if d == a_client => &a_cli,
                    d if d == a_server => &a_srv,
                    d if d == b_client => &b_cli,
                    d if d == b_server => &b_srv,
                    d => panic!("datagram to unrouted address {d}"),
                };
                let out = endpoint.handle_datagram(src, &bytes, now, &mut rng);
                stage(dst, out, &mut inflight, &mut held_s2);
            }
        }
    }
    // Handshakes completed; now put both flows mid-exchange.
    assert!(
        a_cli.flow_is_idle(a_key) && b_cli.flow_is_idle(b_key),
        "handshakes done"
    );
    let now = Timestamp::from_millis(100);
    let a_out = a_cli
        .sign_batch(a_key, &[b"payload of flow A"], Mode::Base, now)
        .unwrap();
    let b_out = b_cli
        .sign_batch(b_key, &[b"payload of flow B"], Mode::Base, now)
        .unwrap();
    stage(a_client, a_out, &mut inflight, &mut held_s2);
    stage(b_client, b_out, &mut inflight, &mut held_s2);
    for hop in 0..64 {
        if inflight.is_empty() {
            break;
        }
        let now = Timestamp::from_millis(101 + hop);
        for (src, dst, bytes) in std::mem::take(&mut inflight) {
            if dst == relay_addr {
                let out = relay.handle_datagram(src, &bytes, now, &mut rng);
                relay_extracted += out.extracted.len();
                for (fwd_dst, fwd_bytes) in out.datagrams {
                    inflight.push((relay_addr, fwd_dst, fwd_bytes.into_vec()));
                }
            } else {
                let endpoint = match dst {
                    d if d == a_client => &a_cli,
                    d if d == a_server => &a_srv,
                    d if d == b_client => &b_cli,
                    d if d == b_server => &b_srv,
                    d => panic!("datagram to unrouted address {d}"),
                };
                let out = endpoint.handle_datagram(src, &bytes, now, &mut rng);
                stage(dst, out, &mut inflight, &mut held_s2);
            }
        }
    }
    // Both S1s traversed the relay (pre-signatures buffered), both A1s
    // came back, and both S2s are captured in our hand.
    assert_eq!(held_s2.len(), 2, "both S2s intercepted");
    assert_eq!(relay.flow_count(), 2, "two relay flows resident");
    assert!(
        relay.buffered_bytes() > 0,
        "relay holds buffered pre-signatures"
    );
    assert_eq!(relay_extracted, 0, "nothing verified yet");
    let (b_src, b_s2) = held_s2
        .iter()
        .find(|(s, _)| *s == b_client)
        .cloned()
        .unwrap();
    let (_, a_s2) = held_s2
        .iter()
        .find(|(s, _)| *s == a_client)
        .cloned()
        .unwrap();

    // THE FORGERY: flow B's valid S2 injected on flow A's route. Same
    // assoc id, same relay, valid chain — for the *other* flow. The
    // relay must verify it against flow A's pre-signature and refuse.
    let now = Timestamp::from_millis(500);
    let fails_before = relay.metrics().verify_failures.load(Relaxed);
    let out = relay.handle_datagram(a_client, &b_s2, now, &mut rng);
    assert!(out.datagrams.is_empty(), "forged S2 must not be forwarded");
    assert!(out.extracted.is_empty(), "forged S2 must not verify");
    assert!(
        relay.metrics().verify_failures.load(Relaxed) > fails_before,
        "forgery recorded as a verification failure"
    );
    assert_eq!(
        relay.flow_count(),
        2,
        "forgery must not create or destroy flows"
    );

    // Both legitimate S2s, from their true sources, still verify.
    let out = relay.handle_datagram(a_client, &a_s2, now, &mut rng);
    assert_eq!(
        out.extracted.len(),
        1,
        "flow A's own S2 verifies after the forgery"
    );
    assert_eq!(out.extracted[0].1, b"payload of flow A".to_vec());
    assert_eq!(
        out.datagrams.len(),
        1,
        "flow A's S2 forwarded to its server"
    );
    let out = relay.handle_datagram(b_src, &b_s2, now, &mut rng);
    assert_eq!(
        out.extracted.len(),
        1,
        "flow B's S2 verifies on its own route"
    );
    assert_eq!(out.extracted[0].1, b"payload of flow B".to_vec());
}
