//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io registry, and real serde's
//! value model (visitors + derive proc-macros) is far more machinery
//! than this workspace needs. This stub keeps the two trait names the
//! codebase imports — [`Serialize`] and [`Deserialize`] — but defines
//! them as conversions to and from an owned JSON [`Value`] tree.
//! Impls are written by hand (there is no `#[derive(Serialize)]`);
//! `serde_json` (also vendored) renders and parses the tree.

use std::collections::BTreeMap;

/// An owned JSON value. Integers are kept exact (`U64`/`I64`) rather
/// than coerced through f64, because the trace format stores `u64`
/// microsecond timestamps. Object keys are ordered (BTreeMap) so output
/// is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with deterministic (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Build an object from key/value pairs.
    #[must_use]
    pub fn object<I: IntoIterator<Item = (String, Value)>>(pairs: I) -> Value {
        Value::Object(pairs.into_iter().collect())
    }

    /// Member lookup (`None` unless this is an object with the key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// As u64 if losslessly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// As i64 if losslessly representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    /// As f64 (any numeric variant).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// As bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// As string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// As object map.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree (`None` on shape mismatch).
    fn from_value(v: &Value) -> Option<Self>;
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Option<Self> {
                v.as_u64().and_then(|x| <$t>::try_from(x).ok())
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Option<Self> {
                v.as_i64().and_then(|x| <$t>::try_from(x).ok())
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Option<Self> {
        v.as_f64()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Option<Self> {
        v.as_bool()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Option<Self> {
        v.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Option<Self> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Null => Some(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Option<Self> {
        Some(v.clone())
    }
}
