//! Offline stand-in for `criterion`.
//!
//! Exposes the API surface the workspace's `benches/` use —
//! `criterion_group!` / `criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter` / `iter_batched`, `BenchmarkId`, `Throughput`,
//! `BatchSize`, `black_box` — implemented as a compact wall-clock
//! harness: warm up briefly, time a batch of iterations per sample,
//! report the median (and throughput when configured). No statistics
//! engine, no HTML reports, no gnuplot; numbers print to stdout in a
//! stable one-line-per-benchmark format.
//!
//! Under `cargo test` (harness benches compiled as tests are not built
//! here — all benches use `harness = false`) the binaries run their
//! `main` directly; sample counts are kept small so a full bench sweep
//! stays in CI budget.

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How many units one iteration processes (for rate reporting).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup allocations. Only a hint here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Fresh state every iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter under the group's name.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on values produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }

    /// As [`Bencher::iter_batched`] with by-reference inputs.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in &mut inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 12 }
    }
}

impl Criterion {
    /// Samples per benchmark (median is reported).
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(3);
        self
    }

    /// Ignored here (measurement time is derived from sample size).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Criterion {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            sample_size: self.sample_size,
            _c: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        run_bench(&label, self.sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput unit.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Ignored here (see [`Criterion::measurement_time`]).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Units processed per iteration, for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: grow the iteration count until one sample takes ≥ ~2 ms
    // (or the routine is clearly slow and one iteration is enough).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters = (iters * 4).min(1 << 20);
    }
    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(f64::total_cmp);
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            format!(", {:.1} MiB/s", n as f64 / median * 1e9 / (1 << 20) as f64)
        }
        Throughput::Elements(n) => format!(", {:.2} Melem/s", n as f64 / median * 1e9 / 1e6),
    });
    println!(
        "bench {label:<56} {:>12} /iter ({iters} iters x {samples} samples{})",
        fmt_ns(median),
        rate.unwrap_or_default()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls = calls.wrapping_add(1)));
        assert!(calls > 0);
    }

    #[test]
    fn group_with_throughput_and_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
