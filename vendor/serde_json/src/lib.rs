//! Offline stand-in for `serde_json`: a compact recursive-descent JSON
//! parser and a writer over the vendored [`serde::Value`] tree. Covers
//! the subset this workspace emits (objects, arrays, strings with
//! escapes, integers, floats, bools, null) and is strict enough to
//! reject malformed trace files.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Parse or render failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Render any [`Serialize`] as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Render any [`Serialize`] as indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`].
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).ok_or_else(|| Error::new("value tree does not match target type"))
}

/// Build a [`Value`] with a `serde_json::json!`-like literal syntax.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([$($elem:tt),* $(,)?]) => { $crate::Value::Array(vec![$($crate::json!($elem)),*]) };
    ({$($key:tt : $val:tt),* $(,)?}) => {
        $crate::Value::object([$(($key.to_string(), $crate::json!($val))),*])
    };
    ($other:expr) => { $crate::value_from($other) };
}

/// `json!` helper: lift a Rust value into a [`Value`].
pub fn value_from<T: Serialize>(v: T) -> Value {
    v.to_value()
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, depth: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(n: f64, out: &mut String) {
    if n.is_finite() {
        let s = format!("{n}");
        out.push_str(&s);
        // Ensure round-trip as a float, not an integer.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for src in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\\n\""] {
            let v: Value = from_str(src).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{src}");
        }
    }

    #[test]
    fn round_trip_nested() {
        let src = r#"{"at_us":123456789012345,"event":{"kind":"tx","bytes":[1,2,3],"ok":true},"note":"a\"b"}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v.get("at_us").unwrap().as_u64(), Some(123_456_789_012_345));
        let back = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&back).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("hello").is_err());
        assert!(from_str::<Value>("{\"a\":1} x").is_err());
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"a": 1u64, "b": [true, null], "c": "s"});
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("c").unwrap().as_str(), Some("s"));
    }
}
