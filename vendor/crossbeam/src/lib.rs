//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel` — multi-producer multi-consumer
//! channels with the same disconnect semantics as crossbeam-channel
//! (send fails once all receivers are gone; recv drains the queue and
//! then fails once all senders are gone). Built on Mutex + Condvar
//! rather than a lock-free queue: the engine's demux channels move
//! whole datagrams at network rates, where a well-shaped mutex queue
//! is nowhere near the bottleneck.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half; clonable (MPMC).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The channel is disconnected (no receivers); the value comes back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is empty and disconnected (no senders).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a non-blocking receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Nothing queued and every sender is gone.
        Disconnected,
    }

    /// Why a bounded receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed.
        Timeout,
        /// Nothing queued and every sender is gone.
        Disconnected,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Channel holding at most `cap` queued values; senders block when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    fn lock<T>(inner: &Inner<T>) -> std::sync::MutexGuard<'_, State<T>> {
        inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    impl<T> Sender<T> {
        /// Queue `value`, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.inner);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self.inner.cap.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .inner
                    .not_full
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Queue `value` only if there is room right now.
        pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.inner);
            if st.receivers == 0 || self.inner.cap.is_some_and(|c| st.queue.len() >= c) {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Queued values right now.
        #[must_use]
        pub fn len(&self) -> usize {
            lock(&self.inner).queue.len()
        }

        /// Whether the queue is empty right now.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Take the next value, blocking until one arrives or all
        /// senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = lock(&self.inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .inner
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// As [`Receiver::recv`] with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = lock(&self.inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .inner
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = g;
            }
        }

        /// Take the next value only if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = lock(&self.inner);
            if let Some(v) = st.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Queued values right now.
        #[must_use]
        pub fn len(&self) -> usize {
            lock(&self.inner).queue.len()
        }

        /// Whether the queue is empty right now.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            lock(&self.inner).senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            lock(&self.inner).receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.inner);
            st.senders -= 1;
            if st.senders == 0 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.inner);
            st.receivers -= 1;
            if st.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));

            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = bounded::<u64>(4);
            let mut handles = Vec::new();
            for t in 0..3 {
                let tx = tx.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let mut consumers = Vec::new();
            for _ in 0..2 {
                let rx = rx.clone();
                consumers.push(std::thread::spawn(move || {
                    let mut got = 0u64;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                }));
            }
            drop(rx);
            for h in handles {
                h.join().unwrap();
            }
            let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 300);
        }
    }
}
