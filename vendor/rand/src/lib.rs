//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace vendors the small subset of the rand 0.8 API it actually
//! uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen_bool` / `gen_range`), [`rngs::StdRng`], [`thread_rng`],
//! [`random`] and [`seq::SliceRandom`]. The generator behind all of it
//! is xoshiro256** — fast, tiny and plenty for protocol nonces, test
//! vectors and simulation noise. It is NOT a CSPRNG; neither was the
//! role it plays here (hash-chain seeds in this repo are secrets only
//! within the threat model of the simulation, and every consumer that
//! needs determinism seeds explicitly via `seed_from_u64`).

use std::ops::{Range, RangeInclusive};

/// Core interface: a source of random bits. Object safe, mirroring
/// `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with splitmix64 (deterministic).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }

    /// Construct from environmental entropy (time, pid, ASLR).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_u64())
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn entropy_u64() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let stack_probe = 0u8;
    let aslr = &stack_probe as *const u8 as u64;
    let ctr = {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CTR: AtomicU64 = AtomicU64::new(0);
        CTR.fetch_add(0x9E37_79B9, Ordering::Relaxed)
    };
    let mut sm = SplitMix64(
        t.as_nanos() as u64 ^ (u64::from(std::process::id()) << 32) ^ aslr.rotate_left(17) ^ ctr,
    );
    sm.next()
}

/// Types producible uniformly at random (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform integer in `[0, span)` (`span == 0` means the full u64 range),
/// using Lemire-style rejection to avoid modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        f64::sample_standard(self) < p
    }

    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// One value of an inferred type from a freshly seeded generator.
pub fn random<T: Standard>() -> T {
    T::sample_standard(&mut rngs::StdRng::from_entropy())
}

/// A handle to a thread-local generator.
pub fn thread_rng() -> ThreadRng {
    ThreadRng { _priv: () }
}

/// Thread-local generator handle returned by [`thread_rng`].
#[derive(Debug, Clone)]
pub struct ThreadRng {
    _priv: (),
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
    fn next_u64(&mut self) -> u64 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u64())
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        THREAD_RNG.with(|r| r.borrow_mut().fill_bytes(dest))
    }
}

thread_local! {
    static THREAD_RNG: std::cell::RefCell<rngs::StdRng> =
        std::cell::RefCell::new(rngs::StdRng::from_entropy());
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256**. Deterministic for a
    /// given seed (all protocol tests rely on `seed_from_u64`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&v[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(&mut *rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((0..self.len()).sample_from(&mut *rng))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_matches_next_u64_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &b.next_u64().to_le_bytes());
        assert_eq!(&buf[8..], &b.next_u64().to_le_bytes());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0..=5u64);
            assert!(w <= 5);
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((3_000..7_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn dyn_object_safety() {
        let mut r = StdRng::seed_from_u64(4);
        let dynr: &mut dyn RngCore = &mut r;
        let _ = dynr.next_u32();
        let mut buf = [0u8; 3];
        dynr.fill_bytes(&mut buf);
    }
}
