//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io registry, so this crate
//! reimplements the slice of the proptest 1.x API the workspace's
//! property tests use: [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, tuple and range strategies, [`collection::vec`],
//! `any::<T>()`, `prop_oneof!`, and the `proptest! { #[test] fn f(x in
//! strat) { .. } }` runner with `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports the seed it was generated
//!   from; rerun with `PROPTEST_SEED=<seed>` to reproduce exactly.
//! - Generation is a plain function of an RNG, not a value tree.
//! - Case counts honor `ProptestConfig::with_cases` and the
//!   `PROPTEST_CASES` env var.

pub use runner::TestCaseError;

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generate an intermediate value, then generate from the
        /// strategy `f` builds out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `arms` each generation.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies per type.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, Standard};

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arb_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    arb_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            f64::sample_standard(rng)
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut StdRng) -> [u8; N] {
            let mut out = [0u8; N];
            rng.fill_bytes(&mut out);
            out
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod runner {
    //! The per-test case loop behind the `proptest!` macro.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Why one generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out; it does not count.
        Reject(String),
        /// A `prop_assert!` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// An assumption-violation rejection.
        #[must_use]
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }

        /// A hard failure.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Run `f` for the configured number of cases. Each case gets its
    /// own sub-seed so a failure can be reproduced in isolation via
    /// `PROPTEST_SEED=<reported seed>`.
    pub fn run<F>(config: &super::ProptestConfig, test_name: &str, mut f: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let forced_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok());
        let cases = match forced_seed {
            Some(_) => 1,
            None => std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse::<u32>().ok())
                .unwrap_or(config.cases)
                .max(1),
        };
        let base = fnv1a(test_name);
        let mut accepted = 0u32;
        let mut rejected = 0u64;
        let max_rejects = u64::from(cases) * 64 + 1024;
        let mut case_index = 0u64;
        while accepted < cases {
            let seed = forced_seed.unwrap_or(base ^ case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = StdRng::seed_from_u64(seed);
            // Decorrelate from other tests that share a case index.
            let _ = rng.next_u64();
            case_index += 1;
            match f(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "{test_name}: too many prop_assume! rejections ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{test_name}: case {} failed (reproduce with PROPTEST_SEED={seed}): {msg}",
                        accepted + 1
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! Everything the test files import with `use proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Soft assertion: fails the current case with location info.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format_args!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Soft equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}: `{} == {}`\n  left: {:?}\n right: {:?}",
            format_args!($($fmt)+),
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Soft inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($parm:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::runner::run(&config, stringify!($name), |__proptest_rng| {
                $(let $parm = $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn map_preserves_invariant(x in evens()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_and_vecs(
            (a, b) in (0u32..10, 10u32..20),
            v in crate::collection::vec(any::<u8>(), 3..7),
        ) {
            prop_assert!(a < 10 && (10..20).contains(&b));
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn oneof_hits_every_arm(x in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn assume_rejects_without_failing(x in any::<u8>()) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn flat_map_dependent_generation() {
        let strat = (1usize..5).prop_flat_map(|n| crate::collection::vec(Just(n), n));
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng as _;
        for _ in 0..32 {
            let v = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(!v.is_empty() && v.len() == v[0]);
        }
    }

    #[test]
    #[should_panic(expected = "PROPTEST_SEED")]
    fn failure_reports_seed() {
        let config = ProptestConfig::with_cases(4);
        crate::runner::run(&config, "failure_reports_seed", |_rng| {
            Err(TestCaseError::fail("always fails"))
        });
    }
}
