//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()`/`read()`/`write()` return guards directly). A poisoned
//! std lock — a thread panicked while holding it — is treated the way
//! parking_lot treats it: the lock is simply taken over, because a
//! panicking engine worker must not wedge every other shard.

use std::sync::TryLockError;

/// Guard types, re-exported under parking_lot's names.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Shared read guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Take the lock if free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until a shared read guard is held.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Block until the exclusive write guard is held.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Shared read guard if no writer holds the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive guard if the lock is free.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard and sleep until notified.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner
            .wait(guard)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// As [`Condvar::wait`] with an upper bound; `true` in the second
    /// slot means the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.inner.wait_timeout(guard, dur) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(p) => {
                let (g, t) = p.into_inner();
                (g, t.timed_out())
            }
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        assert!(l.try_write().is_none());
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
