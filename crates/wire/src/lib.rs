#![warn(missing_docs)]

//! On-the-wire packet formats for ALPHA.
//!
//! The protocol's packet vocabulary (Figs. 2, 3 of the paper):
//!
//! | packet | direction | carries |
//! |---|---|---|
//! | **S1** | signer → verifier | fresh signature-chain element + pre-signature(s) (MACs in Base/ALPHA-C, a keyed Merkle root in ALPHA-M) |
//! | **A1** | verifier → signer | fresh acknowledgment-chain element (+ pre-ack/pre-nack commitments or an AMT root in reliable mode) |
//! | **S2** | signer → verifier | disclosed MAC key + message (+ Merkle authentication path in ALPHA-M) |
//! | **A2** | verifier → signer | disclosed ack-chain element + verdict disclosure(s) |
//! | **HS1/HS2** | both | bootstrap handshake: hash-chain anchors, optionally signed with a public key (§3.4) |
//!
//! Every packet is parsed by *relays that trust nothing*: parsing is
//! allocation-bounded ([`limits`]), rejects trailing bytes, and returns
//! typed [`Error`]s instead of panicking on any input. Round-tripping
//! (`emit` → `parse`) is exercised by unit and property tests.

mod cursor;
mod packet;
mod pool;
mod view;

pub use packet::{
    bundle, A2Disclosure, AckCommit, Body, Handshake, HandshakeAuth, HandshakeRole, Packet,
    PacketType, PreSignature, TreeDescriptor,
};
pub use pool::{Frame, FramePool, PoolStats};
pub use view::{
    A2DisclosureView, AmtSlice, BodyView, DigestPath, DigestSlice, HandshakeAuthView,
    HandshakeView, PacketView, PreSignatureView, TreeSlice,
};

/// Parse-time resource limits.
///
/// A malicious S1 flood must not be able to force unbounded allocation on
/// relays (§3.5 discusses limiting S1 size for exactly this reason); these
/// caps bound what a single packet can ask for.
pub mod limits {
    /// Maximum pre-signatures in one ALPHA-C S1 packet.
    pub const MAX_PRESIGS: usize = 4096;
    /// Maximum Merkle authentication path length (2^64 leaves is absurd;
    /// 64 keeps the arithmetic honest). Aliases the capacity of the shared
    /// [`alpha_crypto::merkle::DigestPath`] stack path.
    pub const MAX_PATH: usize = alpha_crypto::merkle::MAX_PATH;
    /// Maximum payload bytes in one S2 packet.
    pub const MAX_PAYLOAD: usize = 65_535;
    /// Maximum verdict disclosures batched in one A2 packet.
    pub const MAX_DISCLOSURES: usize = 1024;
    /// Maximum opaque key/signature blob in a handshake packet.
    pub const MAX_AUTH_BLOB: usize = 4096;
    /// Maximum packets in one piggyback bundle frame.
    pub const MAX_BUNDLE: usize = 16;
    /// Maximum leaves announced for one ALPHA-M bundle.
    pub const MAX_LEAVES: u32 = 1 << 24;
}

/// Wire parsing/encoding errors. Every variant is reachable from
/// attacker-controlled input and handled without panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// Buffer ended before the structure did.
    Truncated,
    /// Leading magic bytes are not `0xA1FA`.
    BadMagic,
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown packet type byte.
    UnknownType(u8),
    /// Unknown hash algorithm byte.
    UnknownAlgorithm(u8),
    /// Unknown enum discriminant inside a body.
    BadDiscriminant(u8),
    /// A count or length field exceeds the [`limits`].
    LimitExceeded,
    /// Bytes remained after the structure ended.
    TrailingBytes,
    /// A structurally impossible combination (e.g. zero leaves).
    Malformed,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Truncated => write!(f, "packet truncated"),
            Error::BadMagic => write!(f, "bad magic"),
            Error::BadVersion(v) => write!(f, "unsupported version {v}"),
            Error::UnknownType(t) => write!(f, "unknown packet type {t}"),
            Error::UnknownAlgorithm(a) => write!(f, "unknown hash algorithm {a}"),
            Error::BadDiscriminant(d) => write!(f, "bad discriminant {d}"),
            Error::LimitExceeded => write!(f, "length or count limit exceeded"),
            Error::TrailingBytes => write!(f, "trailing bytes after packet"),
            Error::Malformed => write!(f, "malformed packet"),
        }
    }
}

impl std::error::Error for Error {}
