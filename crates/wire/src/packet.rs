//! Packet structures and their binary encoding.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! 0        2        3        4        5            13           21
//! +--------+--------+--------+--------+------------+------------+------
//! | magic  | version| type   | alg    | assoc id   | chain index| body…
//! | 0xA1FA |  0x01  |        |        |   u64      |    u64     |
//! +--------+--------+--------+--------+------------+------------+------
//! ```
//!
//! `chain index` is the 1-based hash-chain position of the chain element
//! carried by the packet (announce element for S1/A1, disclosed key for
//! S2/A2, unused = 0 for handshakes). Carrying the index explicitly lets
//! verifiers and relays catch up over lost packets by hashing forward,
//! instead of discarding everything after a gap.

use crate::cursor::{Reader, Writer};
use crate::{limits, Error};
use alpha_crypto::amt::{AmtDisclosure, SECRET_LEN};
use alpha_crypto::{Algorithm, Digest};

pub(crate) const MAGIC: u16 = 0xA1FA;
pub(crate) const VERSION: u8 = 1;

/// Discriminants for the packet types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketType {
    /// Pre-signature announcement.
    S1 = 1,
    /// Acknowledgment / willingness to receive.
    A1 = 2,
    /// Key disclosure + message.
    S2 = 3,
    /// Verdict disclosure.
    A2 = 4,
    /// Handshake initiation.
    Hs1 = 5,
    /// Handshake reply.
    Hs2 = 6,
}

/// A piggyback bundle: several packets in one frame (§3.2.1: "a host that
/// acts as signer and verifier can combine the packet transmissions of
/// both directions and send A and S packets of independent simplex
/// channels in the same packet"). Encoded as a one-byte magic-breaking
/// prefix so a bundle can never be confused with a single packet.
pub mod bundle {
    use super::Packet;
    use crate::{limits, Error};

    /// Leading byte of a bundle frame (a plain packet starts with 0xA1).
    pub const BUNDLE_TAG: u8 = 0xB1;

    /// Encode up to [`limits::MAX_BUNDLE`] packets into one frame.
    /// Returns [`Error::LimitExceeded`] for 0 or more than
    /// `MAX_BUNDLE` packets (API misuse must not abort a relay).
    pub fn emit(packets: &[Packet]) -> Result<Vec<u8>, Error> {
        let mut out = Vec::new();
        emit_into(packets, &mut out)?;
        Ok(out)
    }

    /// [`emit`] into a caller-supplied buffer (appended; callers clear
    /// between frames to reuse the allocation).
    pub fn emit_into(packets: &[Packet], out: &mut Vec<u8>) -> Result<(), Error> {
        if !(1..=limits::MAX_BUNDLE).contains(&packets.len()) {
            return Err(Error::LimitExceeded);
        }
        out.push(BUNDLE_TAG);
        out.push(packets.len() as u8);
        for p in packets {
            out.extend_from_slice(&(p.wire_len() as u16).to_be_bytes());
            p.encode_into(out);
        }
        Ok(())
    }

    /// Bundle already-encoded packets without re-encoding them: one slice
    /// is copied through as a bare packet frame, several get the bundle
    /// framing. This is the relay's zero-copy forwarding path — inner
    /// packets that passed verification are spliced from the incoming
    /// datagram straight into the outgoing frame.
    pub fn emit_slices_into(packets: &[&[u8]], out: &mut Vec<u8>) -> Result<(), Error> {
        match packets {
            [] => Err(Error::LimitExceeded),
            [one] => {
                out.extend_from_slice(one);
                Ok(())
            }
            many => {
                if many.len() > limits::MAX_BUNDLE {
                    return Err(Error::LimitExceeded);
                }
                out.push(BUNDLE_TAG);
                out.push(many.len() as u8);
                for p in many {
                    if p.len() > u16::MAX as usize {
                        return Err(Error::LimitExceeded);
                    }
                    out.extend_from_slice(&(p.len() as u16).to_be_bytes());
                    out.extend_from_slice(p);
                }
                Ok(())
            }
        }
    }

    /// Split a frame into its constituent packet slices without parsing
    /// or allocating: a non-bundle frame yields itself as the single
    /// entry. Validates the bundle framing (count, length prefixes, no
    /// trailing bytes) but not the inner packets. Returns the number of
    /// slices written into `out`.
    pub fn split<'a>(
        frame: &'a [u8],
        out: &mut [&'a [u8]; limits::MAX_BUNDLE],
    ) -> Result<usize, Error> {
        if frame.first() != Some(&BUNDLE_TAG) {
            out[0] = frame;
            return Ok(1);
        }
        let count = *frame.get(1).ok_or(Error::Truncated)? as usize;
        if count == 0 || count > limits::MAX_BUNDLE {
            return Err(Error::LimitExceeded);
        }
        let mut rest = &frame[2..];
        for slot in out.iter_mut().take(count) {
            if rest.len() < 2 {
                return Err(Error::Truncated);
            }
            let len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
            if rest.len() < 2 + len {
                return Err(Error::Truncated);
            }
            *slot = &rest[2..2 + len];
            rest = &rest[2 + len..];
        }
        if !rest.is_empty() {
            return Err(Error::TrailingBytes);
        }
        Ok(count)
    }

    /// Parse a frame that may be either a bundle or a single packet;
    /// returns the contained packets in order.
    pub fn parse(frame: &[u8]) -> Result<Vec<Packet>, Error> {
        if frame.first() != Some(&BUNDLE_TAG) {
            return Packet::parse(frame).map(|p| vec![p]);
        }
        let count = *frame.get(1).ok_or(Error::Truncated)? as usize;
        if count == 0 || count > limits::MAX_BUNDLE {
            return Err(Error::LimitExceeded);
        }
        let mut rest = &frame[2..];
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            if rest.len() < 2 {
                return Err(Error::Truncated);
            }
            let len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
            if rest.len() < 2 + len {
                return Err(Error::Truncated);
            }
            out.push(Packet::parse(&rest[2..2 + len])?);
            rest = &rest[2 + len..];
        }
        if !rest.is_empty() {
            return Err(Error::TrailingBytes);
        }
        Ok(out)
    }
}

/// The pre-signature material in an S1 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreSignature {
    /// One MAC per covered message (Base mode sends exactly one; ALPHA-C
    /// packs many, §3.3.1).
    Cumulative(Vec<Digest>),
    /// A single Merkle-tree root covering `leaves` messages (ALPHA-M,
    /// §3.3.2). The root is keyed with the undisclosed chain element.
    MerkleRoot {
        /// Keyed root `H(h | b0 | b1)`.
        root: Digest,
        /// Number of real leaves (S2 packets to expect).
        leaves: u32,
    },
    /// Multiple Merkle-tree roots in one S1 — the ALPHA-C + ALPHA-M
    /// combination of §3.3.2's closing paragraph: shallower trees trade a
    /// little relay buffer (one root per tree) for shorter authentication
    /// paths in every S2.
    MerkleForest(Vec<TreeDescriptor>),
}

/// One tree of a [`PreSignature::MerkleForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeDescriptor {
    /// Keyed root of this tree.
    pub root: Digest,
    /// Real leaves under this root.
    pub leaves: u32,
}

impl PreSignature {
    /// Number of messages this pre-signature covers.
    #[must_use]
    pub fn covered(&self) -> u32 {
        match self {
            PreSignature::Cumulative(v) => v.len() as u32,
            PreSignature::MerkleRoot { leaves, .. } => *leaves,
            PreSignature::MerkleForest(trees) => trees.iter().map(|t| t.leaves).sum(),
        }
    }
}

/// The acknowledgment commitment in an A1 packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckCommit {
    /// Unreliable mode: A1 only authenticates willingness to receive.
    None,
    /// Reliable Base/ALPHA-C: flat pre-ack + pre-nack hashes (§3.2.2).
    Flat {
        /// `H(h | "1" | s_ack)`.
        pre_ack: Digest,
        /// `H(h | "0" | s_nack)`.
        pre_nack: Digest,
    },
    /// Reliable ALPHA-M: an Acknowledgment Merkle Tree root (§3.3.3).
    Amt {
        /// Keyed AMT root `H(left | right | h)`.
        root: Digest,
        /// Number of packets the AMT can acknowledge.
        leaves: u32,
    },
}

/// The verdict disclosure in an A2 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum A2Disclosure {
    /// Flat pre-(n)ack disclosure: verdict flag + matching secret.
    Flat {
        /// `true` = ack, `false` = nack.
        ack: bool,
        /// The disclosed secret.
        secret: [u8; SECRET_LEN],
    },
    /// One or more AMT verdict disclosures (selective acknowledgment).
    Amt(Vec<AmtDisclosure>),
}

/// Handshake direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeRole {
    /// First packet of the bootstrap exchange.
    Init,
    /// Responder's half.
    Reply,
}

/// Optional public-key authentication of a handshake (§3.4 *protected
/// bootstrapping*). The key and signature are scheme-tagged opaque blobs;
/// `alpha-core` interprets them via `alpha-pk`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeAuth {
    /// Scheme tag: 1 = RSA, 2 = DSA, 3 = ECDSA (mirrors `alpha_pk::PublicKey`).
    pub scheme: u8,
    /// Serialized public key.
    pub public_key: Vec<u8>,
    /// Signature over the handshake's anchor fields.
    pub signature: Vec<u8>,
}

/// Bootstrap handshake body: the four hash-chain anchors of §3.1 are
/// exchanged as two per direction (each host sends its signature and
/// acknowledgment anchors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handshake {
    /// Init or reply.
    pub role: HandshakeRole,
    /// Sender's signature-chain anchor.
    pub sig_anchor: Digest,
    /// Index (= length) of the signature chain.
    pub sig_anchor_index: u64,
    /// Sender's acknowledgment-chain anchor.
    pub ack_anchor: Digest,
    /// Index (= length) of the acknowledgment chain.
    pub ack_anchor_index: u64,
    /// Optional public-key authentication.
    pub auth: Option<HandshakeAuth>,
}

impl Handshake {
    /// The byte string a protected bootstrap signs: both anchors with
    /// their indices, domain-separated.
    #[must_use]
    pub fn signed_bytes(&self, assoc_id: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(80);
        out.extend_from_slice(b"ALPHA-HS");
        out.extend_from_slice(&assoc_id.to_be_bytes());
        out.push(match self.role {
            HandshakeRole::Init => 1,
            HandshakeRole::Reply => 2,
        });
        out.extend_from_slice(&self.sig_anchor_index.to_be_bytes());
        out.extend_from_slice(self.sig_anchor.as_bytes());
        out.extend_from_slice(&self.ack_anchor_index.to_be_bytes());
        out.extend_from_slice(self.ack_anchor.as_bytes());
        out
    }
}

/// Packet bodies, one per [`PacketType`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// S1: fresh chain element + pre-signature(s).
    S1 {
        /// Announce-role signature-chain element (index in the header).
        element: Digest,
        /// Pre-signature material.
        presig: PreSignature,
    },
    /// A1: fresh acknowledgment-chain element + optional commitments.
    A1 {
        /// Announce-role acknowledgment-chain element.
        element: Digest,
        /// Reliability commitment.
        commit: AckCommit,
    },
    /// S2: disclosed MAC key + one message.
    S2 {
        /// Disclosed signature-chain element (the MAC key).
        key: Digest,
        /// Message index within the covered bundle (0 in Base mode).
        seq: u32,
        /// Merkle authentication path (empty outside ALPHA-M).
        path: Vec<Digest>,
        /// The protected message.
        payload: Vec<u8>,
    },
    /// A2: disclosed acknowledgment-chain element + verdict(s).
    A2 {
        /// Disclosed acknowledgment-chain element.
        element: Digest,
        /// Verdict disclosure.
        disclosure: A2Disclosure,
    },
    /// HS1/HS2: bootstrap handshake.
    Handshake(Handshake),
}

/// A complete ALPHA packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Association identifier (shared context between the two hosts).
    pub assoc_id: u64,
    /// Hash algorithm of every digest in the packet.
    pub alg: Algorithm,
    /// Chain position of the carried element (0 for handshakes).
    pub chain_index: u64,
    /// Type-specific body.
    pub body: Body,
}

impl Packet {
    /// The packet's type tag.
    #[must_use]
    pub fn packet_type(&self) -> PacketType {
        match &self.body {
            Body::S1 { .. } => PacketType::S1,
            Body::A1 { .. } => PacketType::A1,
            Body::S2 { .. } => PacketType::S2,
            Body::A2 { .. } => PacketType::A2,
            Body::Handshake(h) => match h.role {
                HandshakeRole::Init => PacketType::Hs1,
                HandshakeRole::Reply => PacketType::Hs2,
            },
        }
    }

    /// Serialize to a fresh byte vector. Hot paths should prefer
    /// [`Packet::encode_into`] with a reused buffer.
    #[must_use]
    pub fn emit(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut out);
        out
    }

    /// Serialize by appending to a caller-supplied buffer. The caller
    /// clears (not drops) the buffer between packets to recycle its
    /// allocation.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = Writer::new(out);
        w.u16(MAGIC);
        w.u8(VERSION);
        w.u8(self.packet_type() as u8);
        w.u8(alg_tag(self.alg));
        w.u64(self.assoc_id);
        w.u64(self.chain_index);
        match &self.body {
            Body::S1 { element, presig } => {
                w.digest(element);
                match presig {
                    PreSignature::Cumulative(macs) => {
                        w.u8(1);
                        w.u16(macs.len() as u16);
                        for m in macs {
                            w.digest(m);
                        }
                    }
                    PreSignature::MerkleRoot { root, leaves } => {
                        w.u8(2);
                        w.u32(*leaves);
                        w.digest(root);
                    }
                    PreSignature::MerkleForest(trees) => {
                        w.u8(3);
                        w.u16(trees.len() as u16);
                        for t in trees {
                            w.u32(t.leaves);
                            w.digest(&t.root);
                        }
                    }
                }
            }
            Body::A1 { element, commit } => {
                w.digest(element);
                match commit {
                    AckCommit::None => w.u8(0),
                    AckCommit::Flat { pre_ack, pre_nack } => {
                        w.u8(1);
                        w.digest(pre_ack);
                        w.digest(pre_nack);
                    }
                    AckCommit::Amt { root, leaves } => {
                        w.u8(2);
                        w.u32(*leaves);
                        w.digest(root);
                    }
                }
            }
            Body::S2 {
                key,
                seq,
                path,
                payload,
            } => {
                w.digest(key);
                w.u32(*seq);
                w.u8(path.len() as u8);
                for p in path {
                    w.digest(p);
                }
                w.u16(payload.len() as u16);
                w.bytes(payload);
            }
            Body::A2 {
                element,
                disclosure,
            } => {
                w.digest(element);
                match disclosure {
                    A2Disclosure::Flat { ack, secret } => {
                        w.u8(1);
                        w.u8(u8::from(*ack));
                        w.bytes(secret);
                    }
                    A2Disclosure::Amt(items) => {
                        w.u8(2);
                        w.u16(items.len() as u16);
                        for it in items {
                            w.u32(it.packet_index);
                            w.u8(u8::from(it.ack));
                            w.bytes(&it.secret);
                            w.u8(it.path.len() as u8);
                            for p in &it.path {
                                w.digest(p);
                            }
                        }
                    }
                }
            }
            Body::Handshake(h) => {
                w.u64(h.sig_anchor_index);
                w.digest(&h.sig_anchor);
                w.u64(h.ack_anchor_index);
                w.digest(&h.ack_anchor);
                match &h.auth {
                    None => w.u8(0),
                    Some(a) => {
                        w.u8(1);
                        w.u8(a.scheme);
                        w.u16(a.public_key.len() as u16);
                        w.bytes(&a.public_key);
                        w.u16(a.signature.len() as u16);
                        w.bytes(&a.signature);
                    }
                }
            }
        }
    }

    /// Encoded length, computed arithmetically — no allocation, exact
    /// per construction (checked against `emit` by the property tests).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        let dl = self.alg.digest_len();
        const HEADER: usize = 21; // magic 2 + ver 1 + type 1 + alg 1 + assoc 8 + index 8
        HEADER
            + match &self.body {
                Body::S1 { presig, .. } => {
                    dl + 1
                        + match presig {
                            PreSignature::Cumulative(macs) => 2 + macs.len() * dl,
                            PreSignature::MerkleRoot { .. } => 4 + dl,
                            PreSignature::MerkleForest(trees) => 2 + trees.len() * (4 + dl),
                        }
                }
                Body::A1 { commit, .. } => {
                    dl + 1
                        + match commit {
                            AckCommit::None => 0,
                            AckCommit::Flat { .. } => 2 * dl,
                            AckCommit::Amt { .. } => 4 + dl,
                        }
                }
                Body::S2 { path, payload, .. } => dl + 4 + 1 + path.len() * dl + 2 + payload.len(),
                Body::A2 { disclosure, .. } => {
                    dl + 1
                        + match disclosure {
                            A2Disclosure::Flat { .. } => 1 + SECRET_LEN,
                            A2Disclosure::Amt(items) => {
                                2 + items
                                    .iter()
                                    .map(|it| 4 + 1 + SECRET_LEN + 1 + it.path.len() * dl)
                                    .sum::<usize>()
                            }
                        }
                }
                Body::Handshake(h) => {
                    8 + dl
                        + 8
                        + dl
                        + 1
                        + match &h.auth {
                            None => 0,
                            Some(a) => 1 + 2 + a.public_key.len() + 2 + a.signature.len(),
                        }
                }
            }
    }

    /// Parse a packet; rejects any malformed, oversized, or trailing input.
    pub fn parse(buf: &[u8]) -> Result<Packet, Error> {
        let mut r = Reader::new(buf);
        if r.u16()? != MAGIC {
            return Err(Error::BadMagic);
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(Error::BadVersion(version));
        }
        let ptype = r.u8()?;
        let alg = parse_alg(r.u8()?)?;
        let assoc_id = r.u64()?;
        let chain_index = r.u64()?;
        let body = match ptype {
            1 => {
                let element = r.digest(alg)?;
                let presig = match r.u8()? {
                    1 => {
                        let count = r.u16()? as usize;
                        if count == 0 || count > limits::MAX_PRESIGS {
                            return Err(Error::LimitExceeded);
                        }
                        PreSignature::Cumulative(r.digests(alg, count)?)
                    }
                    2 => {
                        let leaves = r.u32()?;
                        if leaves == 0 || leaves > limits::MAX_LEAVES {
                            return Err(Error::LimitExceeded);
                        }
                        PreSignature::MerkleRoot {
                            root: r.digest(alg)?,
                            leaves,
                        }
                    }
                    3 => {
                        let count = r.u16()? as usize;
                        if count == 0 || count > limits::MAX_PRESIGS {
                            return Err(Error::LimitExceeded);
                        }
                        let mut trees = Vec::with_capacity(count.min(64));
                        let mut total: u64 = 0;
                        for _ in 0..count {
                            let leaves = r.u32()?;
                            if leaves == 0 {
                                return Err(Error::Malformed);
                            }
                            total += u64::from(leaves);
                            if total > u64::from(limits::MAX_LEAVES) {
                                return Err(Error::LimitExceeded);
                            }
                            trees.push(TreeDescriptor {
                                root: r.digest(alg)?,
                                leaves,
                            });
                        }
                        PreSignature::MerkleForest(trees)
                    }
                    d => return Err(Error::BadDiscriminant(d)),
                };
                Body::S1 { element, presig }
            }
            2 => {
                let element = r.digest(alg)?;
                let commit = match r.u8()? {
                    0 => AckCommit::None,
                    1 => AckCommit::Flat {
                        pre_ack: r.digest(alg)?,
                        pre_nack: r.digest(alg)?,
                    },
                    2 => {
                        let leaves = r.u32()?;
                        if leaves == 0 || leaves > limits::MAX_LEAVES {
                            return Err(Error::LimitExceeded);
                        }
                        AckCommit::Amt {
                            root: r.digest(alg)?,
                            leaves,
                        }
                    }
                    d => return Err(Error::BadDiscriminant(d)),
                };
                Body::A1 { element, commit }
            }
            3 => {
                let key = r.digest(alg)?;
                let seq = r.u32()?;
                let path_len = r.u8()? as usize;
                if path_len > limits::MAX_PATH {
                    return Err(Error::LimitExceeded);
                }
                let path = r.digests(alg, path_len)?;
                let payload_len = r.u16()? as usize;
                if payload_len > limits::MAX_PAYLOAD {
                    return Err(Error::LimitExceeded);
                }
                let payload = r.take(payload_len)?.to_vec();
                Body::S2 {
                    key,
                    seq,
                    path,
                    payload,
                }
            }
            4 => {
                let element = r.digest(alg)?;
                let disclosure = match r.u8()? {
                    1 => {
                        let ack = parse_bool(r.u8()?)?;
                        let mut secret = [0u8; SECRET_LEN];
                        secret.copy_from_slice(r.take(SECRET_LEN)?);
                        A2Disclosure::Flat { ack, secret }
                    }
                    2 => {
                        let count = r.u16()? as usize;
                        if count == 0 || count > limits::MAX_DISCLOSURES {
                            return Err(Error::LimitExceeded);
                        }
                        let mut items = Vec::with_capacity(count.min(64));
                        for _ in 0..count {
                            let packet_index = r.u32()?;
                            let ack = parse_bool(r.u8()?)?;
                            let mut secret = [0u8; SECRET_LEN];
                            secret.copy_from_slice(r.take(SECRET_LEN)?);
                            let path_len = r.u8()? as usize;
                            if path_len > limits::MAX_PATH {
                                return Err(Error::LimitExceeded);
                            }
                            let path = r.digests(alg, path_len)?;
                            items.push(AmtDisclosure {
                                packet_index,
                                ack,
                                secret,
                                path,
                            });
                        }
                        A2Disclosure::Amt(items)
                    }
                    d => return Err(Error::BadDiscriminant(d)),
                };
                Body::A2 {
                    element,
                    disclosure,
                }
            }
            t @ (5 | 6) => {
                let sig_anchor_index = r.u64()?;
                let sig_anchor = r.digest(alg)?;
                let ack_anchor_index = r.u64()?;
                let ack_anchor = r.digest(alg)?;
                let auth = match r.u8()? {
                    0 => None,
                    1 => {
                        let scheme = r.u8()?;
                        let klen = r.u16()? as usize;
                        if klen > limits::MAX_AUTH_BLOB {
                            return Err(Error::LimitExceeded);
                        }
                        let public_key = r.take(klen)?.to_vec();
                        let slen = r.u16()? as usize;
                        if slen > limits::MAX_AUTH_BLOB {
                            return Err(Error::LimitExceeded);
                        }
                        let signature = r.take(slen)?.to_vec();
                        Some(HandshakeAuth {
                            scheme,
                            public_key,
                            signature,
                        })
                    }
                    d => return Err(Error::BadDiscriminant(d)),
                };
                Body::Handshake(Handshake {
                    role: if t == 5 {
                        HandshakeRole::Init
                    } else {
                        HandshakeRole::Reply
                    },
                    sig_anchor,
                    sig_anchor_index,
                    ack_anchor,
                    ack_anchor_index,
                    auth,
                })
            }
            t => return Err(Error::UnknownType(t)),
        };
        r.finish()?;
        Ok(Packet {
            assoc_id,
            alg,
            chain_index,
            body,
        })
    }
}

pub(crate) fn alg_tag(alg: Algorithm) -> u8 {
    match alg {
        Algorithm::Sha1 => 1,
        Algorithm::Sha256 => 2,
        Algorithm::MmoAes => 3,
    }
}

pub(crate) fn parse_alg(tag: u8) -> Result<Algorithm, Error> {
    match tag {
        1 => Ok(Algorithm::Sha1),
        2 => Ok(Algorithm::Sha256),
        3 => Ok(Algorithm::MmoAes),
        t => Err(Error::UnknownAlgorithm(t)),
    }
}

pub(crate) fn parse_bool(b: u8) -> Result<bool, Error> {
    match b {
        0 => Ok(false),
        1 => Ok(true),
        d => Err(Error::BadDiscriminant(d)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(alg: Algorithm, s: &str) -> Digest {
        alg.hash(s.as_bytes())
    }

    fn roundtrip(p: &Packet) {
        let bytes = p.emit();
        let parsed = Packet::parse(&bytes).expect("parses");
        assert_eq!(&parsed, p);
    }

    #[test]
    fn s1_roundtrips() {
        for alg in Algorithm::ALL {
            roundtrip(&Packet {
                assoc_id: 7,
                alg,
                chain_index: 15,
                body: Body::S1 {
                    element: d(alg, "el"),
                    presig: PreSignature::Cumulative(vec![d(alg, "m1"), d(alg, "m2")]),
                },
            });
            roundtrip(&Packet {
                assoc_id: 7,
                alg,
                chain_index: 15,
                body: Body::S1 {
                    element: d(alg, "el"),
                    presig: PreSignature::MerkleRoot {
                        root: d(alg, "r"),
                        leaves: 64,
                    },
                },
            });
        }
    }

    #[test]
    fn a1_roundtrips() {
        let alg = Algorithm::Sha1;
        for commit in [
            AckCommit::None,
            AckCommit::Flat {
                pre_ack: d(alg, "a"),
                pre_nack: d(alg, "n"),
            },
            AckCommit::Amt {
                root: d(alg, "amt"),
                leaves: 16,
            },
        ] {
            roundtrip(&Packet {
                assoc_id: 1,
                alg,
                chain_index: 9,
                body: Body::A1 {
                    element: d(alg, "ae"),
                    commit,
                },
            });
        }
    }

    #[test]
    fn s2_roundtrips() {
        let alg = Algorithm::MmoAes;
        roundtrip(&Packet {
            assoc_id: 2,
            alg,
            chain_index: 14,
            body: Body::S2 {
                key: d(alg, "key"),
                seq: 3,
                path: vec![d(alg, "p0"), d(alg, "p1"), d(alg, "p2")],
                payload: b"the protected message".to_vec(),
            },
        });
        // Empty payload and empty path both legal.
        roundtrip(&Packet {
            assoc_id: 2,
            alg,
            chain_index: 14,
            body: Body::S2 {
                key: d(alg, "key"),
                seq: 0,
                path: vec![],
                payload: vec![],
            },
        });
    }

    #[test]
    fn a2_roundtrips() {
        let alg = Algorithm::Sha256;
        roundtrip(&Packet {
            assoc_id: 3,
            alg,
            chain_index: 8,
            body: Body::A2 {
                element: d(alg, "ack el"),
                disclosure: A2Disclosure::Flat {
                    ack: true,
                    secret: [9u8; SECRET_LEN],
                },
            },
        });
        roundtrip(&Packet {
            assoc_id: 3,
            alg,
            chain_index: 8,
            body: Body::A2 {
                element: d(alg, "ack el"),
                disclosure: A2Disclosure::Amt(vec![
                    AmtDisclosure {
                        packet_index: 0,
                        ack: true,
                        secret: [1u8; SECRET_LEN],
                        path: vec![d(alg, "x"), d(alg, "y")],
                    },
                    AmtDisclosure {
                        packet_index: 5,
                        ack: false,
                        secret: [2u8; SECRET_LEN],
                        path: vec![d(alg, "z"), d(alg, "w")],
                    },
                ]),
            },
        });
    }

    #[test]
    fn handshake_roundtrips() {
        let alg = Algorithm::Sha1;
        for (role, auth) in [
            (HandshakeRole::Init, None),
            (
                HandshakeRole::Reply,
                Some(HandshakeAuth {
                    scheme: 1,
                    public_key: vec![4u8; 128],
                    signature: vec![5u8; 128],
                }),
            ),
        ] {
            roundtrip(&Packet {
                assoc_id: 4,
                alg,
                chain_index: 0,
                body: Body::Handshake(Handshake {
                    role,
                    sig_anchor: d(alg, "sa"),
                    sig_anchor_index: 1000,
                    ack_anchor: d(alg, "aa"),
                    ack_anchor_index: 1000,
                    auth,
                }),
            });
        }
    }

    #[test]
    fn rejects_bad_magic_version_type() {
        let alg = Algorithm::Sha1;
        let p = Packet {
            assoc_id: 1,
            alg,
            chain_index: 1,
            body: Body::A1 {
                element: d(alg, "e"),
                commit: AckCommit::None,
            },
        };
        let mut bytes = p.emit();
        let good = bytes.clone();

        bytes[0] = 0;
        assert_eq!(Packet::parse(&bytes), Err(Error::BadMagic));
        bytes = good.clone();
        bytes[2] = 99;
        assert_eq!(Packet::parse(&bytes), Err(Error::BadVersion(99)));
        bytes = good.clone();
        bytes[3] = 77;
        assert_eq!(Packet::parse(&bytes), Err(Error::UnknownType(77)));
        bytes = good.clone();
        bytes[4] = 0;
        assert_eq!(Packet::parse(&bytes), Err(Error::UnknownAlgorithm(0)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let alg = Algorithm::Sha1;
        let p = Packet {
            assoc_id: 1,
            alg,
            chain_index: 5,
            body: Body::S2 {
                key: d(alg, "k"),
                seq: 1,
                path: vec![d(alg, "p")],
                payload: b"data".to_vec(),
            },
        };
        let bytes = p.emit();
        for cut in 0..bytes.len() {
            let err = Packet::parse(&bytes[..cut]).unwrap_err();
            assert_eq!(err, Error::Truncated, "cut={cut}");
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let alg = Algorithm::Sha1;
        let p = Packet {
            assoc_id: 1,
            alg,
            chain_index: 1,
            body: Body::A1 {
                element: d(alg, "e"),
                commit: AckCommit::None,
            },
        };
        let mut bytes = p.emit();
        bytes.push(0);
        assert_eq!(Packet::parse(&bytes), Err(Error::TrailingBytes));
    }

    #[test]
    fn rejects_zero_and_oversized_counts() {
        let alg = Algorithm::Sha1;
        // Zero pre-signatures.
        let p = Packet {
            assoc_id: 1,
            alg,
            chain_index: 1,
            body: Body::S1 {
                element: d(alg, "e"),
                presig: PreSignature::Cumulative(vec![d(alg, "m")]),
            },
        };
        let mut bytes = p.emit();
        // count field sits right after header (22) + digest (20) + tag (1).
        let count_off = 21 + 20 + 1;
        bytes[count_off] = 0;
        bytes[count_off + 1] = 0;
        assert_eq!(Packet::parse(&bytes), Err(Error::LimitExceeded));
        // Oversized count with no matching data: limit check fires first.
        bytes[count_off] = 0xff;
        bytes[count_off + 1] = 0xff;
        assert_eq!(Packet::parse(&bytes), Err(Error::LimitExceeded));
    }

    #[test]
    fn rejects_bad_bool_and_discriminant() {
        let alg = Algorithm::Sha1;
        let p = Packet {
            assoc_id: 1,
            alg,
            chain_index: 1,
            body: Body::A2 {
                element: d(alg, "e"),
                disclosure: A2Disclosure::Flat {
                    ack: true,
                    secret: [0u8; SECRET_LEN],
                },
            },
        };
        let mut bytes = p.emit();
        let good = bytes.clone();
        let flag_off = 21 + 20 + 1; // header + element + discriminant
        bytes[flag_off] = 7;
        assert_eq!(Packet::parse(&bytes), Err(Error::BadDiscriminant(7)));
        bytes = good;
        bytes[flag_off - 1] = 9; // the disclosure discriminant itself
        assert_eq!(Packet::parse(&bytes), Err(Error::BadDiscriminant(9)));
    }

    #[test]
    fn signed_bytes_bind_all_anchor_fields() {
        let alg = Algorithm::Sha1;
        let hs = Handshake {
            role: HandshakeRole::Init,
            sig_anchor: d(alg, "sa"),
            sig_anchor_index: 10,
            ack_anchor: d(alg, "aa"),
            ack_anchor_index: 12,
            auth: None,
        };
        let base = hs.signed_bytes(1);
        let mut changed = hs.clone();
        changed.sig_anchor_index = 11;
        assert_ne!(base, changed.signed_bytes(1));
        assert_ne!(base, hs.signed_bytes(2));
        let mut changed = hs.clone();
        changed.role = HandshakeRole::Reply;
        assert_ne!(base, changed.signed_bytes(1));
    }

    #[test]
    fn wire_len_matches_emit() {
        let alg = Algorithm::Sha1;
        let p = Packet {
            assoc_id: 1,
            alg,
            chain_index: 1,
            body: Body::S1 {
                element: d(alg, "e"),
                presig: PreSignature::Cumulative(vec![d(alg, "m"); 20]),
            },
        };
        assert_eq!(p.wire_len(), p.emit().len());
        // S1 with 20 pre-signatures (the WMN configuration): header 21 +
        // element 20 + tag 1 + count 2 + 20·20.
        assert_eq!(p.wire_len(), 21 + 20 + 1 + 2 + 400);
    }
}

#[cfg(test)]
mod bundle_tests {
    use super::*;

    fn sample(alg: Algorithm, i: u64) -> Packet {
        Packet {
            assoc_id: i,
            alg,
            chain_index: i,
            body: Body::A1 {
                element: alg.hash(&i.to_be_bytes()),
                commit: AckCommit::None,
            },
        }
    }

    #[test]
    fn bundle_roundtrip() {
        let pkts: Vec<Packet> = (0..5).map(|i| sample(Algorithm::Sha1, i)).collect();
        let frame = bundle::emit(&pkts).unwrap();
        assert_eq!(frame[0], bundle::BUNDLE_TAG);
        assert_eq!(bundle::parse(&frame).unwrap(), pkts);
    }

    #[test]
    fn emit_rejects_bad_counts_without_panicking() {
        assert_eq!(bundle::emit(&[]), Err(Error::LimitExceeded));
        let pkts: Vec<Packet> = (0..crate::limits::MAX_BUNDLE as u64 + 1)
            .map(|i| sample(Algorithm::Sha1, i))
            .collect();
        assert_eq!(bundle::emit(&pkts), Err(Error::LimitExceeded));
        let mut out = Vec::new();
        assert_eq!(
            bundle::emit_into(&pkts, &mut out),
            Err(Error::LimitExceeded)
        );
        assert_eq!(
            bundle::emit_slices_into(&[], &mut out),
            Err(Error::LimitExceeded)
        );
    }

    #[test]
    fn split_matches_parse() {
        let pkts: Vec<Packet> = (0..4).map(|i| sample(Algorithm::Sha1, i)).collect();
        let frame = bundle::emit(&pkts).unwrap();
        let mut slices: [&[u8]; crate::limits::MAX_BUNDLE] = [&[]; crate::limits::MAX_BUNDLE];
        let n = bundle::split(&frame, &mut slices).unwrap();
        assert_eq!(n, 4);
        for (s, p) in slices[..n].iter().zip(&pkts) {
            assert_eq!(&Packet::parse(s).unwrap(), p);
        }
        // A bare packet splits into itself.
        let one = pkts[0].emit();
        let n = bundle::split(&one, &mut slices).unwrap();
        assert_eq!(n, 1);
        assert_eq!(slices[0], &one[..]);
    }

    #[test]
    fn emit_slices_roundtrip() {
        let pkts: Vec<Packet> = (0..3).map(|i| sample(Algorithm::MmoAes, i)).collect();
        let encoded: Vec<Vec<u8>> = pkts.iter().map(Packet::emit).collect();
        let refs: Vec<&[u8]> = encoded.iter().map(Vec::as_slice).collect();
        let mut frame = Vec::new();
        bundle::emit_slices_into(&refs, &mut frame).unwrap();
        assert_eq!(bundle::parse(&frame).unwrap(), pkts);
        // Single slice comes through as a bare packet, not a bundle.
        frame.clear();
        bundle::emit_slices_into(&refs[..1], &mut frame).unwrap();
        assert_eq!(frame, encoded[0]);
    }

    #[test]
    fn single_packet_passes_through_bundle_parse() {
        let p = sample(Algorithm::MmoAes, 7);
        assert_eq!(bundle::parse(&p.emit()).unwrap(), vec![p]);
    }

    #[test]
    fn bundle_truncation_and_trailing_rejected() {
        let pkts: Vec<Packet> = (0..3).map(|i| sample(Algorithm::Sha1, i)).collect();
        let frame = bundle::emit(&pkts).unwrap();
        for cut in 1..frame.len() {
            assert!(bundle::parse(&frame[..cut]).is_err(), "cut={cut}");
        }
        let mut long = frame.clone();
        long.push(0);
        assert_eq!(bundle::parse(&long), Err(Error::TrailingBytes));
    }

    #[test]
    fn bundle_count_limits() {
        let mut bad = vec![bundle::BUNDLE_TAG, 0];
        assert_eq!(bundle::parse(&bad), Err(Error::LimitExceeded));
        bad[1] = (crate::limits::MAX_BUNDLE + 1) as u8;
        assert_eq!(bundle::parse(&bad), Err(Error::LimitExceeded));
    }

    #[test]
    fn corrupt_inner_packet_rejected() {
        let pkts: Vec<Packet> = (0..2).map(|i| sample(Algorithm::Sha1, i)).collect();
        let mut frame = bundle::emit(&pkts).unwrap();
        frame[4] = 0; // smash the first inner packet's magic
        assert!(bundle::parse(&frame).is_err());
    }
}
