//! A freelist of reusable datagram buffers.
//!
//! Steady-state packet processing should do zero malloc/free per packet:
//! RX loops check a [`Frame`] out of a [`FramePool`], fill it from the
//! socket, hand it through the engine, and the frame returns itself to
//! the pool when dropped. Depletion falls back to fresh allocation (and
//! is counted), so the pool is a fast path, never a correctness limit.
//!
//! In debug builds, frames are poisoned with a marker byte when they
//! return to the pool, so stale reads of recycled buffers show up as
//! garbage instead of silently reading the previous packet.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Byte written over returned frames in debug builds.
#[cfg(debug_assertions)]
pub const POISON: u8 = 0xDB;

struct PoolInner {
    /// Capacity each fresh frame is allocated with.
    capacity: usize,
    /// Freelist high-water mark; frames returned beyond it are dropped.
    max_frames: usize,
    free: Mutex<Vec<Vec<u8>>>,
    reused: AtomicU64,
    fresh: AtomicU64,
    returned: AtomicU64,
    discarded: AtomicU64,
}

/// Counters describing a pool's behaviour so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from the freelist.
    pub reused: u64,
    /// Checkouts that had to allocate (empty freelist).
    pub fresh: u64,
    /// Frames accepted back into the freelist.
    pub returned: u64,
    /// Frames dropped on return because the freelist was full.
    pub discarded: u64,
    /// Frames currently sitting in the freelist.
    pub idle: usize,
}

/// A shared freelist of fixed-capacity byte buffers. Cloning is cheap
/// (an `Arc` bump); all clones share one freelist.
#[derive(Clone)]
pub struct FramePool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for FramePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("FramePool")
            .field("capacity", &self.inner.capacity)
            .field("max_frames", &self.inner.max_frames)
            .field("stats", &s)
            .finish()
    }
}

impl FramePool {
    /// A pool of frames allocated `frame_capacity` bytes each, keeping at
    /// most `max_frames` idle buffers.
    #[must_use]
    pub fn new(frame_capacity: usize, max_frames: usize) -> FramePool {
        FramePool {
            inner: Arc::new(PoolInner {
                capacity: frame_capacity.max(1),
                max_frames: max_frames.max(1),
                free: Mutex::new(Vec::new()),
                reused: AtomicU64::new(0),
                fresh: AtomicU64::new(0),
                returned: AtomicU64::new(0),
                discarded: AtomicU64::new(0),
            }),
        }
    }

    /// Check a cleared frame out of the pool. Served from the freelist
    /// when possible; allocates (and counts it) when depleted.
    #[must_use]
    pub fn checkout(&self) -> Frame {
        let recycled = {
            let mut free = match self.inner.free.lock() {
                Ok(g) => g,
                // A panic while holding the freelist lock only loses
                // pooled buffers; continue with fresh allocations.
                Err(poisoned) => poisoned.into_inner(),
            };
            free.pop()
        };
        let buf = match recycled {
            Some(mut b) => {
                self.inner.reused.fetch_add(1, Relaxed);
                b.clear();
                b
            }
            None => {
                self.inner.fresh.fetch_add(1, Relaxed);
                Vec::with_capacity(self.inner.capacity)
            }
        };
        Frame {
            buf,
            pool: Some(Arc::clone(&self.inner)),
        }
    }

    /// Counters since construction.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let idle = match self.inner.free.lock() {
            Ok(g) => g.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        };
        PoolStats {
            reused: self.inner.reused.load(Relaxed),
            fresh: self.inner.fresh.load(Relaxed),
            returned: self.inner.returned.load(Relaxed),
            discarded: self.inner.discarded.load(Relaxed),
            idle,
        }
    }

    #[cfg(test)]
    fn idle_frames_for_test(&self) -> Vec<Vec<u8>> {
        match self.inner.free.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }
}

/// A byte buffer on loan from a [`FramePool`] (or detached, if built
/// from a plain vector). Dereferences to its filled bytes; returns
/// itself to the pool on drop.
pub struct Frame {
    buf: Vec<u8>,
    pool: Option<Arc<PoolInner>>,
}

impl Frame {
    /// A detached frame owning `bytes` (no pool to return to).
    #[must_use]
    pub fn detached(bytes: Vec<u8>) -> Frame {
        Frame {
            buf: bytes,
            pool: None,
        }
    }

    /// Mutable access to the underlying vector for filling.
    pub fn buf_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Detach from the pool and take the bytes (the buffer is not
    /// recycled).
    #[must_use]
    pub fn into_vec(mut self) -> Vec<u8> {
        self.pool = None;
        std::mem::take(&mut self.buf)
    }

    /// Copy the filled bytes into a fresh vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl Drop for Frame {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            #[cfg_attr(not(debug_assertions), allow(unused_mut))]
            let mut buf = std::mem::take(&mut self.buf);
            #[cfg(debug_assertions)]
            {
                // Poison the whole allocation so stale reads through a
                // dangling view are loud. Checkout clears before reuse.
                buf.clear();
                buf.resize(buf.capacity(), POISON);
            }
            let mut free = match pool.free.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            if free.len() < pool.max_frames {
                free.push(buf);
                pool.returned.fetch_add(1, Relaxed);
            } else {
                pool.discarded.fetch_add(1, Relaxed);
            }
        }
    }
}

impl std::ops::Deref for Frame {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl Clone for Frame {
    /// Cloning detaches: the copy owns its bytes and is not returned to
    /// the pool (only the original loan is).
    fn clone(&self) -> Frame {
        Frame::detached(self.buf.clone())
    }
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frame")
            .field("len", &self.buf.len())
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

impl From<Frame> for Vec<u8> {
    fn from(f: Frame) -> Vec<u8> {
        f.into_vec()
    }
}

impl From<Vec<u8>> for Frame {
    fn from(bytes: Vec<u8>) -> Frame {
        Frame::detached(bytes)
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Frame) -> bool {
        self.buf == other.buf
    }
}
impl Eq for Frame {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reissued_frames_come_back_cleared() {
        let pool = FramePool::new(64, 4);
        let mut f = pool.checkout();
        f.buf_mut().extend_from_slice(b"secret bytes");
        drop(f);
        let f = pool.checkout();
        assert!(f.is_empty(), "recycled frame must be cleared");
        let s = pool.stats();
        assert_eq!((s.fresh, s.reused, s.returned), (1, 1, 1));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn returned_frames_are_poisoned() {
        let pool = FramePool::new(32, 4);
        let mut f = pool.checkout();
        f.buf_mut().extend_from_slice(b"plaintext");
        drop(f);
        let idle = pool.idle_frames_for_test();
        assert_eq!(idle.len(), 1);
        assert!(!idle[0].is_empty());
        assert!(idle[0].iter().all(|&b| b == POISON));
    }

    #[test]
    fn depletion_allocates_and_counts() {
        let pool = FramePool::new(16, 2);
        let a = pool.checkout();
        let b = pool.checkout();
        let c = pool.checkout();
        assert_eq!(pool.stats().fresh, 3);
        drop(a);
        drop(b);
        drop(c); // freelist already holds max_frames = 2
        let s = pool.stats();
        assert_eq!((s.returned, s.discarded, s.idle), (2, 1, 2));
        let _ = pool.checkout();
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn clone_detaches_and_into_vec_skips_recycling() {
        let pool = FramePool::new(16, 4);
        let mut f = pool.checkout();
        f.buf_mut().extend_from_slice(b"abc");
        let copy = f.clone();
        drop(copy); // detached: freelist untouched
        assert_eq!(pool.stats().returned, 0);
        let v = f.into_vec();
        assert_eq!(v, b"abc");
        assert_eq!(pool.stats().returned, 0);
    }

    #[test]
    fn concurrent_checkout_checkin_smoke() {
        let pool = FramePool::new(256, 8);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        let mut f = pool.checkout();
                        assert!(f.is_empty());
                        f.buf_mut().extend_from_slice(&(t * 1000 + i).to_be_bytes());
                        assert_eq!(f.len(), 4);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker thread");
        }
        let s = pool.stats();
        assert_eq!(s.reused + s.fresh, 2000);
        assert!(s.reused > 0, "steady state must recycle");
    }
}
