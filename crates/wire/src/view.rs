//! Borrowed packet views: zero-copy decoding over an incoming datagram.
//!
//! [`PacketView::parse`] performs exactly the same validation as
//! [`Packet::parse`] — byte for byte, error for error (the property tests
//! assert this) — but borrows variable-length regions (pre-signature MACs,
//! Merkle paths, payloads, handshake auth blobs) from the input buffer
//! instead of copying them into fresh vectors. A relay forwarding an S2
//! can verify it and splice the original bytes into the outgoing frame
//! without a single heap allocation.

use crate::cursor::Reader;
use crate::packet::{
    A2Disclosure, AckCommit, Body, Handshake, HandshakeAuth, HandshakeRole, Packet, PacketType,
    PreSignature, TreeDescriptor,
};
use crate::{limits, Error};
use alpha_crypto::amt::{AmtDisclosure, SECRET_LEN};
use alpha_crypto::{Algorithm, Digest};

/// A borrowed run of fixed-width digests inside a datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestSlice<'a> {
    alg: Algorithm,
    count: usize,
    bytes: &'a [u8],
}

impl<'a> DigestSlice<'a> {
    fn new(alg: Algorithm, count: usize, bytes: &'a [u8]) -> DigestSlice<'a> {
        debug_assert_eq!(bytes.len(), count * alg.digest_len());
        DigestSlice { alg, count, bytes }
    }

    /// Number of digests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the run is empty (legal for S2 paths outside ALPHA-M).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `i`-th digest, copied out of the wire bytes.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<Digest> {
        if i >= self.count {
            return None;
        }
        let dl = self.alg.digest_len();
        Some(Digest::from_slice(&self.bytes[i * dl..(i + 1) * dl]))
    }

    /// Iterate the digests in order.
    pub fn iter(&self) -> impl Iterator<Item = Digest> + 'a {
        self.bytes
            .chunks_exact(self.alg.digest_len())
            .map(Digest::from_slice)
    }

    /// Copy into an owned vector (the owned-decode compatibility path).
    #[must_use]
    pub fn to_vec(&self) -> Vec<Digest> {
        self.iter().collect()
    }

    /// Copy into a fixed-capacity stack path. Only valid for runs that
    /// passed the S2 path-length limit (`count <= MAX_PATH`, guaranteed
    /// by [`PacketView::parse`]).
    #[must_use]
    pub fn to_path(&self) -> DigestPath {
        debug_assert!(self.count <= limits::MAX_PATH);
        let mut p = DigestPath::empty(self.alg);
        for d in self.iter().take(limits::MAX_PATH) {
            p.push(d);
        }
        p
    }
}

/// Fixed-capacity Merkle authentication path, shared with the sender-side
/// tree emitter ([`alpha_crypto::merkle::MerkleTree::auth_path_into`]).
pub use alpha_crypto::merkle::DigestPath;

/// A borrowed run of Merkle-forest tree descriptors (`u32` leaves +
/// root digest each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeSlice<'a> {
    alg: Algorithm,
    count: usize,
    bytes: &'a [u8],
}

impl<'a> TreeSlice<'a> {
    /// Number of trees.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when there are no trees (never produced by `parse`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate the tree descriptors in order.
    pub fn iter(&self) -> impl Iterator<Item = TreeDescriptor> + 'a {
        let alg = self.alg;
        self.bytes.chunks_exact(4 + alg.digest_len()).map(|c| {
            let leaves = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
            TreeDescriptor {
                root: Digest::from_slice(&c[4..]),
                leaves,
            }
        })
    }

    /// Copy into an owned vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<TreeDescriptor> {
        self.iter().collect()
    }

    /// Total leaves across the forest.
    #[must_use]
    pub fn covered(&self) -> u32 {
        self.iter().map(|t| t.leaves).sum()
    }
}

/// Borrowed pre-signature material of an S1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreSignatureView<'a> {
    /// One MAC per covered message, borrowed from the datagram.
    Cumulative(DigestSlice<'a>),
    /// A single keyed Merkle root.
    MerkleRoot {
        /// Keyed root `H(h | b0 | b1)`.
        root: Digest,
        /// Number of real leaves.
        leaves: u32,
    },
    /// Multiple keyed roots (ALPHA-C + ALPHA-M combination).
    MerkleForest(TreeSlice<'a>),
}

impl PreSignatureView<'_> {
    /// Number of messages this pre-signature covers.
    #[must_use]
    pub fn covered(&self) -> u32 {
        match self {
            PreSignatureView::Cumulative(macs) => macs.len() as u32,
            PreSignatureView::MerkleRoot { leaves, .. } => *leaves,
            PreSignatureView::MerkleForest(trees) => trees.covered(),
        }
    }

    /// Copy into the owned representation.
    #[must_use]
    pub fn to_presignature(&self) -> PreSignature {
        match self {
            PreSignatureView::Cumulative(macs) => PreSignature::Cumulative(macs.to_vec()),
            PreSignatureView::MerkleRoot { root, leaves } => PreSignature::MerkleRoot {
                root: *root,
                leaves: *leaves,
            },
            PreSignatureView::MerkleForest(trees) => PreSignature::MerkleForest(trees.to_vec()),
        }
    }
}

/// A borrowed run of AMT verdict disclosures (variable-width items,
/// validated during parse; iteration re-walks the bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmtSlice<'a> {
    alg: Algorithm,
    count: usize,
    bytes: &'a [u8],
}

impl<'a> AmtSlice<'a> {
    /// Number of disclosures.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when there are no disclosures (never produced by `parse`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate the disclosures, copying each into its owned form (A2
    /// processing is off the hot path).
    pub fn iter(&self) -> impl Iterator<Item = AmtDisclosure> + 'a {
        let alg = self.alg;
        let mut r = Reader::new(self.bytes);
        (0..self.count).map_while(move |_| parse_amt_item(&mut r, alg).ok())
    }

    /// Copy into an owned vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<AmtDisclosure> {
        self.iter().collect()
    }
}

/// Borrowed verdict disclosure of an A2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum A2DisclosureView<'a> {
    /// Flat pre-(n)ack disclosure.
    Flat {
        /// `true` = ack, `false` = nack.
        ack: bool,
        /// The disclosed secret.
        secret: [u8; SECRET_LEN],
    },
    /// AMT verdict disclosures.
    Amt(AmtSlice<'a>),
}

impl A2DisclosureView<'_> {
    /// Copy into the owned representation.
    #[must_use]
    pub fn to_disclosure(&self) -> A2Disclosure {
        match self {
            A2DisclosureView::Flat { ack, secret } => A2Disclosure::Flat {
                ack: *ack,
                secret: *secret,
            },
            A2DisclosureView::Amt(items) => A2Disclosure::Amt(items.to_vec()),
        }
    }
}

/// Borrowed optional public-key authentication of a handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeAuthView<'a> {
    /// Scheme tag (mirrors `alpha_pk::PublicKey`).
    pub scheme: u8,
    /// Serialized public key, borrowed.
    pub public_key: &'a [u8],
    /// Signature over the anchor fields, borrowed.
    pub signature: &'a [u8],
}

/// Borrowed bootstrap handshake body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeView<'a> {
    /// Init or reply.
    pub role: HandshakeRole,
    /// Sender's signature-chain anchor.
    pub sig_anchor: Digest,
    /// Index (= length) of the signature chain.
    pub sig_anchor_index: u64,
    /// Sender's acknowledgment-chain anchor.
    pub ack_anchor: Digest,
    /// Index (= length) of the acknowledgment chain.
    pub ack_anchor_index: u64,
    /// Optional public-key authentication.
    pub auth: Option<HandshakeAuthView<'a>>,
}

impl HandshakeView<'_> {
    /// Copy into the owned representation.
    #[must_use]
    pub fn to_handshake(&self) -> Handshake {
        Handshake {
            role: self.role,
            sig_anchor: self.sig_anchor,
            sig_anchor_index: self.sig_anchor_index,
            ack_anchor: self.ack_anchor,
            ack_anchor_index: self.ack_anchor_index,
            auth: self.auth.map(|a| HandshakeAuth {
                scheme: a.scheme,
                public_key: a.public_key.to_vec(),
                signature: a.signature.to_vec(),
            }),
        }
    }
}

/// Borrowed packet bodies, one per [`PacketType`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyView<'a> {
    /// S1: fresh chain element + pre-signature(s).
    S1 {
        /// Announce-role signature-chain element.
        element: Digest,
        /// Pre-signature material, borrowed.
        presig: PreSignatureView<'a>,
    },
    /// A1: fresh acknowledgment-chain element + optional commitments.
    A1 {
        /// Announce-role acknowledgment-chain element.
        element: Digest,
        /// Reliability commitment (fixed-size; held by value).
        commit: AckCommit,
    },
    /// S2: disclosed MAC key + one message.
    S2 {
        /// Disclosed signature-chain element (the MAC key).
        key: Digest,
        /// Message index within the covered bundle.
        seq: u32,
        /// Merkle authentication path, borrowed.
        path: DigestSlice<'a>,
        /// The protected message, borrowed.
        payload: &'a [u8],
    },
    /// A2: disclosed acknowledgment-chain element + verdict(s).
    A2 {
        /// Disclosed acknowledgment-chain element.
        element: Digest,
        /// Verdict disclosure, borrowed.
        disclosure: A2DisclosureView<'a>,
    },
    /// HS1/HS2: bootstrap handshake.
    Handshake(HandshakeView<'a>),
}

/// A borrowed decode of a complete ALPHA packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketView<'a> {
    /// Association identifier.
    pub assoc_id: u64,
    /// Hash algorithm of every digest in the packet.
    pub alg: Algorithm,
    /// Chain position of the carried element (0 for handshakes).
    pub chain_index: u64,
    /// Type-specific body, borrowing from the datagram.
    pub body: BodyView<'a>,
}

impl<'a> PacketView<'a> {
    /// The packet's type tag.
    #[must_use]
    pub fn packet_type(&self) -> PacketType {
        match &self.body {
            BodyView::S1 { .. } => PacketType::S1,
            BodyView::A1 { .. } => PacketType::A1,
            BodyView::S2 { .. } => PacketType::S2,
            BodyView::A2 { .. } => PacketType::A2,
            BodyView::Handshake(h) => match h.role {
                HandshakeRole::Init => PacketType::Hs1,
                HandshakeRole::Reply => PacketType::Hs2,
            },
        }
    }

    /// Copy into the owned representation — this is where (and only
    /// where) the deferred allocations happen.
    #[must_use]
    pub fn to_packet(&self) -> Packet {
        let body = match &self.body {
            BodyView::S1 { element, presig } => Body::S1 {
                element: *element,
                presig: presig.to_presignature(),
            },
            BodyView::A1 { element, commit } => Body::A1 {
                element: *element,
                commit: *commit,
            },
            BodyView::S2 {
                key,
                seq,
                path,
                payload,
            } => Body::S2 {
                key: *key,
                seq: *seq,
                path: path.to_vec(),
                payload: payload.to_vec(),
            },
            BodyView::A2 {
                element,
                disclosure,
            } => Body::A2 {
                element: *element,
                disclosure: disclosure.to_disclosure(),
            },
            BodyView::Handshake(h) => Body::Handshake(h.to_handshake()),
        };
        Packet {
            assoc_id: self.assoc_id,
            alg: self.alg,
            chain_index: self.chain_index,
            body,
        }
    }

    /// Parse a packet without copying variable-length regions. Performs
    /// the same checks as [`Packet::parse`] in the same order, so both
    /// decoders accept the same inputs and fail with the same errors.
    pub fn parse(buf: &'a [u8]) -> Result<PacketView<'a>, Error> {
        let mut r = Reader::new(buf);
        if r.u16()? != crate::packet::MAGIC {
            return Err(Error::BadMagic);
        }
        let version = r.u8()?;
        if version != crate::packet::VERSION {
            return Err(Error::BadVersion(version));
        }
        let ptype = r.u8()?;
        let alg = crate::packet::parse_alg(r.u8()?)?;
        let assoc_id = r.u64()?;
        let chain_index = r.u64()?;
        let dl = alg.digest_len();
        let body = match ptype {
            1 => {
                let element = r.digest(alg)?;
                let presig = match r.u8()? {
                    1 => {
                        let count = r.u16()? as usize;
                        if count == 0 || count > limits::MAX_PRESIGS {
                            return Err(Error::LimitExceeded);
                        }
                        let bytes = r.take(count * dl)?;
                        PreSignatureView::Cumulative(DigestSlice::new(alg, count, bytes))
                    }
                    2 => {
                        let leaves = r.u32()?;
                        if leaves == 0 || leaves > limits::MAX_LEAVES {
                            return Err(Error::LimitExceeded);
                        }
                        PreSignatureView::MerkleRoot {
                            root: r.digest(alg)?,
                            leaves,
                        }
                    }
                    3 => {
                        let count = r.u16()? as usize;
                        if count == 0 || count > limits::MAX_PRESIGS {
                            return Err(Error::LimitExceeded);
                        }
                        // Walk (and validate) the descriptors one by one
                        // — same order of checks as the owned decoder —
                        // then keep the raw region.
                        let start = buf.len() - r.remaining();
                        let mut total: u64 = 0;
                        for _ in 0..count {
                            let leaves = r.u32()?;
                            if leaves == 0 {
                                return Err(Error::Malformed);
                            }
                            total += u64::from(leaves);
                            if total > u64::from(limits::MAX_LEAVES) {
                                return Err(Error::LimitExceeded);
                            }
                            r.take(dl)?;
                        }
                        let end = buf.len() - r.remaining();
                        PreSignatureView::MerkleForest(TreeSlice {
                            alg,
                            count,
                            bytes: &buf[start..end],
                        })
                    }
                    d => return Err(Error::BadDiscriminant(d)),
                };
                BodyView::S1 { element, presig }
            }
            2 => {
                let element = r.digest(alg)?;
                let commit = match r.u8()? {
                    0 => AckCommit::None,
                    1 => AckCommit::Flat {
                        pre_ack: r.digest(alg)?,
                        pre_nack: r.digest(alg)?,
                    },
                    2 => {
                        let leaves = r.u32()?;
                        if leaves == 0 || leaves > limits::MAX_LEAVES {
                            return Err(Error::LimitExceeded);
                        }
                        AckCommit::Amt {
                            root: r.digest(alg)?,
                            leaves,
                        }
                    }
                    d => return Err(Error::BadDiscriminant(d)),
                };
                BodyView::A1 { element, commit }
            }
            3 => {
                let key = r.digest(alg)?;
                let seq = r.u32()?;
                let path_len = r.u8()? as usize;
                if path_len > limits::MAX_PATH {
                    return Err(Error::LimitExceeded);
                }
                let path_bytes = r.take(path_len * dl)?;
                let payload_len = r.u16()? as usize;
                if payload_len > limits::MAX_PAYLOAD {
                    return Err(Error::LimitExceeded);
                }
                let payload = r.take(payload_len)?;
                BodyView::S2 {
                    key,
                    seq,
                    path: DigestSlice::new(alg, path_len, path_bytes),
                    payload,
                }
            }
            4 => {
                let element = r.digest(alg)?;
                let disclosure = match r.u8()? {
                    1 => {
                        let ack = crate::packet::parse_bool(r.u8()?)?;
                        let mut secret = [0u8; SECRET_LEN];
                        secret.copy_from_slice(r.take(SECRET_LEN)?);
                        A2DisclosureView::Flat { ack, secret }
                    }
                    2 => {
                        let count = r.u16()? as usize;
                        if count == 0 || count > limits::MAX_DISCLOSURES {
                            return Err(Error::LimitExceeded);
                        }
                        // Validate every item once; iteration re-walks
                        // the kept region.
                        let start = buf.len() - r.remaining();
                        for _ in 0..count {
                            parse_amt_item(&mut r, alg)?;
                        }
                        let end = buf.len() - r.remaining();
                        A2DisclosureView::Amt(AmtSlice {
                            alg,
                            count,
                            bytes: &buf[start..end],
                        })
                    }
                    d => return Err(Error::BadDiscriminant(d)),
                };
                BodyView::A2 {
                    element,
                    disclosure,
                }
            }
            t @ (5 | 6) => {
                let sig_anchor_index = r.u64()?;
                let sig_anchor = r.digest(alg)?;
                let ack_anchor_index = r.u64()?;
                let ack_anchor = r.digest(alg)?;
                let auth = match r.u8()? {
                    0 => None,
                    1 => {
                        let scheme = r.u8()?;
                        let klen = r.u16()? as usize;
                        if klen > limits::MAX_AUTH_BLOB {
                            return Err(Error::LimitExceeded);
                        }
                        let public_key = r.take(klen)?;
                        let slen = r.u16()? as usize;
                        if slen > limits::MAX_AUTH_BLOB {
                            return Err(Error::LimitExceeded);
                        }
                        let signature = r.take(slen)?;
                        Some(HandshakeAuthView {
                            scheme,
                            public_key,
                            signature,
                        })
                    }
                    d => return Err(Error::BadDiscriminant(d)),
                };
                BodyView::Handshake(HandshakeView {
                    role: if t == 5 {
                        HandshakeRole::Init
                    } else {
                        HandshakeRole::Reply
                    },
                    sig_anchor,
                    sig_anchor_index,
                    ack_anchor,
                    ack_anchor_index,
                    auth,
                })
            }
            t => return Err(Error::UnknownType(t)),
        };
        r.finish()?;
        Ok(PacketView {
            assoc_id,
            alg,
            chain_index,
            body,
        })
    }
}

/// Parse one AMT disclosure item (shared by validation and iteration).
fn parse_amt_item(r: &mut Reader<'_>, alg: Algorithm) -> Result<AmtDisclosure, Error> {
    let packet_index = r.u32()?;
    let ack = crate::packet::parse_bool(r.u8()?)?;
    let mut secret = [0u8; SECRET_LEN];
    secret.copy_from_slice(r.take(SECRET_LEN)?);
    let path_len = r.u8()? as usize;
    if path_len > limits::MAX_PATH {
        return Err(Error::LimitExceeded);
    }
    let path = r.digests(alg, path_len)?;
    Ok(AmtDisclosure {
        packet_index,
        ack,
        secret,
        path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PreSignature;

    fn d(alg: Algorithm, s: &str) -> Digest {
        alg.hash(s.as_bytes())
    }

    fn view_agrees(p: &Packet) {
        let bytes = p.emit();
        let v = PacketView::parse(&bytes).expect("view parses");
        assert_eq!(&v.to_packet(), p);
        assert_eq!(v.packet_type(), p.packet_type());
    }

    #[test]
    fn views_agree_with_owned_decode() {
        let alg = Algorithm::Sha1;
        view_agrees(&Packet {
            assoc_id: 7,
            alg,
            chain_index: 15,
            body: Body::S1 {
                element: d(alg, "el"),
                presig: PreSignature::Cumulative(vec![d(alg, "m1"), d(alg, "m2")]),
            },
        });
        view_agrees(&Packet {
            assoc_id: 7,
            alg,
            chain_index: 15,
            body: Body::S1 {
                element: d(alg, "el"),
                presig: PreSignature::MerkleForest(vec![
                    TreeDescriptor {
                        root: d(alg, "t0"),
                        leaves: 4,
                    },
                    TreeDescriptor {
                        root: d(alg, "t1"),
                        leaves: 8,
                    },
                ]),
            },
        });
        view_agrees(&Packet {
            assoc_id: 2,
            alg,
            chain_index: 14,
            body: Body::S2 {
                key: d(alg, "key"),
                seq: 3,
                path: vec![d(alg, "p0"), d(alg, "p1")],
                payload: b"message".to_vec(),
            },
        });
        view_agrees(&Packet {
            assoc_id: 3,
            alg,
            chain_index: 8,
            body: Body::A2 {
                element: d(alg, "ae"),
                disclosure: A2Disclosure::Amt(vec![AmtDisclosure {
                    packet_index: 1,
                    ack: true,
                    secret: [7u8; SECRET_LEN],
                    path: vec![d(alg, "x")],
                }]),
            },
        });
        view_agrees(&Packet {
            assoc_id: 4,
            alg,
            chain_index: 0,
            body: Body::Handshake(Handshake {
                role: HandshakeRole::Reply,
                sig_anchor: d(alg, "sa"),
                sig_anchor_index: 100,
                ack_anchor: d(alg, "aa"),
                ack_anchor_index: 100,
                auth: Some(HandshakeAuth {
                    scheme: 1,
                    public_key: vec![4u8; 32],
                    signature: vec![5u8; 40],
                }),
            }),
        });
    }

    #[test]
    fn s2_view_borrows_payload_and_path() {
        let alg = Algorithm::Sha256;
        let p = Packet {
            assoc_id: 9,
            alg,
            chain_index: 5,
            body: Body::S2 {
                key: d(alg, "k"),
                seq: 1,
                path: vec![d(alg, "p0"), d(alg, "p1"), d(alg, "p2")],
                payload: b"zero copy".to_vec(),
            },
        };
        let bytes = p.emit();
        let v = PacketView::parse(&bytes).unwrap();
        let BodyView::S2 { path, payload, .. } = v.body else {
            panic!("S2 view");
        };
        assert_eq!(payload, b"zero copy");
        // Borrowed region sits inside the original buffer.
        let buf_range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        assert!(buf_range.contains(&(payload.as_ptr() as usize)));
        assert_eq!(path.len(), 3);
        assert_eq!(path.get(2).unwrap(), d(alg, "p2"));
        assert!(path.get(3).is_none());
        let stack = path.to_path();
        assert_eq!(
            stack.as_slice(),
            &[d(alg, "p0"), d(alg, "p1"), d(alg, "p2")]
        );
    }

    #[test]
    fn truncation_errors_match_owned() {
        let alg = Algorithm::Sha1;
        let p = Packet {
            assoc_id: 1,
            alg,
            chain_index: 5,
            body: Body::S2 {
                key: d(alg, "k"),
                seq: 1,
                path: vec![d(alg, "p")],
                payload: b"data".to_vec(),
            },
        };
        let bytes = p.emit();
        for cut in 0..bytes.len() {
            assert_eq!(
                PacketView::parse(&bytes[..cut]).unwrap_err(),
                Packet::parse(&bytes[..cut]).unwrap_err(),
                "cut={cut}"
            );
        }
    }
}
