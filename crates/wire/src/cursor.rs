//! Bounded read cursor and write helpers for packet (de)serialization.

use crate::Error;
use alpha_crypto::{Algorithm, Digest};

/// A checked reader over a byte slice. All reads fail with
/// [`Error::Truncated`] instead of panicking.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        if self.remaining() < n {
            return Err(Error::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, Error> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, Error> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self) -> Result<u32, Error> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, Error> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read one digest of `alg`'s output length.
    pub fn digest(&mut self, alg: Algorithm) -> Result<Digest, Error> {
        Ok(Digest::from_slice(self.take(alg.digest_len())?))
    }

    /// Read `count` digests.
    pub fn digests(&mut self, alg: Algorithm, count: usize) -> Result<Vec<Digest>, Error> {
        // Pre-check so a huge count on a short buffer fails before allocating.
        if self.remaining() < count.saturating_mul(alg.digest_len()) {
            return Err(Error::Truncated);
        }
        (0..count).map(|_| self.digest(alg)).collect()
    }

    /// Require the buffer to be fully consumed.
    pub fn finish(self) -> Result<(), Error> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(Error::TrailingBytes)
        }
    }
}

/// Write helpers over a caller-supplied `Vec<u8>`: appends, never
/// reallocates when the buffer already has capacity, so encoders can
/// reuse one buffer across packets.
pub struct Writer<'a> {
    pub out: &'a mut Vec<u8>,
}

impl<'a> Writer<'a> {
    pub fn new(out: &'a mut Vec<u8>) -> Writer<'a> {
        Writer { out }
    }

    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.out.extend_from_slice(v);
    }

    pub fn digest(&mut self, d: &Digest) {
        self.out.extend_from_slice(d.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_and_bounds() {
        let mut r = Reader::new(&[1, 0, 2, 0, 0, 0, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u16().unwrap(), 2);
        assert_eq!(r.u32().unwrap(), 3);
        assert_eq!(r.u8().unwrap_err(), Error::Truncated);
    }

    #[test]
    fn trailing_detected() {
        let r = Reader::new(&[0]);
        assert_eq!(r.finish().unwrap_err(), Error::TrailingBytes);
        let mut r = Reader::new(&[0]);
        let _ = r.u8();
        r.finish().unwrap();
    }

    #[test]
    fn huge_count_fails_before_alloc() {
        let mut r = Reader::new(&[0u8; 10]);
        assert_eq!(
            r.digests(Algorithm::Sha1, usize::MAX / 2).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn writer_roundtrip() {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        w.u64(0xdead_beef_0102_0304);
        w.u8(9);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u64().unwrap(), 0xdead_beef_0102_0304);
        assert_eq!(r.u8().unwrap(), 9);
        r.finish().unwrap();
    }
}
