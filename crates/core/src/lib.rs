#![warn(missing_docs)]

//! The ALPHA protocol core: sans-io state machines for signer, verifier
//! and relay roles.
//!
//! This crate implements §3 of the paper end to end:
//!
//! - [`SignerChannel`] / [`VerifierChannel`] — one *simplex* protected
//!   channel each (§3.1): a signature chain on the signing side paired with
//!   an acknowledgment chain on the verifying side.
//! - [`Association`] — the duplex end-host view: each host runs one signer
//!   and one verifier channel, giving the four-anchor shared context
//!   `{h^As, h^Aa, h^Bs, h^Ba}` of §3.1.
//! - [`Relay`] — the on-path view: chain trackers for both directions,
//!   buffered pre-signatures and pre-acks, per-packet verification, early
//!   dropping of forged or unsolicited traffic, and signed-data extraction
//!   for middlebox signalling.
//! - [`Mode`] — Base, ALPHA-C (cumulative pre-signatures, §3.3.1) and
//!   ALPHA-M (pre-signed Merkle trees, §3.3.2), combinable per exchange.
//! - [`Reliability`] — unreliable (three-way) and reliable (four-way with
//!   pre-acks / AMTs, §3.2.2 and §3.3.3) delivery, including
//!   retransmission driven by [`SignerChannel::poll`].
//! - [`bootstrap`] — the anchor-exchange handshake of §3.4, unprotected or
//!   signed with RSA / DSA / ECDSA via `alpha-pk`.
//!
//! ## Sans-io design
//!
//! No state machine does I/O or reads a clock. Callers feed parsed
//! [`alpha_wire::Packet`]s plus a [`Timestamp`] in, and get packets to
//! transmit, payload deliveries, and verdicts back in a [`Response`].
//! The same machines run unmodified under the discrete-event simulator
//! (`alpha-sim`), the UDP transport (`alpha-transport`), unit tests, and
//! the benchmark harnesses — which is also what lets the Table 1 harness
//! count the *exact* hash operations each role performs.

mod association;
pub mod bootstrap;
mod error;
pub mod freeze;
mod limiter;
mod relay;
pub mod renewal;
pub mod signal;
mod signer;
mod verifier;

pub use association::{Association, Response};
pub use error::ProtocolError;
pub use freeze::FrozenAssociation;
pub use limiter::{S1Limiter, SharedS1Limiter};
pub use relay::{
    DropReason, Relay, RelayConfig, RelayDecision, RelayEvent, RelayViewOutcome, S2BatchItem,
};
pub use signer::message_mac;
pub use signer::{SignerChannel, SignerEvent};
pub use verifier::{VerifierChannel, VerifierEvent};

use alpha_crypto::Algorithm;

/// Microsecond-resolution protocol time. Sans-io: always supplied by the
/// caller (wall clock, simulator clock, or test constant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Time zero, usable wherever timers are irrelevant.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Construct from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Timestamp {
        Timestamp(us)
    }

    /// Construct from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Timestamp {
        Timestamp(ms * 1_000)
    }

    /// Microseconds since time zero.
    #[must_use]
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Saturating time difference in microseconds.
    #[must_use]
    pub const fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// This time plus `us` microseconds.
    #[must_use]
    pub const fn plus_micros(self, us: u64) -> Timestamp {
        Timestamp(self.0 + us)
    }
}

/// Operating mode for a signature exchange (§3.3). A single association can
/// switch modes per exchange — that is the "adaptive" in ALPHA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// One message per three-way exchange (Fig. 2).
    Base,
    /// ALPHA-C: one S1 carries one MAC per buffered message; S2 packets
    /// then flow without further round trips (§3.3.1).
    Cumulative,
    /// ALPHA-M: one S1 carries a keyed Merkle root; each S2 carries its
    /// authentication path and verifies independently (§3.3.2).
    Merkle,
    /// ALPHA-C + ALPHA-M combined (§3.3.2, closing paragraph): the S1
    /// carries several shallow Merkle roots. Relays buffer one root per
    /// tree instead of one per bundle, and every S2's authentication path
    /// shrinks to the depth of its own tree — a tunable point between
    /// ALPHA-C's O(n) buffering and ALPHA-M's log2(n) per-packet overhead.
    CumulativeMerkle {
        /// Messages per tree (the last tree may be smaller).
        leaves_per_tree: usize,
    },
}

impl Mode {
    /// Estimated S1 wire size for a bundle of `n` messages with hash size
    /// `h` — lets applications pick batch sizes against a link MTU before
    /// signing (§3.5 recommends relays police S1 sizes, so senders should
    /// not exceed them). The constant 21 is the packet header; tags and
    /// counts per the wire format.
    #[must_use]
    pub fn s1_wire_len(&self, n: usize, h: usize) -> usize {
        let header = 21 + h + 1; // header + chain element + discriminant
        match self {
            Mode::Base | Mode::Cumulative => header + 2 + n * h,
            Mode::Merkle => header + 4 + h,
            Mode::CumulativeMerkle { leaves_per_tree } => {
                let trees = n.div_ceil((*leaves_per_tree).max(1));
                header + 2 + trees * (4 + h)
            }
        }
    }

    /// Per-S2 signature overhead in bytes (disclosed element + path) for a
    /// bundle of `n`: the `s_h(⌈log2 n⌉ + 1)` of eq. (1) in ALPHA-M, one
    /// element otherwise.
    #[must_use]
    pub fn s2_overhead(&self, n: usize, h: usize) -> usize {
        match self {
            Mode::Base | Mode::Cumulative => h,
            Mode::Merkle => h * (alpha_crypto::merkle::log2_ceil(n.max(1) as u64) as usize + 1),
            Mode::CumulativeMerkle { leaves_per_tree } => {
                let per_tree = (*leaves_per_tree).max(1).min(n);
                h * (alpha_crypto::merkle::log2_ceil(per_tree as u64) as usize + 1)
            }
        }
    }
}

/// Delivery guarantee for an exchange (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reliability {
    /// Three-way exchange; no delivery confirmation.
    Unreliable,
    /// Four-way exchange with pre-acks (Base/C) or AMTs (M), plus
    /// timer-driven retransmission.
    Reliable,
}

/// MAC construction for pre-signatures. A deployment-wide parameter: all
/// hosts and relays of a network must agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacScheme {
    /// RFC 2104 HMAC — two hash passes per MAC. The conservative default.
    Hmac,
    /// Single-pass prefix MAC `H(key | seq | m)` — half the hashing cost,
    /// sound within ALPHA because the MAC is committed (S1) before its key
    /// is disclosed (S2); this is the construction the paper's sensor-node
    /// cost figures assume (§4.1.3).
    Prefix,
}

/// Tunables shared by all protocol entities of one association.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Hash algorithm for chains, MACs and trees.
    pub algorithm: Algorithm,
    /// Elements per hash chain (an even number; each exchange consumes two
    /// per direction).
    pub chain_len: u64,
    /// Default operating mode for [`Association::sign`].
    pub mode: Mode,
    /// Delivery guarantee.
    pub reliability: Reliability,
    /// Retransmission timeout in microseconds.
    pub rto_micros: u64,
    /// Retransmissions before an exchange is abandoned.
    pub max_retries: u32,
    /// Chain-verifier forward-hash bound (CPU-DoS defence).
    pub max_skip: u64,
    /// MAC construction for pre-signatures.
    pub mac_scheme: MacScheme,
    /// How this host stores its own chains: a memory/recompute trade-off
    /// for constrained devices.
    pub chain_storage: ChainStorage,
    /// Retransmission strategy in reliable mode.
    pub retransmit: Retransmit,
}

/// Chain storage strategy for a host's own chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainStorage {
    /// Every element in memory: O(n) space, zero recompute.
    Full,
    /// √n checkpoints: O(√n) space, ≤ √n hashes per access.
    Sqrt,
    /// log n dyadic pebbles: O(log n) space, O(log n) amortized hashes per
    /// sequential disclosure — for the most memory-starved nodes.
    Dyadic,
}

/// Retransmission strategy for nacked/missing messages (§3.3.3: AMTs
/// "can enable retransmission schemes as selective repeat and go-back-n").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retransmit {
    /// Resend only unacknowledged messages.
    SelectiveRepeat,
    /// Resend everything from the first unacknowledged message onward
    /// (simpler receivers, more bandwidth).
    GoBackN,
}

impl Config {
    /// Paper-flavoured defaults: SHA-1, 1024-element chains, Base mode,
    /// unreliable delivery, 200 ms RTO.
    #[must_use]
    pub fn new(algorithm: Algorithm) -> Config {
        Config {
            algorithm,
            chain_len: 1024,
            mode: Mode::Base,
            reliability: Reliability::Unreliable,
            rto_micros: 200_000,
            max_retries: 5,
            max_skip: 128,
            mac_scheme: MacScheme::Hmac,
            chain_storage: ChainStorage::Full,
            retransmit: Retransmit::SelectiveRepeat,
        }
    }

    /// Set the mode.
    #[must_use]
    pub fn with_mode(mut self, mode: Mode) -> Config {
        self.mode = mode;
        self
    }

    /// Set the delivery guarantee.
    #[must_use]
    pub fn with_reliability(mut self, reliability: Reliability) -> Config {
        self.reliability = reliability;
        self
    }

    /// Set the chain length.
    #[must_use]
    pub fn with_chain_len(mut self, chain_len: u64) -> Config {
        self.chain_len = chain_len;
        self
    }

    /// Set the retransmission timeout.
    #[must_use]
    pub fn with_rto_micros(mut self, rto: u64) -> Config {
        self.rto_micros = rto;
        self
    }

    /// Set the retransmission budget before an exchange is abandoned.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: u32) -> Config {
        self.max_retries = max_retries;
        self
    }

    /// Set the MAC construction.
    #[must_use]
    pub fn with_mac_scheme(mut self, mac_scheme: MacScheme) -> Config {
        self.mac_scheme = mac_scheme;
        self
    }

    /// Choose the chain storage strategy.
    #[must_use]
    pub fn with_chain_storage(mut self, storage: ChainStorage) -> Config {
        self.chain_storage = storage;
        self
    }

    /// Set the retransmission strategy.
    #[must_use]
    pub fn with_retransmit(mut self, retransmit: Retransmit) -> Config {
        self.retransmit = retransmit;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_millis(3);
        assert_eq!(t.micros(), 3000);
        assert_eq!(t.plus_micros(500).micros(), 3500);
        assert_eq!(t.plus_micros(500).since(t), 500);
        assert_eq!(t.since(t.plus_micros(500)), 0); // saturates
    }

    #[test]
    fn config_builders() {
        let c = Config::new(Algorithm::Sha1)
            .with_mode(Mode::Merkle)
            .with_reliability(Reliability::Reliable)
            .with_chain_len(64)
            .with_rto_micros(1000);
        assert_eq!(c.mode, Mode::Merkle);
        assert_eq!(c.reliability, Reliability::Reliable);
        assert_eq!(c.chain_len, 64);
        assert_eq!(c.rto_micros, 1000);
    }
}
