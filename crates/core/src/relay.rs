//! The on-path relay: per-packet verification, early dropping, and signed
//! data extraction.
//!
//! A relay holds, per association it has learned (footnote 1 of the paper:
//! forwarding nodes in a WMN/WSN/MANET, or middleboxes like firewalls):
//!
//! - chain verifiers for both hosts' signature and acknowledgment chains
//!   (anchors observed in the handshake),
//! - the buffered pre-signature of the outstanding exchange per direction
//!   (a handful of hashes — the `n·h` relay column of Table 2), and
//! - the buffered pre-(n)ack commitments (Table 3) so it can verify
//!   verdicts, which signalling protocols on relays need (§3.2.2).
//!
//! [`Relay::observe`] returns a forwarding decision plus extraction
//! events. Forged S2s, replayed chain elements, and unsolicited traffic
//! (S2 with no matching buffered pre-signature — i.e. data the receiver
//! never agreed to with an A1) are dropped, which is ALPHA's flooding
//! mitigation (§3.5). Packets of unknown associations are forwarded or
//! dropped by [`RelayConfig::forward_unknown`] — forwarding supports the
//! paper's incremental-deployment story.

use std::collections::HashMap;

use alpha_crypto::chain::{ChainVerifier, Role};
use alpha_crypto::preack::PreAckPair;
use alpha_crypto::{merkle, Algorithm, Digest};
use alpha_wire::{A2Disclosure, AckCommit, Body, HandshakeRole, Packet, PreSignature};

use crate::limiter::S1Limiter;
use crate::signer::message_mac;
use crate::{MacScheme, Timestamp};

/// Relay policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct RelayConfig {
    /// Forward packets of associations this relay has not learned
    /// (incremental deployment) instead of dropping them.
    pub forward_unknown: bool,
    /// Maximum S1 bytes per association per second (the S1-flood limiter
    /// of §3.5). `None` disables rate limiting.
    pub s1_bytes_per_sec: Option<u64>,
    /// Chain-verifier forward-hash bound.
    pub max_skip: u64,
    /// Drop S2 packets whose exchange the relay never saw an S1 for
    /// (treat unsolicited data as forged). Disabling this still verifies
    /// what can be verified but forwards the rest.
    pub drop_unsolicited: bool,
    /// MAC construction used by the deployment (must match the hosts').
    pub mac_scheme: MacScheme,
}

impl Default for RelayConfig {
    fn default() -> RelayConfig {
        RelayConfig {
            forward_unknown: true,
            s1_bytes_per_sec: Some(64 * 1024),
            max_skip: 128,
            drop_unsolicited: true,
            mac_scheme: MacScheme::Hmac,
        }
    }
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Chain element failed authentication (forged / replayed / wrong role).
    BadChainElement,
    /// Message failed MAC or Merkle verification against the buffered
    /// pre-signature.
    BadMac,
    /// S2 for an exchange the relay never saw announced (unsolicited data).
    Unsolicited,
    /// Verdict failed verification against the buffered commitment.
    BadVerdict,
    /// S1 rate limit exceeded (flood defence).
    RateLimited,
    /// Packet for an unknown association while `forward_unknown` is off.
    UnknownAssociation,
    /// Body malformed with respect to protocol rules (e.g. zero leaves).
    Malformed,
}

/// Forwarding decision for one observed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayDecision {
    /// Pass the packet on.
    Forward,
    /// Drop it.
    Drop(DropReason),
}

/// Information a relay extracted from verified traffic — the "secure
/// extraction of signed data by forwarding nodes" the paper builds
/// middlebox signalling on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayEvent {
    /// A new association was learned from a handshake.
    AssociationLearned(u64),
    /// A payload verified end-to-end passed through this relay.
    VerifiedPayload {
        /// Association it belongs to.
        assoc_id: u64,
        /// Direction: true = initiator→responder chain, false = reverse.
        forward_direction: bool,
        /// Message index within its bundle.
        seq: u32,
        /// The verified bytes.
        payload: Vec<u8>,
    },
    /// A delivery verdict passed through and verified.
    VerifiedVerdict {
        /// Association it belongs to.
        assoc_id: u64,
        /// Message index (0 for flat verdicts covering a bundle).
        seq: u32,
        /// true = ack, false = nack.
        ack: bool,
    },
}

/// One direction of one association, as seen from the relay.
struct DirectionState {
    sig: ChainVerifier,
    ack: ChainVerifier,
    /// Outstanding exchange announced by the last S1 in this direction.
    exchange: Option<RelayExchange>,
    /// The superseded exchange, kept so reordered trailing S2s still
    /// verify (a new S1 can overtake them on multi-hop paths).
    prev_exchange: Option<RelayExchange>,
}

struct RelayExchange {
    s1_index: u64,
    /// Authenticated announce element, for verifying a superseded
    /// exchange's late S2 keys (see the verifier's equivalent).
    announce: Digest,
    presig: RelayPresig,
    commit: Option<RelayCommit>,
}

enum RelayPresig {
    Macs(Vec<Digest>),
    Root {
        root: Digest,
        leaves: u32,
    },
    Forest {
        trees: Vec<PreSignatureTree>,
        leaves_per_tree: usize,
    },
}

/// A buffered forest tree: keyed root plus leaf count.
struct PreSignatureTree {
    root: Digest,
    leaves: u32,
}

enum RelayCommit {
    Flat(PreAckPair),
    Amt { root: Digest, leaves: u32 },
}

struct RelayAssociation {
    alg: Algorithm,
    /// Initiator → responder direction (initiator's signature chain,
    /// responder's acknowledgment chain).
    fwd: DirectionState,
    /// Responder → initiator direction.
    rev: DirectionState,
    limiter: S1Limiter,
    /// Signalled payload-rate caps (§1: receiver-controlled, relay-
    /// enforced). `data_cap_fwd` limits verified S2 payload bytes flowing
    /// in the fwd direction, installed by a RateLimit signal from the
    /// reverse direction's host.
    data_cap_fwd: Option<S1Limiter>,
    data_cap_rev: Option<S1Limiter>,
    /// Pending handshake init, until the reply arrives.
    pending_init: Option<(Digest, u64, Digest, u64)>,
}

/// A forwarding node that authenticates ALPHA traffic in transit.
pub struct Relay {
    cfg: RelayConfig,
    assocs: HashMap<u64, RelayAssociation>,
}

impl Relay {
    /// An empty relay with the given policy.
    #[must_use]
    pub fn new(cfg: RelayConfig) -> Relay {
        Relay {
            cfg,
            assocs: HashMap::new(),
        }
    }

    /// Number of associations currently tracked.
    #[must_use]
    pub fn association_count(&self) -> usize {
        self.assocs.len()
    }

    /// Total protocol state buffered across all associations — what bounds
    /// how many flows a constrained relay can authenticate concurrently
    /// (the scalability argument of §3.1.1).
    #[must_use]
    pub fn total_buffered_bytes(&self) -> usize {
        self.assocs.keys().map(|id| self.buffered_bytes(*id)).sum()
    }

    /// Bytes of protocol state buffered for `assoc_id` — the relay columns
    /// of Tables 2 and 3.
    #[must_use]
    pub fn buffered_bytes(&self, assoc_id: u64) -> usize {
        let Some(a) = self.assocs.get(&assoc_id) else {
            return 0;
        };
        let h = a.alg.digest_len();
        let dir = |d: &DirectionState| -> usize {
            let chains = d.sig.stored_bytes() + d.ack.stored_bytes();
            let ex = d.exchange.as_ref().map_or(0, |ex| {
                let presig = match &ex.presig {
                    RelayPresig::Macs(m) => m.len() * h,
                    RelayPresig::Root { .. } => h,
                    RelayPresig::Forest { trees, .. } => trees.len() * h,
                };
                let commit = match &ex.commit {
                    Some(RelayCommit::Flat(p)) => p.stored_bytes(),
                    Some(RelayCommit::Amt { .. }) => h,
                    None => 0,
                };
                presig + commit
            });
            chains + ex
        };
        dir(&a.fwd) + dir(&a.rev)
    }

    /// Pre-register an association (static bootstrapping, §3.4: base
    /// stations provide pair-wise anchors before deployment).
    pub fn adopt(
        &mut self,
        assoc_id: u64,
        alg: Algorithm,
        init_sig: (Digest, u64),
        init_ack: (Digest, u64),
        resp_sig: (Digest, u64),
        resp_ack: (Digest, u64),
    ) {
        let mk = |anchor: Digest, idx: u64, kind| {
            ChainVerifier::new(alg, kind, anchor, idx).with_max_skip(self.cfg.max_skip)
        };
        use alpha_crypto::chain::ChainKind::{RoleBoundAck, RoleBoundSignature};
        self.assocs.insert(
            assoc_id,
            RelayAssociation {
                alg,
                fwd: DirectionState {
                    sig: mk(init_sig.0, init_sig.1, RoleBoundSignature),
                    ack: mk(resp_ack.0, resp_ack.1, RoleBoundAck),
                    exchange: None,
                    prev_exchange: None,
                },
                rev: DirectionState {
                    sig: mk(resp_sig.0, resp_sig.1, RoleBoundSignature),
                    ack: mk(init_ack.0, init_ack.1, RoleBoundAck),
                    exchange: None,
                    prev_exchange: None,
                },
                limiter: S1Limiter::new(self.cfg.s1_bytes_per_sec),
                data_cap_fwd: None,
                data_cap_rev: None,
                pending_init: None,
            },
        );
    }

    /// Observe one packet in transit. Returns the forwarding decision and
    /// any extraction events.
    pub fn observe(&mut self, pkt: &Packet, now: Timestamp) -> (RelayDecision, Vec<RelayEvent>) {
        match &pkt.body {
            Body::Handshake(hs) => self.observe_handshake(pkt, hs),
            _ => self.observe_data(pkt, now),
        }
    }

    fn observe_handshake(
        &mut self,
        pkt: &Packet,
        hs: &alpha_wire::Handshake,
    ) -> (RelayDecision, Vec<RelayEvent>) {
        // Relays learn anchors by watching the handshake (§3.4). The relay
        // cannot judge handshake authenticity (that is the endpoints' PK
        // check); it only records anchors.
        match hs.role {
            HandshakeRole::Init => {
                let entry = self.assocs.entry(pkt.assoc_id).or_insert_with(|| {
                    RelayAssociation::placeholder(
                        pkt.alg,
                        self.cfg.s1_bytes_per_sec,
                        self.cfg.max_skip,
                    )
                });
                entry.pending_init = Some((
                    hs.sig_anchor,
                    hs.sig_anchor_index,
                    hs.ack_anchor,
                    hs.ack_anchor_index,
                ));
                (RelayDecision::Forward, Vec::new())
            }
            HandshakeRole::Reply => {
                let Some(a) = self.assocs.get_mut(&pkt.assoc_id) else {
                    return (RelayDecision::Forward, Vec::new());
                };
                let Some((isig, isig_i, iack, iack_i)) = a.pending_init.take() else {
                    return (RelayDecision::Forward, Vec::new());
                };
                let alg = pkt.alg;
                let skip = self.cfg.max_skip;
                use alpha_crypto::chain::ChainKind::{RoleBoundAck, RoleBoundSignature};
                a.alg = alg;
                a.fwd = DirectionState {
                    sig: ChainVerifier::new(alg, RoleBoundSignature, isig, isig_i)
                        .with_max_skip(skip),
                    ack: ChainVerifier::new(alg, RoleBoundAck, hs.ack_anchor, hs.ack_anchor_index)
                        .with_max_skip(skip),
                    exchange: None,
                    prev_exchange: None,
                };
                a.rev = DirectionState {
                    sig: ChainVerifier::new(
                        alg,
                        RoleBoundSignature,
                        hs.sig_anchor,
                        hs.sig_anchor_index,
                    )
                    .with_max_skip(skip),
                    ack: ChainVerifier::new(alg, RoleBoundAck, iack, iack_i).with_max_skip(skip),
                    exchange: None,
                    prev_exchange: None,
                };
                (
                    RelayDecision::Forward,
                    vec![RelayEvent::AssociationLearned(pkt.assoc_id)],
                )
            }
        }
    }

    fn observe_data(&mut self, pkt: &Packet, now: Timestamp) -> (RelayDecision, Vec<RelayEvent>) {
        let forward_unknown = self.cfg.forward_unknown;
        let drop_unsolicited = self.cfg.drop_unsolicited;
        let Some(a) = self.assocs.get_mut(&pkt.assoc_id) else {
            return if forward_unknown {
                (RelayDecision::Forward, Vec::new())
            } else {
                (
                    RelayDecision::Drop(DropReason::UnknownAssociation),
                    Vec::new(),
                )
            };
        };
        if a.pending_init.is_some() {
            // Handshake incomplete: chains unknown; treat as unknown assoc.
            return if forward_unknown {
                (RelayDecision::Forward, Vec::new())
            } else {
                (
                    RelayDecision::Drop(DropReason::UnknownAssociation),
                    Vec::new(),
                )
            };
        }
        let alg = a.alg;
        if pkt.alg != alg {
            return (RelayDecision::Drop(DropReason::Malformed), Vec::new());
        }
        match &pkt.body {
            Body::S1 { element, presig } => {
                // Authenticate the chain element *before* charging the rate
                // limiter: forged S1 floods die at the (cheap, skip-bounded)
                // chain check without consuming the association's S1 budget,
                // so they cannot starve the legitimate sender. The limiter
                // then bounds floods of *authentic* S1s (§3.5).
                // Try both directions: whichever signature chain the
                // element authenticates against is the sender.
                // (`accept_role` only advances on success, so a failed
                // first attempt costs one wasted hash and nothing else.)
                // A retransmitted S1 (lost A1 — the paper stresses that S1
                // and A1 need robust retransmission) carries the already
                // accepted element: recognize and forward it.
                let mut dir = None;
                let mut duplicate = false;
                for d in [&mut a.fwd, &mut a.rev] {
                    let (last_index, last) = d.sig.last();
                    if pkt.chain_index == last_index
                        && alpha_crypto::ct_eq(element.as_bytes(), last.as_bytes())
                    {
                        dir = Some(d);
                        duplicate = true;
                        break;
                    }
                    if d.sig
                        .accept_role(pkt.chain_index, element, Role::Announce)
                        .is_ok()
                    {
                        dir = Some(d);
                        break;
                    }
                }
                let Some(dir) = dir else {
                    return (RelayDecision::Drop(DropReason::BadChainElement), Vec::new());
                };
                // Duplicates also pay (an attacker replaying a captured S1
                // must not bypass the flood budget), but a fresh element
                // was already accepted above, so a rate-limited fresh S1's
                // retransmission comes back as a duplicate and passes once
                // the bucket refills.
                if !a.limiter.allow(pkt.wire_len() as u64, now) {
                    return (RelayDecision::Drop(DropReason::RateLimited), Vec::new());
                }
                let fresh = match presig {
                    PreSignature::Cumulative(macs) => RelayPresig::Macs(macs.clone()),
                    PreSignature::MerkleRoot { root, leaves } => {
                        if *leaves == 0 {
                            return (RelayDecision::Drop(DropReason::Malformed), Vec::new());
                        }
                        RelayPresig::Root {
                            root: *root,
                            leaves: *leaves,
                        }
                    }
                    PreSignature::MerkleForest(trees) => {
                        let lpt = trees[0].leaves as usize;
                        let full = &trees[..trees.len() - 1];
                        if lpt == 0
                            || full.iter().any(|t| t.leaves as usize != lpt)
                            || trees[trees.len() - 1].leaves as usize > lpt
                        {
                            return (RelayDecision::Drop(DropReason::Malformed), Vec::new());
                        }
                        RelayPresig::Forest {
                            trees: trees
                                .iter()
                                .map(|t| PreSignatureTree {
                                    root: t.root,
                                    leaves: t.leaves,
                                })
                                .collect(),
                            leaves_per_tree: lpt,
                        }
                    }
                };
                // First-seen pre-signature wins for a given chain element;
                // the S1's content only becomes checkable at S2 time, so a
                // duplicate is never allowed to overwrite buffered state.
                let keep = duplicate
                    && dir
                        .exchange
                        .as_ref()
                        .is_some_and(|ex| ex.s1_index == pkt.chain_index);
                if !keep {
                    dir.prev_exchange = dir.exchange.take();
                    dir.exchange = Some(RelayExchange {
                        s1_index: pkt.chain_index,
                        announce: *element,
                        presig: fresh,
                        commit: None,
                    });
                }
                (RelayDecision::Forward, Vec::new())
            }
            Body::A1 { element, commit } => {
                // The A1 flows against the data direction: its ack chain
                // belongs to the direction whose exchange it answers. A1
                // replays (answering a retransmitted S1) carry the already
                // accepted element and are forwarded as-is.
                let mut dir = None;
                let mut duplicate = false;
                for d in [&mut a.fwd, &mut a.rev] {
                    let (last_index, last) = d.ack.last();
                    if pkt.chain_index == last_index
                        && alpha_crypto::ct_eq(element.as_bytes(), last.as_bytes())
                    {
                        dir = Some(d);
                        duplicate = true;
                        break;
                    }
                    if d.ack
                        .accept_role(pkt.chain_index, element, Role::Announce)
                        .is_ok()
                    {
                        dir = Some(d);
                        break;
                    }
                }
                let Some(dir) = dir else {
                    return (RelayDecision::Drop(DropReason::BadChainElement), Vec::new());
                };
                if duplicate {
                    return (RelayDecision::Forward, Vec::new());
                }
                if let Some(ex) = dir.exchange.as_mut() {
                    ex.commit = match commit {
                        AckCommit::None => None,
                        AckCommit::Flat { pre_ack, pre_nack } => {
                            Some(RelayCommit::Flat(PreAckPair {
                                pre_ack: *pre_ack,
                                pre_nack: *pre_nack,
                            }))
                        }
                        AckCommit::Amt { root, leaves } => Some(RelayCommit::Amt {
                            root: *root,
                            leaves: *leaves,
                        }),
                    };
                }
                (RelayDecision::Forward, Vec::new())
            }
            Body::S2 {
                key,
                seq,
                path,
                payload,
            } => {
                let matches_dir = |d: &DirectionState| {
                    if d.exchange
                        .as_ref()
                        .is_some_and(|ex| ex.s1_index == pkt.chain_index + 1)
                    {
                        Some(true)
                    } else if d
                        .prev_exchange
                        .as_ref()
                        .is_some_and(|ex| ex.s1_index == pkt.chain_index + 1)
                    {
                        Some(false)
                    } else {
                        None
                    }
                };
                let (dir, is_fwd, in_current) = if let Some(cur) = matches_dir(&a.fwd) {
                    (&mut a.fwd, true, cur)
                } else if let Some(cur) = matches_dir(&a.rev) {
                    (&mut a.rev, false, cur)
                } else if drop_unsolicited {
                    return (RelayDecision::Drop(DropReason::Unsolicited), Vec::new());
                } else {
                    return (RelayDecision::Forward, Vec::new());
                };
                // Authenticate the disclosed key: through the tracker for
                // the current exchange, or via one forward derivation to
                // the stored announce element for a superseded one.
                if in_current {
                    let (last_index, last) = dir.sig.last();
                    if pkt.chain_index == last_index {
                        if !alpha_crypto::ct_eq(key.as_bytes(), last.as_bytes()) {
                            return (RelayDecision::Drop(DropReason::BadChainElement), Vec::new());
                        }
                    } else if dir
                        .sig
                        .accept_role(pkt.chain_index, key, Role::Disclose)
                        .is_err()
                    {
                        return (RelayDecision::Drop(DropReason::BadChainElement), Vec::new());
                    }
                } else {
                    let announce = dir.prev_exchange.as_ref().expect("matched above").announce;
                    let derived = alpha_crypto::chain::derive(
                        alg,
                        alpha_crypto::chain::ChainKind::RoleBoundSignature,
                        pkt.chain_index + 1,
                        key,
                    );
                    if !alpha_crypto::ct_eq(derived.as_bytes(), announce.as_bytes()) {
                        return (RelayDecision::Drop(DropReason::BadChainElement), Vec::new());
                    }
                }
                let ex = if in_current {
                    dir.exchange.as_ref().expect("matched above")
                } else {
                    dir.prev_exchange.as_ref().expect("matched above")
                };
                let valid = match &ex.presig {
                    RelayPresig::Macs(macs) => {
                        (*seq as usize) < macs.len() && {
                            let mac = message_mac(alg, self.cfg.mac_scheme, key, *seq, payload);
                            alpha_crypto::ct_eq(mac.as_bytes(), macs[*seq as usize].as_bytes())
                        }
                    }
                    RelayPresig::Root { root, leaves } => {
                        let expected_depth = merkle::log2_ceil(u64::from(*leaves).max(1)) as usize;
                        (*seq as usize) < *leaves as usize
                            && path.len() == expected_depth
                            && merkle::verify_keyed(
                                alg,
                                key,
                                &alg.hash(payload),
                                *seq as usize,
                                path,
                                root,
                            )
                    }
                    RelayPresig::Forest {
                        trees,
                        leaves_per_tree,
                    } => {
                        let t = *seq as usize / leaves_per_tree;
                        let j = *seq as usize % leaves_per_tree;
                        t < trees.len() && {
                            let tree = &trees[t];
                            let expected_depth =
                                merkle::log2_ceil(u64::from(tree.leaves).max(1)) as usize;
                            j < tree.leaves as usize
                                && path.len() == expected_depth
                                && merkle::verify_keyed(
                                    alg,
                                    key,
                                    &alg.hash(payload),
                                    j,
                                    path,
                                    &tree.root,
                                )
                        }
                    }
                };
                if !valid {
                    return (RelayDecision::Drop(DropReason::BadMac), Vec::new());
                }
                // Enforce a signalled payload-rate cap on this direction.
                let cap = if is_fwd {
                    &mut a.data_cap_fwd
                } else {
                    &mut a.data_cap_rev
                };
                if let Some(bucket) = cap {
                    if !bucket.allow(payload.len() as u64, now) {
                        return (RelayDecision::Drop(DropReason::RateLimited), Vec::new());
                    }
                }
                // Control signals: a verified RateLimit from host X caps
                // the traffic flowing *toward* X (the opposite direction);
                // a verified Close releases this association's state after
                // this packet is forwarded.
                if let Some(sig) = crate::signal::Signal::parse(payload) {
                    match sig {
                        crate::signal::Signal::RateLimit { bytes_per_sec } => {
                            let toward_sender = if is_fwd {
                                &mut a.data_cap_rev
                            } else {
                                &mut a.data_cap_fwd
                            };
                            *toward_sender = Some(S1Limiter::new(Some(bytes_per_sec)));
                        }
                        crate::signal::Signal::Close => {
                            let event = RelayEvent::VerifiedPayload {
                                assoc_id: pkt.assoc_id,
                                forward_direction: is_fwd,
                                seq: *seq,
                                payload: payload.clone(),
                            };
                            self.assocs.remove(&pkt.assoc_id);
                            return (RelayDecision::Forward, vec![event]);
                        }
                        crate::signal::Signal::LocatorUpdate { .. } => {}
                    }
                }
                // Chain renewals ride inside verified payloads; the relay
                // re-anchors the sender's chains (its signature chain in
                // this direction, its acknowledgment chain in the other).
                if let Some(anchors) = crate::renewal::parse(alg, payload) {
                    let skip = self.cfg.max_skip;
                    use alpha_crypto::chain::ChainKind::{RoleBoundAck, RoleBoundSignature};
                    let (sig_dir, ack_dir) = if is_fwd {
                        (&mut a.fwd, &mut a.rev)
                    } else {
                        (&mut a.rev, &mut a.fwd)
                    };
                    sig_dir.sig =
                        ChainVerifier::new(alg, RoleBoundSignature, anchors.sig.0, anchors.sig.1)
                            .with_max_skip(skip);
                    sig_dir.exchange = None;
                    ack_dir.ack =
                        ChainVerifier::new(alg, RoleBoundAck, anchors.ack.0, anchors.ack.1)
                            .with_max_skip(skip);
                }
                (
                    RelayDecision::Forward,
                    vec![RelayEvent::VerifiedPayload {
                        assoc_id: pkt.assoc_id,
                        forward_direction: is_fwd,
                        seq: *seq,
                        payload: payload.clone(),
                    }],
                )
            }
            Body::A2 {
                element,
                disclosure,
            } => {
                let mut dir = None;
                for d in [&mut a.fwd, &mut a.rev] {
                    let (last_index, last) = d.ack.last();
                    let already = pkt.chain_index == last_index
                        && alpha_crypto::ct_eq(element.as_bytes(), last.as_bytes());
                    if already
                        || d.ack
                            .accept_role(pkt.chain_index, element, Role::Disclose)
                            .is_ok()
                    {
                        dir = Some(d);
                        break;
                    }
                }
                let Some(dir) = dir else {
                    return (RelayDecision::Drop(DropReason::BadChainElement), Vec::new());
                };
                let Some(ex) = dir.exchange.as_ref() else {
                    // No buffered commitment: cannot verify, forward as-is.
                    return (RelayDecision::Forward, Vec::new());
                };
                let mut events = Vec::new();
                match (&ex.commit, disclosure) {
                    (Some(RelayCommit::Flat(pair)), A2Disclosure::Flat { ack, secret }) => {
                        let d = alpha_crypto::preack::AckDisclosure {
                            ack: *ack,
                            secret: *secret,
                        };
                        if !alpha_crypto::preack::verify(alg, element, &d, pair) {
                            return (RelayDecision::Drop(DropReason::BadVerdict), Vec::new());
                        }
                        events.push(RelayEvent::VerifiedVerdict {
                            assoc_id: pkt.assoc_id,
                            seq: 0,
                            ack: *ack,
                        });
                    }
                    (Some(RelayCommit::Amt { root, leaves }), A2Disclosure::Amt(items)) => {
                        for item in items {
                            match alpha_crypto::amt::verify_disclosure(
                                alg,
                                element,
                                *leaves as usize,
                                item,
                                root,
                            ) {
                                None => {
                                    return (
                                        RelayDecision::Drop(DropReason::BadVerdict),
                                        Vec::new(),
                                    )
                                }
                                Some(ack) => events.push(RelayEvent::VerifiedVerdict {
                                    assoc_id: pkt.assoc_id,
                                    seq: item.packet_index,
                                    ack,
                                }),
                            }
                        }
                    }
                    (None, _) => {}
                    _ => return (RelayDecision::Drop(DropReason::BadVerdict), Vec::new()),
                }
                (RelayDecision::Forward, events)
            }
            Body::Handshake(_) => unreachable!("handled by observe"),
        }
    }
}

impl RelayAssociation {
    /// State for an association whose handshake is still in flight.
    fn placeholder(alg: Algorithm, s1_rate: Option<u64>, max_skip: u64) -> RelayAssociation {
        use alpha_crypto::chain::ChainKind::{RoleBoundAck, RoleBoundSignature};
        let dummy = Digest::zero(alg);
        let mk = |kind| ChainVerifier::new(alg, kind, dummy, 0).with_max_skip(max_skip);
        RelayAssociation {
            alg,
            fwd: DirectionState {
                sig: mk(RoleBoundSignature),
                ack: mk(RoleBoundAck),
                exchange: None,
                prev_exchange: None,
            },
            rev: DirectionState {
                sig: mk(RoleBoundSignature),
                ack: mk(RoleBoundAck),
                exchange: None,
                prev_exchange: None,
            },
            limiter: S1Limiter::new(s1_rate),
            data_cap_fwd: None,
            data_cap_rev: None,
            pending_init: None,
        }
    }
}
