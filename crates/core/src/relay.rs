//! The on-path relay: per-packet verification, early dropping, and signed
//! data extraction.
//!
//! A relay holds, per association it has learned (footnote 1 of the paper:
//! forwarding nodes in a WMN/WSN/MANET, or middleboxes like firewalls):
//!
//! - chain verifiers for both hosts' signature and acknowledgment chains
//!   (anchors observed in the handshake),
//! - the buffered pre-signature of the outstanding exchange per direction
//!   (a handful of hashes — the `n·h` relay column of Table 2), and
//! - the buffered pre-(n)ack commitments (Table 3) so it can verify
//!   verdicts, which signalling protocols on relays need (§3.2.2).
//!
//! [`Relay::observe`] returns a forwarding decision plus extraction
//! events. Forged S2s, replayed chain elements, and unsolicited traffic
//! (S2 with no matching buffered pre-signature — i.e. data the receiver
//! never agreed to with an A1) are dropped, which is ALPHA's flooding
//! mitigation (§3.5). Packets of unknown associations are forwarded or
//! dropped by [`RelayConfig::forward_unknown`] — forwarding supports the
//! paper's incremental-deployment story.

use std::collections::HashMap;

use alpha_crypto::chain::{ChainVerifier, Role};
use alpha_crypto::preack::PreAckPair;
use alpha_crypto::{merkle, Algorithm, Digest};
use alpha_wire::{
    A2Disclosure, AckCommit, Body, BodyView, HandshakeRole, Packet, PacketView, PreSignature,
};

use crate::limiter::S1Limiter;
use crate::signer::message_mac;
use crate::{MacScheme, Timestamp};

/// Relay policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct RelayConfig {
    /// Forward packets of associations this relay has not learned
    /// (incremental deployment) instead of dropping them.
    pub forward_unknown: bool,
    /// Maximum S1 bytes per association per second (the S1-flood limiter
    /// of §3.5). `None` disables rate limiting.
    pub s1_bytes_per_sec: Option<u64>,
    /// Chain-verifier forward-hash bound.
    pub max_skip: u64,
    /// Drop S2 packets whose exchange the relay never saw an S1 for
    /// (treat unsolicited data as forged). Disabling this still verifies
    /// what can be verified but forwards the rest.
    pub drop_unsolicited: bool,
    /// MAC construction used by the deployment (must match the hosts').
    pub mac_scheme: MacScheme,
}

impl Default for RelayConfig {
    fn default() -> RelayConfig {
        RelayConfig {
            forward_unknown: true,
            s1_bytes_per_sec: Some(64 * 1024),
            max_skip: 128,
            drop_unsolicited: true,
            mac_scheme: MacScheme::Hmac,
        }
    }
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Chain element failed authentication (forged / replayed / wrong role).
    BadChainElement,
    /// Message failed MAC or Merkle verification against the buffered
    /// pre-signature.
    BadMac,
    /// S2 for an exchange the relay never saw announced (unsolicited data).
    Unsolicited,
    /// Verdict failed verification against the buffered commitment.
    BadVerdict,
    /// S1 rate limit exceeded (flood defence).
    RateLimited,
    /// Packet for an unknown association while `forward_unknown` is off.
    UnknownAssociation,
    /// Body malformed with respect to protocol rules (e.g. zero leaves).
    Malformed,
}

/// Forwarding decision for one observed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayDecision {
    /// Pass the packet on.
    Forward,
    /// Drop it.
    Drop(DropReason),
}

/// Information a relay extracted from verified traffic — the "secure
/// extraction of signed data by forwarding nodes" the paper builds
/// middlebox signalling on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayEvent {
    /// A new association was learned from a handshake.
    AssociationLearned(u64),
    /// A payload verified end-to-end passed through this relay.
    VerifiedPayload {
        /// Association it belongs to.
        assoc_id: u64,
        /// Direction: true = initiator→responder chain, false = reverse.
        forward_direction: bool,
        /// Message index within its bundle.
        seq: u32,
        /// The verified bytes.
        payload: Vec<u8>,
    },
    /// A delivery verdict passed through and verified.
    VerifiedVerdict {
        /// Association it belongs to.
        assoc_id: u64,
        /// Message index (0 for flat verdicts covering a bundle).
        seq: u32,
        /// true = ack, false = nack.
        ack: bool,
    },
}

/// What [`Relay::observe_view`] extracted from one packet. Unlike
/// [`RelayEvent`], this carries no payload bytes — the caller already
/// holds the S2 view's payload slice, so the zero-copy path never clones
/// it into an event.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RelayViewOutcome {
    /// A new association was learned from a handshake.
    pub learned: Option<u64>,
    /// An S2 payload verified end-to-end: `(forward_direction, seq)`.
    pub verified_s2: Option<(bool, u32)>,
    /// Verified delivery verdicts as `(seq, ack)` pairs.
    pub verdicts: Vec<(u32, bool)>,
}

/// One direction of one association, as seen from the relay.
struct DirectionState {
    sig: ChainVerifier,
    ack: ChainVerifier,
    /// Outstanding exchange announced by the last S1 in this direction.
    exchange: Option<RelayExchange>,
    /// The superseded exchange, kept so reordered trailing S2s still
    /// verify (a new S1 can overtake them on multi-hop paths).
    prev_exchange: Option<RelayExchange>,
}

struct RelayExchange {
    s1_index: u64,
    /// Authenticated announce element, for verifying a superseded
    /// exchange's late S2 keys (see the verifier's equivalent).
    announce: Digest,
    presig: RelayPresig,
    commit: Option<RelayCommit>,
}

enum RelayPresig {
    Macs(Vec<Digest>),
    Root {
        root: Digest,
        leaves: u32,
    },
    Forest {
        trees: Vec<PreSignatureTree>,
        leaves_per_tree: usize,
    },
}

/// A buffered forest tree: keyed root plus leaf count.
struct PreSignatureTree {
    root: Digest,
    leaves: u32,
}

enum RelayCommit {
    Flat(PreAckPair),
    Amt { root: Digest, leaves: u32 },
}

struct RelayAssociation {
    alg: Algorithm,
    /// Initiator → responder direction (initiator's signature chain,
    /// responder's acknowledgment chain).
    fwd: DirectionState,
    /// Responder → initiator direction.
    rev: DirectionState,
    limiter: S1Limiter,
    /// Signalled payload-rate caps (§1: receiver-controlled, relay-
    /// enforced). `data_cap_fwd` limits verified S2 payload bytes flowing
    /// in the fwd direction, installed by a RateLimit signal from the
    /// reverse direction's host.
    data_cap_fwd: Option<S1Limiter>,
    data_cap_rev: Option<S1Limiter>,
    /// Pending handshake init, until the reply arrives.
    pending_init: Option<(Digest, u64, Digest, u64)>,
    /// The init anchors this association was learned from, kept so a
    /// retransmitted HS1 (the initiator resending because the reply was
    /// slow) is recognized and cannot knock a learned association back
    /// into the handshake-incomplete state.
    learned_init: Option<(Digest, u64, Digest, u64)>,
}

/// A forwarding node that authenticates ALPHA traffic in transit.
pub struct Relay {
    cfg: RelayConfig,
    assocs: HashMap<u64, RelayAssociation>,
}

impl Relay {
    /// An empty relay with the given policy.
    #[must_use]
    pub fn new(cfg: RelayConfig) -> Relay {
        Relay {
            cfg,
            assocs: HashMap::new(),
        }
    }

    /// Number of associations currently tracked.
    #[must_use]
    pub fn association_count(&self) -> usize {
        self.assocs.len()
    }

    /// Total protocol state buffered across all associations — what bounds
    /// how many flows a constrained relay can authenticate concurrently
    /// (the scalability argument of §3.1.1).
    #[must_use]
    pub fn total_buffered_bytes(&self) -> usize {
        self.assocs.keys().map(|id| self.buffered_bytes(*id)).sum()
    }

    /// Bytes of protocol state buffered for `assoc_id` — the relay columns
    /// of Tables 2 and 3.
    #[must_use]
    pub fn buffered_bytes(&self, assoc_id: u64) -> usize {
        let Some(a) = self.assocs.get(&assoc_id) else {
            return 0;
        };
        let h = a.alg.digest_len();
        let dir = |d: &DirectionState| -> usize {
            let chains = d.sig.stored_bytes() + d.ack.stored_bytes();
            let ex = d.exchange.as_ref().map_or(0, |ex| {
                let presig = match &ex.presig {
                    RelayPresig::Macs(m) => m.len() * h,
                    RelayPresig::Root { .. } => h,
                    RelayPresig::Forest { trees, .. } => trees.len() * h,
                };
                let commit = match &ex.commit {
                    Some(RelayCommit::Flat(p)) => p.stored_bytes(),
                    Some(RelayCommit::Amt { .. }) => h,
                    None => 0,
                };
                presig + commit
            });
            chains + ex
        };
        dir(&a.fwd) + dir(&a.rev)
    }

    /// Pre-register an association (static bootstrapping, §3.4: base
    /// stations provide pair-wise anchors before deployment).
    pub fn adopt(
        &mut self,
        assoc_id: u64,
        alg: Algorithm,
        init_sig: (Digest, u64),
        init_ack: (Digest, u64),
        resp_sig: (Digest, u64),
        resp_ack: (Digest, u64),
    ) {
        let mk = |anchor: Digest, idx: u64, kind| {
            ChainVerifier::new(alg, kind, anchor, idx).with_max_skip(self.cfg.max_skip)
        };
        use alpha_crypto::chain::ChainKind::{RoleBoundAck, RoleBoundSignature};
        self.assocs.insert(
            assoc_id,
            RelayAssociation {
                alg,
                fwd: DirectionState {
                    sig: mk(init_sig.0, init_sig.1, RoleBoundSignature),
                    ack: mk(resp_ack.0, resp_ack.1, RoleBoundAck),
                    exchange: None,
                    prev_exchange: None,
                },
                rev: DirectionState {
                    sig: mk(resp_sig.0, resp_sig.1, RoleBoundSignature),
                    ack: mk(init_ack.0, init_ack.1, RoleBoundAck),
                    exchange: None,
                    prev_exchange: None,
                },
                limiter: S1Limiter::new(self.cfg.s1_bytes_per_sec),
                data_cap_fwd: None,
                data_cap_rev: None,
                pending_init: None,
                learned_init: Some((init_sig.0, init_sig.1, init_ack.0, init_ack.1)),
            },
        );
    }

    /// Observe one packet in transit. Returns the forwarding decision and
    /// any extraction events.
    pub fn observe(&mut self, pkt: &Packet, now: Timestamp) -> (RelayDecision, Vec<RelayEvent>) {
        match &pkt.body {
            Body::Handshake(hs) => {
                let (decision, learned) = self.observe_handshake(pkt.assoc_id, pkt.alg, hs);
                let events = learned
                    .map(|id| vec![RelayEvent::AssociationLearned(id)])
                    .unwrap_or_default();
                (decision, events)
            }
            _ => self.observe_data(pkt, now),
        }
    }

    /// Observe one borrowed packet view in transit — the zero-copy
    /// equivalent of [`Relay::observe`]. `wire_len` is the encoded length
    /// of the packet (the slice it was parsed from) and is what the S1
    /// flood limiter charges. The outcome carries no payload bytes; a
    /// caller that extracts verified payloads copies the view's own
    /// payload slice exactly once.
    pub fn observe_view(
        &mut self,
        view: &PacketView<'_>,
        wire_len: usize,
        now: Timestamp,
    ) -> (RelayDecision, RelayViewOutcome) {
        match &view.body {
            BodyView::Handshake(h) => {
                // Handshakes are rare (one pair per association): going
                // through the owned body here is off the hot path.
                let hs = h.to_handshake();
                let (decision, learned) = self.observe_handshake(view.assoc_id, view.alg, &hs);
                (
                    decision,
                    RelayViewOutcome {
                        learned,
                        ..RelayViewOutcome::default()
                    },
                )
            }
            _ => self.observe_view_data(view, wire_len, now),
        }
    }

    fn observe_handshake(
        &mut self,
        assoc_id: u64,
        alg: Algorithm,
        hs: &alpha_wire::Handshake,
    ) -> (RelayDecision, Option<u64>) {
        // Relays learn anchors by watching the handshake (§3.4). The relay
        // cannot judge handshake authenticity (that is the endpoints' PK
        // check); it only records anchors.
        match hs.role {
            HandshakeRole::Init => {
                let init = (
                    hs.sig_anchor,
                    hs.sig_anchor_index,
                    hs.ack_anchor,
                    hs.ack_anchor_index,
                );
                let entry = self.assocs.entry(assoc_id).or_insert_with(|| {
                    RelayAssociation::placeholder(alg, self.cfg.s1_bytes_per_sec, self.cfg.max_skip)
                });
                // A retransmitted HS1 (reply still in flight when the
                // initiator's timer fired) carries the anchors already
                // learned: forward it untouched. Re-arming `pending_init`
                // here would flip a learned association back to
                // handshake-incomplete and silently unverify everything
                // that follows. Different anchors are a genuine new
                // handshake and restart learning as before.
                if entry.learned_init != Some(init) {
                    entry.pending_init = Some(init);
                }
                (RelayDecision::Forward, None)
            }
            HandshakeRole::Reply => {
                let Some(a) = self.assocs.get_mut(&assoc_id) else {
                    return (RelayDecision::Forward, None);
                };
                let Some((isig, isig_i, iack, iack_i)) = a.pending_init.take() else {
                    return (RelayDecision::Forward, None);
                };
                let skip = self.cfg.max_skip;
                use alpha_crypto::chain::ChainKind::{RoleBoundAck, RoleBoundSignature};
                a.alg = alg;
                a.fwd = DirectionState {
                    sig: ChainVerifier::new(alg, RoleBoundSignature, isig, isig_i)
                        .with_max_skip(skip),
                    ack: ChainVerifier::new(alg, RoleBoundAck, hs.ack_anchor, hs.ack_anchor_index)
                        .with_max_skip(skip),
                    exchange: None,
                    prev_exchange: None,
                };
                a.rev = DirectionState {
                    sig: ChainVerifier::new(
                        alg,
                        RoleBoundSignature,
                        hs.sig_anchor,
                        hs.sig_anchor_index,
                    )
                    .with_max_skip(skip),
                    ack: ChainVerifier::new(alg, RoleBoundAck, iack, iack_i).with_max_skip(skip),
                    exchange: None,
                    prev_exchange: None,
                };
                a.learned_init = Some((isig, isig_i, iack, iack_i));
                (RelayDecision::Forward, Some(assoc_id))
            }
        }
    }

    /// Common preamble for data packets: association lookup, handshake
    /// completeness, and algorithm agreement. `Err` carries the decision
    /// to return directly.
    fn data_assoc(
        &mut self,
        assoc_id: u64,
        alg: Algorithm,
    ) -> Result<&mut RelayAssociation, RelayDecision> {
        let forward_unknown = self.cfg.forward_unknown;
        let unknown = || {
            if forward_unknown {
                RelayDecision::Forward
            } else {
                RelayDecision::Drop(DropReason::UnknownAssociation)
            }
        };
        let Some(a) = self.assocs.get_mut(&assoc_id) else {
            return Err(unknown());
        };
        if a.pending_init.is_some() {
            // Handshake incomplete: chains unknown; treat as unknown assoc.
            return Err(unknown());
        }
        if alg != a.alg {
            return Err(RelayDecision::Drop(DropReason::Malformed));
        }
        Ok(a)
    }

    fn observe_data(&mut self, pkt: &Packet, now: Timestamp) -> (RelayDecision, Vec<RelayEvent>) {
        let cfg = self.cfg;
        let a = match self.data_assoc(pkt.assoc_id, pkt.alg) {
            Ok(a) => a,
            Err(decision) => return (decision, Vec::new()),
        };
        match &pkt.body {
            Body::S1 { element, presig } => {
                let decision = s1_parts(a, pkt.chain_index, element, pkt.wire_len(), now, || {
                    presig_from_owned(presig)
                });
                (decision, Vec::new())
            }
            Body::A1 { element, commit } => {
                (a1_parts(a, pkt.chain_index, element, commit), Vec::new())
            }
            Body::S2 {
                key,
                seq,
                path,
                payload,
            } => match s2_parts(&cfg, a, pkt.chain_index, key, *seq, path, payload, now) {
                Err(reason) => (RelayDecision::Drop(reason), Vec::new()),
                Ok(S2Outcome::Unverified) => (RelayDecision::Forward, Vec::new()),
                Ok(S2Outcome::Verified { is_fwd, close }) => {
                    if close {
                        self.assocs.remove(&pkt.assoc_id);
                    }
                    (
                        RelayDecision::Forward,
                        vec![RelayEvent::VerifiedPayload {
                            assoc_id: pkt.assoc_id,
                            forward_direction: is_fwd,
                            seq: *seq,
                            payload: payload.clone(),
                        }],
                    )
                }
            },
            Body::A2 {
                element,
                disclosure,
            } => match a2_parts(a, pkt.chain_index, element, disclosure) {
                Err(reason) => (RelayDecision::Drop(reason), Vec::new()),
                Ok(verdicts) => {
                    let events = verdicts
                        .into_iter()
                        .map(|(seq, ack)| RelayEvent::VerifiedVerdict {
                            assoc_id: pkt.assoc_id,
                            seq,
                            ack,
                        })
                        .collect();
                    (RelayDecision::Forward, events)
                }
            },
            // Allowlist: `observe` dispatches handshakes before reaching
            // here, so no network input can hit this arm.
            Body::Handshake(_) => unreachable!("handled by observe"),
        }
    }

    fn observe_view_data(
        &mut self,
        view: &PacketView<'_>,
        wire_len: usize,
        now: Timestamp,
    ) -> (RelayDecision, RelayViewOutcome) {
        let cfg = self.cfg;
        let none = RelayViewOutcome::default();
        let a = match self.data_assoc(view.assoc_id, view.alg) {
            Ok(a) => a,
            Err(decision) => return (decision, none),
        };
        match &view.body {
            BodyView::S1 { element, presig } => {
                let decision = s1_parts(a, view.chain_index, element, wire_len, now, || {
                    presig_from_view(presig)
                });
                (decision, none)
            }
            BodyView::A1 { element, commit } => {
                (a1_parts(a, view.chain_index, element, commit), none)
            }
            BodyView::S2 {
                key,
                seq,
                path,
                payload,
            } => {
                // The authentication path moves to the stack; the payload
                // stays borrowed from the datagram. No heap allocation on
                // this whole arm.
                let path = path.to_path();
                match s2_parts(&cfg, a, view.chain_index, key, *seq, &path, payload, now) {
                    Err(reason) => (RelayDecision::Drop(reason), none),
                    Ok(S2Outcome::Unverified) => (RelayDecision::Forward, none),
                    Ok(S2Outcome::Verified { is_fwd, close }) => {
                        if close {
                            self.assocs.remove(&view.assoc_id);
                        }
                        (
                            RelayDecision::Forward,
                            RelayViewOutcome {
                                verified_s2: Some((is_fwd, *seq)),
                                ..RelayViewOutcome::default()
                            },
                        )
                    }
                }
            }
            BodyView::A2 {
                element,
                disclosure,
            } => {
                // A2s are rare (one per exchange) — the owned disclosure
                // conversion is off the hot path.
                let disclosure = disclosure.to_disclosure();
                match a2_parts(a, view.chain_index, element, &disclosure) {
                    Err(reason) => (RelayDecision::Drop(reason), none),
                    Ok(verdicts) => (
                        RelayDecision::Forward,
                        RelayViewOutcome {
                            verdicts,
                            ..RelayViewOutcome::default()
                        },
                    ),
                }
            }
            // Allowlist: `observe_view` dispatches handshakes before
            // reaching here, so no network input can hit this arm.
            BodyView::Handshake(_) => unreachable!("handled by observe_view"),
        }
    }

    /// Observe a run of S2 packets of one association in one call,
    /// verifying their MACs / Merkle paths through the batched digest
    /// backend. Decisions come back in input order and are exactly what a
    /// packet-by-packet [`Relay::observe_view`] sequence would have
    /// produced: phase 1 (chain acceptance, structural checks) still runs
    /// strictly sequentially per packet, only the independent digest
    /// computations are batched, and any payload that could carry a
    /// relay-visible control message (signal or chain renewal — both
    /// magic-prefixed) forms a barrier that is processed single-shot so
    /// its state changes order correctly with its neighbours.
    pub fn observe_s2_batch(
        &mut self,
        assoc_id: u64,
        items: &[S2BatchItem<'_>],
        now: Timestamp,
    ) -> Vec<(RelayDecision, RelayViewOutcome)> {
        let mut out = Vec::with_capacity(items.len());
        let mut i = 0;
        while i < items.len() {
            if carries_control(items[i].payload) {
                let item = &items[i];
                out.push(self.observe_s2_one(assoc_id, item, now));
                i += 1;
                continue;
            }
            let start = i;
            while i < items.len() && !carries_control(items[i].payload) {
                i += 1;
            }
            self.s2_run(assoc_id, &items[start..i], now, &mut out);
        }
        out
    }

    /// Single-shot S2 processing for one batch item (control barriers and
    /// the degenerate one-packet run).
    fn observe_s2_one(
        &mut self,
        assoc_id: u64,
        item: &S2BatchItem<'_>,
        now: Timestamp,
    ) -> (RelayDecision, RelayViewOutcome) {
        let cfg = self.cfg;
        let none = RelayViewOutcome::default();
        let a = match self.data_assoc(assoc_id, item.alg) {
            Ok(a) => a,
            Err(decision) => return (decision, none),
        };
        match s2_parts(
            &cfg,
            a,
            item.chain_index,
            &item.key,
            item.seq,
            item.path,
            item.payload,
            now,
        ) {
            Err(reason) => (RelayDecision::Drop(reason), none),
            Ok(S2Outcome::Unverified) => (RelayDecision::Forward, none),
            Ok(S2Outcome::Verified { is_fwd, close }) => {
                if close {
                    self.assocs.remove(&assoc_id);
                }
                (
                    RelayDecision::Forward,
                    RelayViewOutcome {
                        verified_s2: Some((is_fwd, item.seq)),
                        ..RelayViewOutcome::default()
                    },
                )
            }
        }
    }

    /// A control-free run: prepare every packet sequentially, compute all
    /// deferred digests in batched sweeps, then finish sequentially.
    fn s2_run(
        &mut self,
        assoc_id: u64,
        run: &[S2BatchItem<'_>],
        now: Timestamp,
        out: &mut Vec<(RelayDecision, RelayViewOutcome)>,
    ) {
        let cfg = self.cfg;
        let none = RelayViewOutcome::default;
        // Phase 1: sequential prepare. `decided` holds packets resolved
        // without crypto; `checks` the deferred comparisons.
        let mut decided: Vec<Option<RelayDecision>> = Vec::with_capacity(run.len());
        let mut checks: Vec<Option<(bool, S2Check)>> = Vec::with_capacity(run.len());
        for item in run {
            match self.data_assoc(assoc_id, item.alg) {
                Err(decision) => {
                    decided.push(Some(decision));
                    checks.push(None);
                }
                Ok(a) => match s2_prepare(
                    &cfg,
                    a,
                    item.chain_index,
                    &item.key,
                    item.seq,
                    item.path.len(),
                ) {
                    Err(reason) => {
                        decided.push(Some(RelayDecision::Drop(reason)));
                        checks.push(None);
                    }
                    Ok(S2Prepared::Unverified) => {
                        decided.push(Some(RelayDecision::Forward));
                        checks.push(None);
                    }
                    Ok(S2Prepared::Check { is_fwd, check }) => {
                        decided.push(None);
                        checks.push(Some((is_fwd, check)));
                    }
                },
            }
        }
        // Phase 2: batched crypto. All checked packets share the
        // association's algorithm (data_assoc enforced it), so HMAC keys
        // are same-length and `mac_parts_batch` applies; Merkle leaf
        // hashes batch through `digest_batch` before the scalar path walk.
        // No association ⇒ every packet was decided in phase 1 and no
        // crypto job exists, so the fallback value is never used.
        let alg = self
            .assocs
            .get(&assoc_id)
            .map_or(Algorithm::Sha1, |a| a.alg);
        let mut passed = vec![false; run.len()];
        let mut mac_idx: Vec<usize> = Vec::new();
        let mut leaf_idx: Vec<usize> = Vec::new();
        for (k, check) in checks.iter().enumerate() {
            match check {
                Some((_, S2Check::Mac { .. })) => mac_idx.push(k),
                Some((_, S2Check::Keyed { .. })) => leaf_idx.push(k),
                None => {}
            }
        }
        if !mac_idx.is_empty() {
            match cfg.mac_scheme {
                MacScheme::Hmac => {
                    let seq_be: Vec<[u8; 4]> =
                        mac_idx.iter().map(|&k| run[k].seq.to_be_bytes()).collect();
                    let parts: Vec<[&[u8]; 2]> = mac_idx
                        .iter()
                        .zip(&seq_be)
                        .map(|(&k, s)| [s.as_slice(), run[k].payload])
                        .collect();
                    let msgs: Vec<&[&[u8]]> = parts.iter().map(|p| p.as_slice()).collect();
                    let keys: Vec<&[u8]> = mac_idx.iter().map(|&k| run[k].key.as_bytes()).collect();
                    let mut macs = vec![Digest::zero(alg); mac_idx.len()];
                    alpha_crypto::backend::mac_parts_batch(alg, &keys, &msgs, &mut macs);
                    for (&k, mac) in mac_idx.iter().zip(&macs) {
                        let Some((_, S2Check::Mac { expected })) = &checks[k] else {
                            unreachable!("index collected from a Mac check");
                        };
                        passed[k] = alpha_crypto::ct_eq(mac.as_bytes(), expected.as_bytes());
                    }
                }
                MacScheme::Prefix => {
                    for &k in &mac_idx {
                        let Some((_, check)) = &checks[k] else {
                            unreachable!("index collected from a check");
                        };
                        passed[k] = s2_check_passes(
                            &cfg,
                            alg,
                            &run[k].key,
                            run[k].seq,
                            run[k].path,
                            run[k].payload,
                            check,
                        );
                    }
                }
            }
        }
        if !leaf_idx.is_empty() {
            let payloads: Vec<&[u8]> = leaf_idx.iter().map(|&k| run[k].payload).collect();
            let mut leaves = vec![Digest::zero(alg); leaf_idx.len()];
            alpha_crypto::backend::digest_batch(alg, &payloads, &mut leaves);
            for (&k, leaf) in leaf_idx.iter().zip(&leaves) {
                let Some((_, S2Check::Keyed { root, leaf_index })) = &checks[k] else {
                    unreachable!("index collected from a Keyed check");
                };
                let computed =
                    merkle::keyed_root_from_path(alg, &run[k].key, leaf, *leaf_index, run[k].path);
                passed[k] = alpha_crypto::ct_eq(computed.as_bytes(), root.as_bytes());
            }
        }
        // Phase 3: sequential finish, in input order.
        for (k, item) in run.iter().enumerate() {
            if let Some(decision) = decided[k].take() {
                out.push((decision, none()));
                continue;
            }
            let Some(&(is_fwd, _)) = checks[k].as_ref() else {
                unreachable!("undecided packets carry a check");
            };
            if !passed[k] {
                out.push((RelayDecision::Drop(DropReason::BadMac), none()));
                continue;
            }
            // Allowlist: a packet reaches here only if phase 1 found the
            // association, and nothing in a control-free run removes it.
            let a = self.assocs.get_mut(&assoc_id).expect("present in phase 1");
            match s2_finish(&cfg, a, is_fwd, item.payload, now) {
                Err(reason) => out.push((RelayDecision::Drop(reason), none())),
                Ok(S2Outcome::Unverified) => out.push((RelayDecision::Forward, none())),
                Ok(S2Outcome::Verified { is_fwd, close }) => {
                    if close {
                        self.assocs.remove(&assoc_id);
                    }
                    out.push((
                        RelayDecision::Forward,
                        RelayViewOutcome {
                            verified_s2: Some((is_fwd, item.seq)),
                            ..RelayViewOutcome::default()
                        },
                    ));
                }
            }
        }
    }
}

/// Borrowed fields of one S2 packet queued for [`Relay::observe_s2_batch`].
pub struct S2BatchItem<'a> {
    /// Hash algorithm from the packet header.
    pub alg: Algorithm,
    /// Chain index from the packet header.
    pub chain_index: u64,
    /// Disclosed MAC-key chain element.
    pub key: Digest,
    /// Message sequence number within its bundle.
    pub seq: u32,
    /// Merkle authentication path (empty for Base/ALPHA-C).
    pub path: &'a [Digest],
    /// Borrowed payload bytes.
    pub payload: &'a [u8],
}

/// True when a payload could carry a relay-visible control message (a
/// signal or a chain renewal, both magic-prefixed). Such packets change
/// relay state when verified, so the batch path orders them with a
/// single-shot barrier; false positives (malformed control payloads) only
/// cost the batching, never correctness.
fn carries_control(payload: &[u8]) -> bool {
    payload.starts_with(crate::signal::MAGIC) || payload.starts_with(crate::renewal::MAGIC)
}

/// Buffer an S1's pre-signature for later S2 verification (owned body).
fn presig_from_owned(presig: &PreSignature) -> Result<RelayPresig, DropReason> {
    match presig {
        PreSignature::Cumulative(macs) => Ok(RelayPresig::Macs(macs.clone())),
        PreSignature::MerkleRoot { root, leaves } => {
            if *leaves == 0 {
                return Err(DropReason::Malformed);
            }
            Ok(RelayPresig::Root {
                root: *root,
                leaves: *leaves,
            })
        }
        PreSignature::MerkleForest(trees) => forest_presig(
            trees
                .iter()
                .map(|t| PreSignatureTree {
                    root: t.root,
                    leaves: t.leaves,
                })
                .collect(),
        ),
    }
}

/// Buffer an S1's pre-signature for later S2 verification (borrowed
/// body). The buffered state must outlive the datagram, so this is where
/// the relay's one deliberate S1 copy happens.
fn presig_from_view(presig: &alpha_wire::PreSignatureView<'_>) -> Result<RelayPresig, DropReason> {
    use alpha_wire::PreSignatureView;
    match presig {
        PreSignatureView::Cumulative(macs) => Ok(RelayPresig::Macs(macs.to_vec())),
        PreSignatureView::MerkleRoot { root, leaves } => {
            if *leaves == 0 {
                return Err(DropReason::Malformed);
            }
            Ok(RelayPresig::Root {
                root: *root,
                leaves: *leaves,
            })
        }
        PreSignatureView::MerkleForest(trees) => forest_presig(
            trees
                .iter()
                .map(|t| PreSignatureTree {
                    root: t.root,
                    leaves: t.leaves,
                })
                .collect(),
        ),
    }
}

/// Validate forest uniformity: all trees but the last carry the same
/// leaf count, the last at most that many.
fn forest_presig(trees: Vec<PreSignatureTree>) -> Result<RelayPresig, DropReason> {
    let Some(first) = trees.first() else {
        return Err(DropReason::Malformed);
    };
    let lpt = first.leaves as usize;
    let full = &trees[..trees.len() - 1];
    if lpt == 0
        || full.iter().any(|t| t.leaves as usize != lpt)
        || trees[trees.len() - 1].leaves as usize > lpt
    {
        return Err(DropReason::Malformed);
    }
    Ok(RelayPresig::Forest {
        trees,
        leaves_per_tree: lpt,
    })
}

/// The S1 logic shared by the owned and borrowed observe paths.
fn s1_parts(
    a: &mut RelayAssociation,
    chain_index: u64,
    element: &Digest,
    wire_len: usize,
    now: Timestamp,
    build_presig: impl FnOnce() -> Result<RelayPresig, DropReason>,
) -> RelayDecision {
    // Authenticate the chain element *before* charging the rate
    // limiter: forged S1 floods die at the (cheap, skip-bounded)
    // chain check without consuming the association's S1 budget,
    // so they cannot starve the legitimate sender. The limiter
    // then bounds floods of *authentic* S1s (§3.5).
    // Try both directions: whichever signature chain the
    // element authenticates against is the sender.
    // (`accept_role` only advances on success, so a failed
    // first attempt costs one wasted hash and nothing else.)
    // A retransmitted S1 (lost A1 — the paper stresses that S1
    // and A1 need robust retransmission) carries the already
    // accepted element: recognize and forward it.
    let mut dir = None;
    let mut duplicate = false;
    for d in [&mut a.fwd, &mut a.rev] {
        let (last_index, last) = d.sig.last();
        if chain_index == last_index && alpha_crypto::ct_eq(element.as_bytes(), last.as_bytes()) {
            dir = Some(d);
            duplicate = true;
            break;
        }
        if d.sig
            .accept_role(chain_index, element, Role::Announce)
            .is_ok()
        {
            dir = Some(d);
            break;
        }
    }
    let Some(dir) = dir else {
        return RelayDecision::Drop(DropReason::BadChainElement);
    };
    // Duplicates also pay (an attacker replaying a captured S1
    // must not bypass the flood budget), but a fresh element
    // was already accepted above, so a rate-limited fresh S1's
    // retransmission comes back as a duplicate and passes once
    // the bucket refills.
    if !a.limiter.allow(wire_len as u64, now) {
        return RelayDecision::Drop(DropReason::RateLimited);
    }
    let fresh = match build_presig() {
        Ok(p) => p,
        Err(reason) => return RelayDecision::Drop(reason),
    };
    // First-seen pre-signature wins for a given chain element;
    // the S1's content only becomes checkable at S2 time, so a
    // duplicate is never allowed to overwrite buffered state.
    let keep = duplicate
        && dir
            .exchange
            .as_ref()
            .is_some_and(|ex| ex.s1_index == chain_index);
    if !keep {
        dir.prev_exchange = dir.exchange.take();
        dir.exchange = Some(RelayExchange {
            s1_index: chain_index,
            announce: *element,
            presig: fresh,
            commit: None,
        });
    }
    RelayDecision::Forward
}

/// The A1 logic shared by the owned and borrowed observe paths.
fn a1_parts(
    a: &mut RelayAssociation,
    chain_index: u64,
    element: &Digest,
    commit: &AckCommit,
) -> RelayDecision {
    // The A1 flows against the data direction: its ack chain
    // belongs to the direction whose exchange it answers. A1
    // replays (answering a retransmitted S1) carry the already
    // accepted element and are forwarded as-is.
    let mut dir = None;
    let mut duplicate = false;
    for d in [&mut a.fwd, &mut a.rev] {
        let (last_index, last) = d.ack.last();
        if chain_index == last_index && alpha_crypto::ct_eq(element.as_bytes(), last.as_bytes()) {
            dir = Some(d);
            duplicate = true;
            break;
        }
        if d.ack
            .accept_role(chain_index, element, Role::Announce)
            .is_ok()
        {
            dir = Some(d);
            break;
        }
    }
    let Some(dir) = dir else {
        return RelayDecision::Drop(DropReason::BadChainElement);
    };
    if duplicate {
        return RelayDecision::Forward;
    }
    if let Some(ex) = dir.exchange.as_mut() {
        ex.commit = match commit {
            AckCommit::None => None,
            AckCommit::Flat { pre_ack, pre_nack } => Some(RelayCommit::Flat(PreAckPair {
                pre_ack: *pre_ack,
                pre_nack: *pre_nack,
            })),
            AckCommit::Amt { root, leaves } => Some(RelayCommit::Amt {
                root: *root,
                leaves: *leaves,
            }),
        };
    }
    RelayDecision::Forward
}

/// How a verified S2 should be handled by the caller.
enum S2Outcome {
    /// Forward without extraction (no matching exchange, policy allows).
    Unverified,
    /// Verified: extract the payload; `close` removes the association.
    Verified {
        /// Direction: true = initiator→responder.
        is_fwd: bool,
        /// A verified Close signal releases the association's state.
        close: bool,
    },
}

/// The one cryptographic comparison an S2 still owes after
/// [`s2_prepare`] — everything needed to run it detached from the
/// association borrow, so a caller can compute many checks in one
/// batched sweep.
enum S2Check {
    /// Recompute the per-message MAC and compare with the buffered one.
    Mac {
        /// MAC buffered from the S1 pre-signature for this sequence number.
        expected: Digest,
    },
    /// Recompute the keyed Merkle root from the payload leaf and its
    /// authentication path.
    Keyed {
        /// Keyed root buffered from the S1 pre-signature.
        root: Digest,
        /// Leaf index within the (per-tree) leaf range.
        leaf_index: usize,
    },
}

/// Result of the pre-crypto phase of S2 processing.
enum S2Prepared {
    /// No matching exchange and policy forwards unverified traffic.
    Unverified,
    /// Chain-accepted and structurally valid; the crypto check is pending.
    Check {
        /// Direction: true = initiator→responder.
        is_fwd: bool,
        /// The deferred comparison.
        check: S2Check,
    },
}

/// Phase 1 of S2 processing: direction match, chain-element
/// authentication, and structural checks against the buffered
/// pre-signature. Mirrors the original single-shot flow exactly — in
/// particular the chain verifier advances *before* the MAC/Merkle check
/// runs, so deferring the crypto to a batch changes nothing observable.
fn s2_prepare(
    cfg: &RelayConfig,
    a: &mut RelayAssociation,
    chain_index: u64,
    key: &Digest,
    seq: u32,
    path_len: usize,
) -> Result<S2Prepared, DropReason> {
    let alg = a.alg;
    let matches_dir = |d: &DirectionState| {
        if d.exchange
            .as_ref()
            .is_some_and(|ex| ex.s1_index == chain_index + 1)
        {
            Some(true)
        } else if d
            .prev_exchange
            .as_ref()
            .is_some_and(|ex| ex.s1_index == chain_index + 1)
        {
            Some(false)
        } else {
            None
        }
    };
    let (dir, is_fwd, in_current) = if let Some(cur) = matches_dir(&a.fwd) {
        (&mut a.fwd, true, cur)
    } else if let Some(cur) = matches_dir(&a.rev) {
        (&mut a.rev, false, cur)
    } else if cfg.drop_unsolicited {
        return Err(DropReason::Unsolicited);
    } else {
        return Ok(S2Prepared::Unverified);
    };
    // Authenticate the disclosed key: through the tracker for
    // the current exchange, or via one forward derivation to
    // the stored announce element for a superseded one.
    if in_current {
        let (last_index, last) = dir.sig.last();
        if chain_index == last_index {
            if !alpha_crypto::ct_eq(key.as_bytes(), last.as_bytes()) {
                return Err(DropReason::BadChainElement);
            }
        } else if dir
            .sig
            .accept_role(chain_index, key, Role::Disclose)
            .is_err()
        {
            return Err(DropReason::BadChainElement);
        }
    } else {
        // Allowlist: `in_current == false` implies `matches_dir` found
        // `prev_exchange` populated, and nothing in between releases it.
        let announce = dir.prev_exchange.as_ref().expect("matched above").announce;
        let derived = alpha_crypto::chain::derive(
            alg,
            alpha_crypto::chain::ChainKind::RoleBoundSignature,
            chain_index + 1,
            key,
        );
        if !alpha_crypto::ct_eq(derived.as_bytes(), announce.as_bytes()) {
            return Err(DropReason::BadChainElement);
        }
    }
    // Allowlist: same invariant — the matched exchange is still in place.
    let ex = if in_current {
        dir.exchange.as_ref().expect("matched above")
    } else {
        dir.prev_exchange.as_ref().expect("matched above")
    };
    let check = match &ex.presig {
        RelayPresig::Macs(macs) => {
            if (seq as usize) >= macs.len() {
                return Err(DropReason::BadMac);
            }
            S2Check::Mac {
                expected: macs[seq as usize],
            }
        }
        RelayPresig::Root { root, leaves } => {
            let expected_depth = merkle::log2_ceil(u64::from(*leaves).max(1)) as usize;
            if (seq as usize) >= *leaves as usize || path_len != expected_depth {
                return Err(DropReason::BadMac);
            }
            S2Check::Keyed {
                root: *root,
                leaf_index: seq as usize,
            }
        }
        RelayPresig::Forest {
            trees,
            leaves_per_tree,
        } => {
            let t = seq as usize / leaves_per_tree;
            let j = seq as usize % leaves_per_tree;
            if t >= trees.len() {
                return Err(DropReason::BadMac);
            }
            let tree = &trees[t];
            let expected_depth = merkle::log2_ceil(u64::from(tree.leaves).max(1)) as usize;
            if j >= tree.leaves as usize || path_len != expected_depth {
                return Err(DropReason::BadMac);
            }
            S2Check::Keyed {
                root: tree.root,
                leaf_index: j,
            }
        }
    };
    Ok(S2Prepared::Check { is_fwd, check })
}

/// Phase 2 of S2 processing, scalar form: run the deferred comparison
/// for one packet. The batch path computes the same digests through the
/// lane-parallel backend instead.
fn s2_check_passes(
    cfg: &RelayConfig,
    alg: Algorithm,
    key: &Digest,
    seq: u32,
    path: &[Digest],
    payload: &[u8],
    check: &S2Check,
) -> bool {
    match check {
        S2Check::Mac { expected } => {
            let mac = message_mac(alg, cfg.mac_scheme, key, seq, payload);
            alpha_crypto::ct_eq(mac.as_bytes(), expected.as_bytes())
        }
        S2Check::Keyed { root, leaf_index } => {
            merkle::verify_keyed(alg, key, &alg.hash(payload), *leaf_index, path, root)
        }
    }
}

/// Phase 3 of S2 processing: rate caps, control signals, and chain
/// renewal for a packet whose crypto check passed.
fn s2_finish(
    cfg: &RelayConfig,
    a: &mut RelayAssociation,
    is_fwd: bool,
    payload: &[u8],
    now: Timestamp,
) -> Result<S2Outcome, DropReason> {
    let alg = a.alg;
    // Enforce a signalled payload-rate cap on this direction.
    let cap = if is_fwd {
        &mut a.data_cap_fwd
    } else {
        &mut a.data_cap_rev
    };
    if let Some(bucket) = cap {
        if !bucket.allow(payload.len() as u64, now) {
            return Err(DropReason::RateLimited);
        }
    }
    // Control signals: a verified RateLimit from host X caps
    // the traffic flowing *toward* X (the opposite direction);
    // a verified Close releases this association's state after
    // this packet is forwarded.
    if let Some(sig) = crate::signal::Signal::parse(payload) {
        match sig {
            crate::signal::Signal::RateLimit { bytes_per_sec } => {
                let toward_sender = if is_fwd {
                    &mut a.data_cap_rev
                } else {
                    &mut a.data_cap_fwd
                };
                *toward_sender = Some(S1Limiter::new(Some(bytes_per_sec)));
            }
            crate::signal::Signal::Close => {
                return Ok(S2Outcome::Verified {
                    is_fwd,
                    close: true,
                });
            }
            crate::signal::Signal::LocatorUpdate { .. } => {}
        }
    }
    // Chain renewals ride inside verified payloads; the relay
    // re-anchors the sender's chains (its signature chain in
    // this direction, its acknowledgment chain in the other).
    if let Some(anchors) = crate::renewal::parse(alg, payload) {
        let skip = cfg.max_skip;
        use alpha_crypto::chain::ChainKind::{RoleBoundAck, RoleBoundSignature};
        let (sig_dir, ack_dir) = if is_fwd {
            (&mut a.fwd, &mut a.rev)
        } else {
            (&mut a.rev, &mut a.fwd)
        };
        sig_dir.sig = ChainVerifier::new(alg, RoleBoundSignature, anchors.sig.0, anchors.sig.1)
            .with_max_skip(skip);
        sig_dir.exchange = None;
        ack_dir.ack =
            ChainVerifier::new(alg, RoleBoundAck, anchors.ack.0, anchors.ack.1).with_max_skip(skip);
    }
    Ok(S2Outcome::Verified {
        is_fwd,
        close: false,
    })
}

/// The S2 verification logic shared by the owned and borrowed observe
/// paths, recomposed from the three phases. Takes slices end-to-end: no
/// allocation happens here regardless of which decode produced the
/// fields.
#[allow(clippy::too_many_arguments)] // one call site per decode path
fn s2_parts(
    cfg: &RelayConfig,
    a: &mut RelayAssociation,
    chain_index: u64,
    key: &Digest,
    seq: u32,
    path: &[Digest],
    payload: &[u8],
    now: Timestamp,
) -> Result<S2Outcome, DropReason> {
    let alg = a.alg;
    match s2_prepare(cfg, a, chain_index, key, seq, path.len())? {
        S2Prepared::Unverified => Ok(S2Outcome::Unverified),
        S2Prepared::Check { is_fwd, check } => {
            if !s2_check_passes(cfg, alg, key, seq, path, payload, &check) {
                return Err(DropReason::BadMac);
            }
            s2_finish(cfg, a, is_fwd, payload, now)
        }
    }
}

/// The A2 verification logic shared by the owned and borrowed observe
/// paths. Returns the verified `(seq, ack)` verdicts.
fn a2_parts(
    a: &mut RelayAssociation,
    chain_index: u64,
    element: &Digest,
    disclosure: &A2Disclosure,
) -> Result<Vec<(u32, bool)>, DropReason> {
    let alg = a.alg;
    let mut dir = None;
    for d in [&mut a.fwd, &mut a.rev] {
        let (last_index, last) = d.ack.last();
        let already =
            chain_index == last_index && alpha_crypto::ct_eq(element.as_bytes(), last.as_bytes());
        if already
            || d.ack
                .accept_role(chain_index, element, Role::Disclose)
                .is_ok()
        {
            dir = Some(d);
            break;
        }
    }
    let Some(dir) = dir else {
        return Err(DropReason::BadChainElement);
    };
    let Some(ex) = dir.exchange.as_ref() else {
        // No buffered commitment: cannot verify, forward as-is.
        return Ok(Vec::new());
    };
    let mut verdicts = Vec::new();
    match (&ex.commit, disclosure) {
        (Some(RelayCommit::Flat(pair)), A2Disclosure::Flat { ack, secret }) => {
            let d = alpha_crypto::preack::AckDisclosure {
                ack: *ack,
                secret: *secret,
            };
            if !alpha_crypto::preack::verify(alg, element, &d, pair) {
                return Err(DropReason::BadVerdict);
            }
            verdicts.push((0, *ack));
        }
        (Some(RelayCommit::Amt { root, leaves }), A2Disclosure::Amt(items)) => {
            for item in items {
                match alpha_crypto::amt::verify_disclosure(
                    alg,
                    element,
                    *leaves as usize,
                    item,
                    root,
                ) {
                    None => return Err(DropReason::BadVerdict),
                    Some(ack) => verdicts.push((item.packet_index, ack)),
                }
            }
        }
        (None, _) => {}
        _ => return Err(DropReason::BadVerdict),
    }
    Ok(verdicts)
}

impl RelayAssociation {
    /// State for an association whose handshake is still in flight.
    fn placeholder(alg: Algorithm, s1_rate: Option<u64>, max_skip: u64) -> RelayAssociation {
        use alpha_crypto::chain::ChainKind::{RoleBoundAck, RoleBoundSignature};
        let dummy = Digest::zero(alg);
        let mk = |kind| ChainVerifier::new(alg, kind, dummy, 0).with_max_skip(max_skip);
        RelayAssociation {
            alg,
            fwd: DirectionState {
                sig: mk(RoleBoundSignature),
                ack: mk(RoleBoundAck),
                exchange: None,
                prev_exchange: None,
            },
            rev: DirectionState {
                sig: mk(RoleBoundSignature),
                ack: mk(RoleBoundAck),
                exchange: None,
                prev_exchange: None,
            },
            limiter: S1Limiter::new(s1_rate),
            data_cap_fwd: None,
            data_cap_rev: None,
            pending_init: None,
            learned_init: None,
        }
    }
}
