//! Bootstrapping (§3.4): making hash-chain anchors known.
//!
//! Two flavours, both producing a ready [`Association`]:
//!
//! - **Unprotected**: anchors are exchanged in the clear. Each peer gains
//!   an *ephemeral anonymous identity* — enough to securely signal within
//!   the association (address changes, rate throttling, teardown), not
//!   enough to know *who* the peer is.
//! - **Protected**: the handshake's anchor fields are signed with RSA, DSA
//!   or ECDSA via `alpha-pk`, binding chains to strong cryptographic
//!   identities. ALPHA deliberately confines asymmetric cryptography to
//!   this one-time step.
//!
//! Relays learn anchors by observing the handshake
//! ([`crate::Relay::observe`]); for pre-deployed networks (static WSNs)
//! use [`crate::Relay::adopt`] and [`Association::from_chains`] directly.

use alpha_crypto::chain::{ChainKind, HashChain};
use alpha_pk::{PublicKey, Signer, VerifyingKey};
use alpha_wire::{Body, Handshake, HandshakeAuth, HandshakeRole, Packet};
use rand::RngCore;

use crate::{Association, Config, ProtocolError};

/// What the local side demands of the peer's handshake authentication.
#[derive(Clone, Copy)]
pub enum AuthRequirement<'a> {
    /// Accept unauthenticated handshakes (ephemeral anonymous identities).
    None,
    /// Require a valid signature under *some* key and surface that key to
    /// the caller (trust-on-first-use pinning).
    AnyKey,
    /// Require a valid signature under exactly this key.
    Pinned(&'a PublicKey),
}

/// Initiator-side state between sending HS1 and receiving HS2.
pub struct Handshaker {
    cfg: Config,
    assoc_id: u64,
    sig_chain: HashChain,
    ack_chain: HashChain,
}

/// Begin a handshake: generates the local chains and the HS1 packet.
/// Passing a [`Signer`] upgrades to a protected handshake.
pub fn initiate(
    cfg: Config,
    assoc_id: u64,
    auth: Option<&dyn Signer>,
    rng: &mut dyn RngCore,
) -> (Handshaker, Packet) {
    let (sig_chain, ack_chain) = make_chains(&cfg, rng);
    let packet = handshake_packet(
        &cfg,
        assoc_id,
        HandshakeRole::Init,
        &sig_chain,
        &ack_chain,
        auth,
        rng,
    );
    (
        Handshaker {
            cfg,
            assoc_id,
            sig_chain,
            ack_chain,
        },
        packet,
    )
}

/// Responder side: process HS1, emit HS2, and stand up the association.
/// Returns the peer's key when the handshake was authenticated.
pub fn respond(
    cfg: Config,
    init: &Packet,
    auth: Option<&dyn Signer>,
    require: AuthRequirement<'_>,
    rng: &mut dyn RngCore,
) -> Result<(Association, Packet, Option<PublicKey>), ProtocolError> {
    let Body::Handshake(hs) = &init.body else {
        return Err(ProtocolError::BadHandshake);
    };
    if hs.role != HandshakeRole::Init || init.alg != cfg.algorithm {
        return Err(ProtocolError::BadHandshake);
    }
    let peer_key = check_auth(init.assoc_id, hs, require)?;
    let (sig_chain, ack_chain) = make_chains(&cfg, rng);
    let reply = handshake_packet(
        &cfg,
        init.assoc_id,
        HandshakeRole::Reply,
        &sig_chain,
        &ack_chain,
        auth,
        rng,
    );
    let assoc = Association::from_chains(
        cfg,
        init.assoc_id,
        sig_chain,
        ack_chain,
        (hs.sig_anchor, hs.sig_anchor_index),
        (hs.ack_anchor, hs.ack_anchor_index),
    );
    Ok((assoc, reply, peer_key))
}

impl Handshaker {
    /// The association id this handshake negotiates.
    #[must_use]
    pub fn assoc_id(&self) -> u64 {
        self.assoc_id
    }

    /// Initiator side: process the HS2 reply and stand up the association.
    pub fn complete(
        self,
        reply: &Packet,
        require: AuthRequirement<'_>,
    ) -> Result<(Association, Option<PublicKey>), ProtocolError> {
        let Body::Handshake(hs) = &reply.body else {
            return Err(ProtocolError::BadHandshake);
        };
        if hs.role != HandshakeRole::Reply
            || reply.assoc_id != self.assoc_id
            || reply.alg != self.cfg.algorithm
        {
            return Err(ProtocolError::BadHandshake);
        }
        let peer_key = check_auth(reply.assoc_id, hs, require)?;
        let assoc = Association::from_chains(
            self.cfg,
            self.assoc_id,
            self.sig_chain,
            self.ack_chain,
            (hs.sig_anchor, hs.sig_anchor_index),
            (hs.ack_anchor, hs.ack_anchor_index),
        );
        Ok((assoc, peer_key))
    }
}

fn make_chains(cfg: &Config, rng: &mut dyn RngCore) -> (HashChain, HashChain) {
    match cfg.chain_storage {
        // Full storage generates both chains in lockstep so every
        // derivation step hashes the signature and ack lanes together.
        crate::ChainStorage::Full => {
            let mut sig_seed = [0u8; 32];
            let mut ack_seed = [0u8; 32];
            rng.fill_bytes(&mut sig_seed);
            rng.fill_bytes(&mut ack_seed);
            let mut chains = HashChain::from_seeds_batch(
                cfg.algorithm,
                cfg.chain_len,
                &[
                    (ChainKind::RoleBoundSignature, &sig_seed),
                    (ChainKind::RoleBoundAck, &ack_seed),
                ],
            );
            let ack = chains.pop().expect("two chains requested");
            let sig = chains.pop().expect("two chains requested");
            (sig, ack)
        }
        crate::ChainStorage::Sqrt => (
            HashChain::generate_compact(
                cfg.algorithm,
                ChainKind::RoleBoundSignature,
                cfg.chain_len,
                rng,
            ),
            HashChain::generate_compact(cfg.algorithm, ChainKind::RoleBoundAck, cfg.chain_len, rng),
        ),
        crate::ChainStorage::Dyadic => (
            HashChain::generate_dyadic(
                cfg.algorithm,
                ChainKind::RoleBoundSignature,
                cfg.chain_len,
                rng,
            ),
            HashChain::generate_dyadic(cfg.algorithm, ChainKind::RoleBoundAck, cfg.chain_len, rng),
        ),
    }
}

fn handshake_packet(
    cfg: &Config,
    assoc_id: u64,
    role: HandshakeRole,
    sig_chain: &HashChain,
    ack_chain: &HashChain,
    auth: Option<&dyn Signer>,
    rng: &mut dyn RngCore,
) -> Packet {
    let mut hs = Handshake {
        role,
        sig_anchor: sig_chain.anchor(),
        sig_anchor_index: sig_chain.anchor_index(),
        ack_anchor: ack_chain.anchor(),
        ack_anchor_index: ack_chain.anchor_index(),
        auth: None,
    };
    if let Some(signer) = auth {
        let msg = hs.signed_bytes(assoc_id);
        let signature = signer.sign(cfg.algorithm, &msg, rng);
        let key = signer.verifying_key();
        hs.auth = Some(HandshakeAuth {
            scheme: key.scheme_tag(),
            public_key: key.to_bytes(),
            signature,
        });
    }
    Packet {
        assoc_id,
        alg: cfg.algorithm,
        chain_index: 0,
        body: Body::Handshake(hs),
    }
}

fn check_auth(
    assoc_id: u64,
    hs: &Handshake,
    require: AuthRequirement<'_>,
) -> Result<Option<PublicKey>, ProtocolError> {
    match require {
        AuthRequirement::None => Ok(None),
        AuthRequirement::AnyKey => {
            let auth = hs.auth.as_ref().ok_or(ProtocolError::BadAuth)?;
            let key = PublicKey::from_bytes(auth.scheme, &auth.public_key)
                .ok_or(ProtocolError::BadAuth)?;
            verify_hs(assoc_id, hs, &key, &auth.signature)?;
            Ok(Some(key))
        }
        AuthRequirement::Pinned(expected) => {
            let auth = hs.auth.as_ref().ok_or(ProtocolError::BadAuth)?;
            let key = PublicKey::from_bytes(auth.scheme, &auth.public_key)
                .ok_or(ProtocolError::BadAuth)?;
            if &key != expected {
                return Err(ProtocolError::BadAuth);
            }
            verify_hs(assoc_id, hs, &key, &auth.signature)?;
            Ok(Some(key))
        }
    }
}

fn verify_hs(
    assoc_id: u64,
    hs: &Handshake,
    key: &PublicKey,
    signature: &[u8],
) -> Result<(), ProtocolError> {
    let msg = hs.signed_bytes(assoc_id);
    // The signature hashes with the association's algorithm; re-derive it
    // from the anchor length (each algorithm has a distinct digest size).
    let alg = match hs.sig_anchor.len() {
        20 => alpha_crypto::Algorithm::Sha1,
        32 => alpha_crypto::Algorithm::Sha256,
        16 => alpha_crypto::Algorithm::MmoAes,
        _ => return Err(ProtocolError::BadAuth),
    };
    if key.verify(alg, &msg, signature) {
        Ok(())
    } else {
        Err(ProtocolError::BadAuth)
    }
}
