//! Freezing an idle association into a compact record and thawing it back.
//!
//! A hibernated flow keeps only what cannot be re-derived: chain cursors
//! and the seed hash (the [`alpha_crypto::chain::FrozenChain`] form — no
//! element vectors, no pebbles), the peer-chain verifier positions, and —
//! when the flow slept mid-bundle — the verifier's buffered exchange(s)
//! including pre-signatures and undisclosed acknowledgment secrets. Thawing
//! rebuilds the full channel state machines; every subsequent packet takes
//! exactly the decisions a never-frozen association would have taken.
//!
//! The signer side must be idle (no exchange outstanding) to freeze: an
//! in-flight S1/S2 burst holds message payloads and Merkle trees whose
//! retransmission timers are about to fire anyway, so the engine simply
//! does not hibernate such a flow. The verifier side freezes mid-bundle —
//! a silent sender must not pin its receiver's full state in memory.
//!
//! Records serialize to a private, versioned byte layout via
//! [`FrozenAssociation::encode`]; [`FrozenAssociation::decode`] is total
//! (returns `None` on any malformed input) so a corrupt record can never
//! panic the engine.

use alpha_crypto::chain::{ChainKind, FrozenChain, StorageKind};
use alpha_crypto::preack::{PreAckPair, SECRET_LEN};
use alpha_crypto::{Algorithm, Digest};
use alpha_wire::{Packet, TreeDescriptor};

use crate::Timestamp;

/// Frozen form of a [`crate::SignerChannel`] (idle channels only).
pub struct FrozenSigner {
    pub(crate) chain: FrozenChain,
    pub(crate) peer_ack_index: u64,
    pub(crate) peer_ack_last: Digest,
    /// The adaptively tuned RTO survives hibernation: the path estimate is
    /// better than the configured constant even after a long sleep.
    pub(crate) rto_micros: u64,
}

/// Frozen form of a buffered pre-signature.
pub(crate) enum FrozenPresig {
    Macs(Vec<Digest>),
    Root {
        root: Digest,
        leaves: u32,
    },
    Forest {
        trees: Vec<TreeDescriptor>,
        leaves_per_tree: u32,
    },
}

/// Frozen acknowledgment state: the verifier's undisclosed verdict
/// commitments. AMTs freeze as their leaf secrets alone — the tree is
/// rebuilt deterministically on thaw.
pub(crate) enum FrozenAck {
    None,
    Flat {
        pair: PreAckPair,
        secrets: [u8; 2 * SECRET_LEN],
        verdict_sent: bool,
    },
    Amt(Vec<[u8; SECRET_LEN]>),
}

/// Frozen form of one buffered verifier exchange (a flow asleep
/// mid-bundle).
pub(crate) struct FrozenExchange {
    pub(crate) s1_index: u64,
    pub(crate) announce: Digest,
    pub(crate) presig: FrozenPresig,
    pub(crate) a1: Packet,
    pub(crate) ack_key_index: u64,
    pub(crate) ack_key: Digest,
    pub(crate) ack: FrozenAck,
    pub(crate) received: Vec<bool>,
    pub(crate) created_at: Timestamp,
    pub(crate) first_s2_at: Option<Timestamp>,
    pub(crate) last_nack_at: Timestamp,
}

/// Frozen form of a [`crate::VerifierChannel`].
pub struct FrozenVerifier {
    pub(crate) ack_chain: FrozenChain,
    pub(crate) peer_sig_index: u64,
    pub(crate) peer_sig_last: Digest,
    pub(crate) accepting: bool,
    pub(crate) current: Option<FrozenExchange>,
    pub(crate) previous: Option<FrozenExchange>,
}

/// A whole association, frozen. Build with [`crate::Association::freeze`],
/// revive with [`crate::Association::thaw`].
pub struct FrozenAssociation {
    pub(crate) assoc_id: u64,
    pub(crate) alg: Algorithm,
    pub(crate) signer: FrozenSigner,
    pub(crate) verifier: FrozenVerifier,
}

/// Byte-layout version tag; bump on any layout change.
const VERSION: u8 = 1;

impl FrozenAssociation {
    /// Association identifier of the frozen flow.
    #[must_use]
    pub fn assoc_id(&self) -> u64 {
        self.assoc_id
    }

    /// Hash algorithm the flow runs on.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.alg
    }

    /// Serialize to the compact record held by the hibernation store.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.u8(VERSION);
        w.u8(alg_code(self.alg));
        w.u64(self.assoc_id);
        encode_chain(&mut w, &self.signer.chain);
        w.u64(self.signer.peer_ack_index);
        w.digest(&self.signer.peer_ack_last);
        w.u64(self.signer.rto_micros);
        encode_chain(&mut w, &self.verifier.ack_chain);
        w.u64(self.verifier.peer_sig_index);
        w.digest(&self.verifier.peer_sig_last);
        w.u8(u8::from(self.verifier.accepting));
        encode_opt_exchange(&mut w, self.verifier.current.as_ref());
        encode_opt_exchange(&mut w, self.verifier.previous.as_ref());
        w.buf
    }

    /// Parse a record produced by [`FrozenAssociation::encode`]. Returns
    /// `None` on any structural problem — truncation, bad tags, trailing
    /// bytes — rather than panicking.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<FrozenAssociation> {
        let mut r = Reader::new(bytes);
        if r.u8()? != VERSION {
            return None;
        }
        let alg = alg_from_code(r.u8()?)?;
        let assoc_id = r.u64()?;
        let chain = decode_chain(&mut r, alg, ChainKind::RoleBoundSignature)?;
        let peer_ack_index = r.u64()?;
        let peer_ack_last = r.digest(alg)?;
        let rto_micros = r.u64()?;
        let signer = FrozenSigner {
            chain,
            peer_ack_index,
            peer_ack_last,
            rto_micros,
        };
        let ack_chain = decode_chain(&mut r, alg, ChainKind::RoleBoundAck)?;
        let peer_sig_index = r.u64()?;
        let peer_sig_last = r.digest(alg)?;
        let accepting = r.u8()? != 0;
        let current = decode_opt_exchange(&mut r, alg)?;
        let previous = decode_opt_exchange(&mut r, alg)?;
        if !r.done() {
            return None;
        }
        Some(FrozenAssociation {
            assoc_id,
            alg,
            signer,
            verifier: FrozenVerifier {
                ack_chain,
                peer_sig_index,
                peer_sig_last,
                accepting,
                current,
                previous,
            },
        })
    }
}

fn alg_code(alg: Algorithm) -> u8 {
    match alg {
        Algorithm::Sha1 => 0,
        Algorithm::Sha256 => 1,
        Algorithm::MmoAes => 2,
    }
}

fn alg_from_code(code: u8) -> Option<Algorithm> {
    match code {
        0 => Some(Algorithm::Sha1),
        1 => Some(Algorithm::Sha256),
        2 => Some(Algorithm::MmoAes),
        _ => None,
    }
}

fn storage_code(kind: StorageKind) -> u8 {
    match kind {
        StorageKind::Full => 0,
        StorageKind::Compact => 1,
        StorageKind::Dyadic => 2,
    }
}

fn storage_from_code(code: u8) -> Option<StorageKind> {
    match code {
        0 => Some(StorageKind::Full),
        1 => Some(StorageKind::Compact),
        2 => Some(StorageKind::Dyadic),
        _ => None,
    }
}

fn encode_chain(w: &mut Writer, c: &FrozenChain) {
    w.u8(storage_code(c.storage));
    w.u64(c.len);
    w.u64(c.next);
    w.digest(&c.seed_hash);
}

fn decode_chain(r: &mut Reader<'_>, alg: Algorithm, kind: ChainKind) -> Option<FrozenChain> {
    let storage = storage_from_code(r.u8()?)?;
    let len = r.u64()?;
    let next = r.u64()?;
    // A hostile record must not drive the O(len) thaw loop arbitrarily
    // far: cap at the longest chain the engine ever builds.
    if len < 2 || len % 2 != 0 || len > 1 << 24 || next >= len {
        return None;
    }
    let seed_hash = r.digest(alg)?;
    Some(FrozenChain {
        alg,
        kind,
        storage,
        len,
        next,
        seed_hash,
    })
}

fn encode_opt_exchange(w: &mut Writer, ex: Option<&FrozenExchange>) {
    let Some(ex) = ex else {
        w.u8(0);
        return;
    };
    w.u8(1);
    w.u64(ex.s1_index);
    w.digest(&ex.announce);
    match &ex.presig {
        FrozenPresig::Macs(macs) => {
            w.u8(0);
            w.u32(macs.len() as u32);
            for m in macs {
                w.digest(m);
            }
        }
        FrozenPresig::Root { root, leaves } => {
            w.u8(1);
            w.digest(root);
            w.u32(*leaves);
        }
        FrozenPresig::Forest {
            trees,
            leaves_per_tree,
        } => {
            w.u8(2);
            w.u32(trees.len() as u32);
            for t in trees {
                w.digest(&t.root);
                w.u32(t.leaves);
            }
            w.u32(*leaves_per_tree);
        }
    }
    let mut a1 = Vec::new();
    ex.a1.encode_into(&mut a1);
    w.u32(a1.len() as u32);
    w.bytes(&a1);
    w.u64(ex.ack_key_index);
    w.digest(&ex.ack_key);
    match &ex.ack {
        FrozenAck::None => w.u8(0),
        FrozenAck::Flat {
            pair,
            secrets,
            verdict_sent,
        } => {
            w.u8(1);
            w.digest(&pair.pre_ack);
            w.digest(&pair.pre_nack);
            w.bytes(secrets);
            w.u8(u8::from(*verdict_sent));
        }
        FrozenAck::Amt(secrets) => {
            w.u8(2);
            w.u32(secrets.len() as u32);
            for s in secrets {
                w.bytes(s);
            }
        }
    }
    w.u32(ex.received.len() as u32);
    let mut bits = vec![0u8; ex.received.len().div_ceil(8)];
    for (i, &got) in ex.received.iter().enumerate() {
        if got {
            bits[i / 8] |= 1 << (i % 8);
        }
    }
    w.bytes(&bits);
    w.u64(ex.created_at.micros());
    match ex.first_s2_at {
        None => w.u8(0),
        Some(t) => {
            w.u8(1);
            w.u64(t.micros());
        }
    }
    w.u64(ex.last_nack_at.micros());
}

fn decode_opt_exchange(r: &mut Reader<'_>, alg: Algorithm) -> Option<Option<FrozenExchange>> {
    match r.u8()? {
        0 => return Some(None),
        1 => {}
        _ => return None,
    }
    let s1_index = r.u64()?;
    let announce = r.digest(alg)?;
    let presig = match r.u8()? {
        0 => {
            let n = r.u32()? as usize;
            if n > alpha_wire::limits::MAX_LEAVES as usize {
                return None;
            }
            let mut macs = Vec::with_capacity(n);
            for _ in 0..n {
                macs.push(r.digest(alg)?);
            }
            FrozenPresig::Macs(macs)
        }
        1 => {
            let root = r.digest(alg)?;
            let leaves = r.u32()?;
            FrozenPresig::Root { root, leaves }
        }
        2 => {
            let n = r.u32()? as usize;
            if n > alpha_wire::limits::MAX_PRESIGS {
                return None;
            }
            let mut trees = Vec::with_capacity(n);
            for _ in 0..n {
                let root = r.digest(alg)?;
                let leaves = r.u32()?;
                trees.push(TreeDescriptor { root, leaves });
            }
            let leaves_per_tree = r.u32()?;
            if leaves_per_tree == 0 {
                return None;
            }
            FrozenPresig::Forest {
                trees,
                leaves_per_tree,
            }
        }
        _ => return None,
    };
    let a1_len = r.u32()? as usize;
    let a1 = Packet::parse(r.take(a1_len)?).ok()?;
    let ack_key_index = r.u64()?;
    let ack_key = r.digest(alg)?;
    let ack = match r.u8()? {
        0 => FrozenAck::None,
        1 => {
            let pre_ack = r.digest(alg)?;
            let pre_nack = r.digest(alg)?;
            let mut secrets = [0u8; 2 * SECRET_LEN];
            secrets.copy_from_slice(r.take(2 * SECRET_LEN)?);
            let verdict_sent = r.u8()? != 0;
            FrozenAck::Flat {
                pair: PreAckPair { pre_ack, pre_nack },
                secrets,
                verdict_sent,
            }
        }
        2 => {
            let n = r.u32()? as usize;
            if n == 0 || !n.is_multiple_of(2) || n > 2 * alpha_wire::limits::MAX_LEAVES as usize {
                return None;
            }
            let mut secrets = Vec::with_capacity(n);
            for _ in 0..n {
                let mut s = [0u8; SECRET_LEN];
                s.copy_from_slice(r.take(SECRET_LEN)?);
                secrets.push(s);
            }
            FrozenAck::Amt(secrets)
        }
        _ => return None,
    };
    let covered = r.u32()? as usize;
    if covered == 0 || covered > alpha_wire::limits::MAX_LEAVES as usize {
        return None;
    }
    let bits = r.take(covered.div_ceil(8))?;
    let received = (0..covered)
        .map(|i| bits[i / 8] & (1 << (i % 8)) != 0)
        .collect();
    let created_at = Timestamp::from_micros(r.u64()?);
    let first_s2_at = match r.u8()? {
        0 => None,
        1 => Some(Timestamp::from_micros(r.u64()?)),
        _ => return None,
    };
    let last_nack_at = Timestamp::from_micros(r.u64()?);
    Some(Some(FrozenExchange {
        s1_index,
        announce,
        presig,
        a1,
        ack_key_index,
        ack_key,
        ack,
        received,
        created_at,
        first_s2_at,
        last_nack_at,
    }))
}

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
    fn digest(&mut self, d: &Digest) {
        self.buf.extend_from_slice(d.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }
    fn digest(&mut self, alg: Algorithm) -> Option<Digest> {
        self.take(alg.digest_len()).map(Digest::from_slice)
    }
    fn done(&self) -> bool {
        self.buf.is_empty()
    }
}
