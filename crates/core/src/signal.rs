//! In-band control signalling interpreted by peers *and* relays.
//!
//! The paper's introduction motivates ALPHA with exactly this: "forgery
//! detection and data extraction form the basis for more complex services,
//! such as rate and resource allocation within the network controlled by
//! end-hosts but enforced by intermediate nodes." This module defines a
//! small, typed vocabulary of such control messages. They ride inside
//! ordinary ALPHA-protected payloads, so a relay that verifies traffic in
//! transit can *act* on them with the same assurance the endpoint has:
//!
//! - [`Signal::LocatorUpdate`] — mobility signalling (the HIP use-case of
//!   §4.1.1): middleboxes re-pin flow state to the new locator.
//! - [`Signal::RateLimit`] — the receiving host caps the data rate it is
//!   willing to accept; relays enforce the cap *upstream*, so excess
//!   traffic dies before it wastes network resources (§3.5's philosophy
//!   extended from "unsolicited" to "over-budget").
//! - [`Signal::Close`] — association teardown: relays free their
//!   per-association state immediately instead of waiting for timeouts.
//!
//! Like chain renewals, signals are recognized by
//! [`crate::Relay::observe`] (enforcement) and surfaced to endpoint
//! applications via `Response::signals`.

/// Marker prefix distinguishing signal payloads from application data.
pub const MAGIC: &[u8; 10] = b"ALPHA-SIG\x01";

/// A verified in-band control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Signal {
    /// The sender moved; `locator` is its new address in
    /// application-defined encoding (e.g. "192.0.2.7:4500").
    LocatorUpdate {
        /// New locator bytes (≤ 255 bytes).
        locator: Vec<u8>,
    },
    /// The sender requests that no more than `bytes_per_sec` of verified
    /// S2 payload flow *toward* it per second; ALPHA-aware relays enforce
    /// the cap on the reverse direction.
    RateLimit {
        /// Permitted payload bytes per second (0 = block data entirely).
        bytes_per_sec: u64,
    },
    /// Orderly association teardown.
    Close,
}

impl Signal {
    /// Serialize for transmission as an ALPHA payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(MAGIC);
        match self {
            Signal::LocatorUpdate { locator } => {
                out.push(1);
                out.push(locator.len().min(255) as u8);
                out.extend_from_slice(&locator[..locator.len().min(255)]);
            }
            Signal::RateLimit { bytes_per_sec } => {
                out.push(2);
                out.extend_from_slice(&bytes_per_sec.to_be_bytes());
            }
            Signal::Close => out.push(3),
        }
        out
    }

    /// Parse a verified payload as a signal. `None` for application data
    /// or malformed signals.
    #[must_use]
    pub fn parse(payload: &[u8]) -> Option<Signal> {
        let rest = payload.strip_prefix(MAGIC.as_slice())?;
        let (&tag, rest) = rest.split_first()?;
        match tag {
            1 => {
                let (&len, rest) = rest.split_first()?;
                if rest.len() != len as usize {
                    return None;
                }
                Some(Signal::LocatorUpdate {
                    locator: rest.to_vec(),
                })
            }
            2 => {
                if rest.len() != 8 {
                    return None;
                }
                Some(Signal::RateLimit {
                    bytes_per_sec: u64::from_be_bytes(rest.try_into().ok()?),
                })
            }
            3 => {
                if rest.is_empty() {
                    Some(Signal::Close)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_signals_roundtrip() {
        for sig in [
            Signal::LocatorUpdate {
                locator: b"198.51.100.7:4500".to_vec(),
            },
            Signal::LocatorUpdate {
                locator: Vec::new(),
            },
            Signal::RateLimit {
                bytes_per_sec: 125_000,
            },
            Signal::RateLimit { bytes_per_sec: 0 },
            Signal::Close,
        ] {
            assert_eq!(Signal::parse(&sig.encode()), Some(sig));
        }
    }

    #[test]
    fn application_data_is_not_a_signal() {
        assert!(Signal::parse(b"ordinary payload").is_none());
        assert!(Signal::parse(b"").is_none());
        assert!(Signal::parse(MAGIC).is_none());
    }

    #[test]
    fn malformed_signals_rejected() {
        let mut bytes = Signal::RateLimit { bytes_per_sec: 9 }.encode();
        bytes.pop();
        assert!(Signal::parse(&bytes).is_none());
        let mut bytes = Signal::Close.encode();
        bytes.push(0);
        assert!(Signal::parse(&bytes).is_none());
        let mut bytes = Signal::LocatorUpdate {
            locator: b"x".to_vec(),
        }
        .encode();
        bytes.push(0); // length byte no longer matches
        assert!(Signal::parse(&bytes).is_none());
    }

    #[test]
    fn oversized_locator_truncated_at_encode() {
        let sig = Signal::LocatorUpdate {
            locator: vec![7u8; 300],
        };
        let parsed = Signal::parse(&sig.encode()).unwrap();
        match parsed {
            Signal::LocatorUpdate { locator } => assert_eq!(locator.len(), 255),
            _ => panic!(),
        }
    }
}
