//! The verifying side of one simplex protected channel.
//!
//! Owns the acknowledgment hash chain, authenticates the peer's signature
//! chain, buffers pre-signatures from S1 packets, and checks every S2
//! against them. In reliable mode it commits to verdicts in the A1 packet
//! (flat pre-(n)acks or an AMT) and discloses them in A2 packets.
//!
//! The verifier is also where ALPHA's flooding defence lives: an
//! unwilling receiver simply never answers S1 with A1
//! ([`VerifierChannel::set_accepting`]), and with relays enforcing the
//! missing A1, unsolicited data dies one hop from its source (§3.5).

use alpha_crypto::amt::AckMerkleTree;
use alpha_crypto::chain::{ChainVerifier, HashChain, Role};
use alpha_crypto::preack::{PreAckPair, PreAckSecrets};
use alpha_crypto::{merkle, Digest};
use alpha_wire::{limits, A2Disclosure, AckCommit, Body, Packet, PreSignature};
use rand::RngCore;

use crate::signer::message_mac;
use crate::{Config, ProtocolError, Reliability, Timestamp};

/// Events surfaced to the application by the verifying side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifierEvent {
    /// Message `seq` verified; payload attached.
    Delivered(u32, Vec<u8>),
    /// All messages of the current exchange have been verified.
    BundleComplete,
}

/// What a verifier-side handler produced.
#[derive(Debug, Default)]
pub struct VerifierOutput {
    /// Packets to put on the wire.
    pub packets: Vec<Packet>,
    /// Application events.
    pub events: Vec<VerifierEvent>,
}

enum BufferedPresig {
    Macs(Vec<Digest>),
    Root {
        root: Digest,
        leaves: u32,
    },
    Forest {
        trees: Vec<alpha_wire::TreeDescriptor>,
        leaves_per_tree: usize,
    },
}

enum AckState {
    /// Unreliable: nothing to disclose.
    None,
    /// Flat pre-(n)ack (Base / ALPHA-C reliable).
    Flat {
        pair: PreAckPair,
        secrets: PreAckSecrets,
        verdict_sent: bool,
    },
    /// AMT (ALPHA-M reliable).
    Amt(AckMerkleTree),
}

impl BufferedExchange {
    fn freeze(&self) -> crate::freeze::FrozenExchange {
        use crate::freeze::{FrozenAck, FrozenExchange, FrozenPresig};
        let presig = match &self.presig {
            BufferedPresig::Macs(macs) => FrozenPresig::Macs(macs.clone()),
            BufferedPresig::Root { root, leaves } => FrozenPresig::Root {
                root: *root,
                leaves: *leaves,
            },
            BufferedPresig::Forest {
                trees,
                leaves_per_tree,
            } => FrozenPresig::Forest {
                trees: trees.clone(),
                leaves_per_tree: *leaves_per_tree as u32,
            },
        };
        let ack = match &self.ack {
            AckState::None => FrozenAck::None,
            AckState::Flat {
                pair,
                secrets,
                verdict_sent,
            } => FrozenAck::Flat {
                pair: *pair,
                secrets: secrets.to_bytes(),
                verdict_sent: *verdict_sent,
            },
            // The tree rebuilds deterministically from its leaf secrets, so
            // only the secrets hibernate.
            AckState::Amt(amt) => FrozenAck::Amt(amt.secrets().to_vec()),
        };
        FrozenExchange {
            s1_index: self.s1_index,
            announce: self.announce,
            presig,
            a1: self.a1.clone(),
            ack_key_index: self.ack_key_index,
            ack_key: self.ack_key,
            ack,
            received: self.received.clone(),
            created_at: self.created_at,
            first_s2_at: self.first_s2_at,
            last_nack_at: self.last_nack_at,
        }
    }

    fn thaw(alg: alpha_crypto::Algorithm, fx: &crate::freeze::FrozenExchange) -> BufferedExchange {
        use crate::freeze::{FrozenAck, FrozenPresig};
        let presig = match &fx.presig {
            FrozenPresig::Macs(macs) => BufferedPresig::Macs(macs.clone()),
            FrozenPresig::Root { root, leaves } => BufferedPresig::Root {
                root: *root,
                leaves: *leaves,
            },
            FrozenPresig::Forest {
                trees,
                leaves_per_tree,
            } => BufferedPresig::Forest {
                trees: trees.clone(),
                leaves_per_tree: *leaves_per_tree as usize,
            },
        };
        let ack = match &fx.ack {
            FrozenAck::None => AckState::None,
            FrozenAck::Flat {
                pair,
                secrets,
                verdict_sent,
            } => AckState::Flat {
                pair: *pair,
                secrets: PreAckSecrets::from_bytes(secrets),
                verdict_sent: *verdict_sent,
            },
            FrozenAck::Amt(secrets) => {
                AckState::Amt(AckMerkleTree::from_secrets(alg, secrets.clone()))
            }
        };
        BufferedExchange {
            s1_index: fx.s1_index,
            announce: fx.announce,
            presig,
            a1: fx.a1.clone(),
            ack_key_index: fx.ack_key_index,
            ack_key: fx.ack_key,
            ack,
            received: fx.received.clone(),
            created_at: fx.created_at,
            first_s2_at: fx.first_s2_at,
            last_nack_at: fx.last_nack_at,
        }
    }
}

struct BufferedExchange {
    /// Chain index of the S1's announce element; the MAC key must disclose
    /// at `s1_index − 1`.
    s1_index: u64,
    /// The authenticated announce element: a late S2's key verifies in one
    /// hash via `derive(s1_index, key) == announce`, even after the chain
    /// tracker has moved on to a newer exchange (packet reordering).
    announce: Digest,
    presig: BufferedPresig,
    /// Stored A1 for idempotent replies to duplicate S1s.
    a1: Packet,
    ack_key_index: u64,
    ack_key: Digest,
    ack: AckState,
    received: Vec<bool>,
    created_at: Timestamp,
    /// Set once at least one S2 arrived (the signer is in its burst phase,
    /// so missing sequence numbers indicate loss rather than not-yet-sent).
    first_s2_at: Option<Timestamp>,
    /// Last time timeout-nacks were emitted, to pace them at one RTO.
    last_nack_at: Timestamp,
}

/// The verifier half of a simplex channel.
pub struct VerifierChannel {
    assoc_id: u64,
    cfg: Config,
    ack_chain: HashChain,
    peer_sig: ChainVerifier,
    current: Option<BufferedExchange>,
    /// The most recently superseded exchange: S2 packets that were
    /// overtaken by the next exchange's S1 (reordering on multi-hop
    /// paths) still verify against it.
    previous: Option<BufferedExchange>,
    accepting: bool,
    /// Exchanges expire after this many microseconds without completing.
    exchange_ttl: u64,
}

impl VerifierChannel {
    /// Build from the verifier's own acknowledgment chain and the peer's
    /// signature anchor.
    #[must_use]
    pub fn new(
        assoc_id: u64,
        cfg: Config,
        ack_chain: HashChain,
        peer_sig_anchor: Digest,
        peer_sig_anchor_index: u64,
    ) -> VerifierChannel {
        let peer_sig = ChainVerifier::new(
            cfg.algorithm,
            alpha_crypto::chain::ChainKind::RoleBoundSignature,
            peer_sig_anchor,
            peer_sig_anchor_index,
        )
        .with_max_skip(cfg.max_skip);
        VerifierChannel {
            assoc_id,
            cfg,
            ack_chain,
            peer_sig,
            current: None,
            previous: None,
            accepting: true,
            exchange_ttl: cfg
                .rto_micros
                .saturating_mul(u64::from(cfg.max_retries) + 5),
        }
    }

    /// Declare (un)willingness to receive. While `false`, S1 packets are
    /// silently ignored — the receiver-consent flooding defence of §3.5.
    pub fn set_accepting(&mut self, accepting: bool) {
        self.accepting = accepting;
    }

    /// Whether this channel currently answers S1 packets.
    #[must_use]
    pub fn is_accepting(&self) -> bool {
        self.accepting
    }

    /// Bytes buffered for the current exchange: the verifier's `n·h` of
    /// Table 2 (one MAC per message in Base/ALPHA-C, a single root in
    /// ALPHA-M), plus acknowledgment state (Table 3).
    #[must_use]
    pub fn buffered_bytes(&self) -> usize {
        let h = self.cfg.algorithm.digest_len();
        match &self.current {
            None => 0,
            Some(ex) => {
                let presig = match &ex.presig {
                    BufferedPresig::Macs(m) => m.len() * h,
                    BufferedPresig::Root { .. } => h,
                    BufferedPresig::Forest { trees, .. } => trees.len() * h,
                };
                let ack = match &ex.ack {
                    AckState::None => 0,
                    AckState::Flat { pair, secrets, .. } => {
                        pair.stored_bytes() + secrets.stored_bytes()
                    }
                    AckState::Amt(amt) => amt.stored_bytes(),
                };
                presig + ack
            }
        }
    }

    /// Process an S1 packet. Returns the A1 reply (or nothing while
    /// unwilling to receive).
    pub fn handle_s1(
        &mut self,
        pkt: &Packet,
        now: Timestamp,
        rng: &mut dyn RngCore,
    ) -> Result<VerifierOutput, ProtocolError> {
        self.check_packet(pkt)?;
        let Body::S1 { element, presig } = &pkt.body else {
            return Err(ProtocolError::UnexpectedPacket);
        };
        if !self.accepting {
            return Ok(VerifierOutput::default());
        }
        // Duplicate of the current exchange's S1 (lost A1): replay the A1.
        if let Some(ex) = &self.current {
            if ex.s1_index == pkt.chain_index {
                return Ok(VerifierOutput {
                    packets: vec![ex.a1.clone()],
                    events: Vec::new(),
                });
            }
        }
        let covered = presig.covered();
        if covered == 0 || covered > limits::MAX_LEAVES {
            return Err(ProtocolError::TooManyMessages);
        }
        self.peer_sig
            .accept_role(pkt.chain_index, element, Role::Announce)?;

        let alg = self.cfg.algorithm;
        let presig = match presig {
            PreSignature::Cumulative(macs) => BufferedPresig::Macs(macs.clone()),
            PreSignature::MerkleRoot { root, leaves } => BufferedPresig::Root {
                root: *root,
                leaves: *leaves,
            },
            PreSignature::MerkleForest(trees) => {
                // Every tree but the last must be the same size so global
                // sequence numbers map unambiguously to (tree, leaf).
                let lpt = trees[0].leaves as usize;
                let full = &trees[..trees.len() - 1];
                if lpt == 0 || full.iter().any(|t| t.leaves as usize != lpt) {
                    return Err(ProtocolError::UnexpectedPacket);
                }
                if trees[trees.len() - 1].leaves as usize > lpt {
                    return Err(ProtocolError::UnexpectedPacket);
                }
                BufferedPresig::Forest {
                    trees: trees.clone(),
                    leaves_per_tree: lpt,
                }
            }
        };
        let ((a_index, a_element), (ack_key_index, ack_key)) = self
            .ack_chain
            .disclose_pair()
            .map_err(|_| ProtocolError::ChainExhausted)?;

        let (ack, commit) = if self.cfg.reliability == Reliability::Reliable {
            match &presig {
                BufferedPresig::Macs(_) => {
                    let (pair, secrets) = alpha_crypto::preack::generate(alg, &ack_key, rng);
                    (
                        AckState::Flat {
                            pair,
                            secrets,
                            verdict_sent: false,
                        },
                        AckCommit::Flat {
                            pre_ack: pair.pre_ack,
                            pre_nack: pair.pre_nack,
                        },
                    )
                }
                BufferedPresig::Root { .. } | BufferedPresig::Forest { .. } => {
                    let amt = AckMerkleTree::generate(alg, covered as usize, rng);
                    let root = amt.keyed_root(&ack_key);
                    (
                        AckState::Amt(amt),
                        AckCommit::Amt {
                            root,
                            leaves: covered,
                        },
                    )
                }
            }
        } else {
            (AckState::None, AckCommit::None)
        };

        let a1 = Packet {
            assoc_id: self.assoc_id,
            alg,
            chain_index: a_index,
            body: Body::A1 {
                element: a_element,
                commit,
            },
        };
        self.previous = self.current.take();
        self.current = Some(BufferedExchange {
            s1_index: pkt.chain_index,
            announce: *element,
            presig,
            a1: a1.clone(),
            ack_key_index,
            ack_key,
            ack,
            received: vec![false; covered as usize],
            created_at: now,
            first_s2_at: None,
            last_nack_at: Timestamp::ZERO,
        });
        Ok(VerifierOutput {
            packets: vec![a1],
            events: Vec::new(),
        })
    }

    /// Process an S2 packet: authenticate the disclosed key, check the
    /// message against the buffered pre-signature, deliver the payload and
    /// (in reliable mode) disclose a verdict.
    pub fn handle_s2(
        &mut self,
        pkt: &Packet,
        now: Timestamp,
    ) -> Result<VerifierOutput, ProtocolError> {
        let Body::S2 {
            key,
            seq,
            path,
            payload,
        } = &pkt.body
        else {
            return Err(ProtocolError::UnexpectedPacket);
        };
        self.handle_s2_fields(
            pkt.assoc_id,
            pkt.alg,
            pkt.chain_index,
            key,
            *seq,
            path,
            payload,
            now,
        )
    }

    /// Field-level S2 processing shared by the owned-packet path and the
    /// zero-copy [`alpha_wire::PacketView`] path: the key, authentication
    /// path and payload arrive as borrowed slices and the payload is
    /// copied exactly once, on first-time delivery.
    #[allow(clippy::too_many_arguments)] // one call site per decode path
    pub fn handle_s2_fields(
        &mut self,
        assoc_id: u64,
        alg: alpha_crypto::Algorithm,
        chain_index: u64,
        key: &Digest,
        seq: u32,
        path: &[Digest],
        payload: &[u8],
        now: Timestamp,
    ) -> Result<VerifierOutput, ProtocolError> {
        if assoc_id != self.assoc_id {
            return Err(ProtocolError::WrongAssociation);
        }
        if alg != self.cfg.algorithm {
            return Err(ProtocolError::WrongAlgorithm);
        }
        let in_current = self
            .current
            .as_ref()
            .is_some_and(|ex| chain_index == ex.s1_index - 1);
        let in_previous = !in_current
            && self
                .previous
                .as_ref()
                .is_some_and(|ex| chain_index == ex.s1_index - 1);
        if !in_current && !in_previous {
            return Err(ProtocolError::NoExchange);
        }
        // Allowlist: `in_current`/`in_previous` just verified the
        // corresponding exchange is populated.
        let ex = if in_current {
            self.current.as_mut().expect("checked")
        } else {
            self.previous.as_mut().expect("checked")
        };
        if seq as usize >= ex.received.len() {
            return Err(ProtocolError::BadSeq);
        }
        // Authenticate the disclosed MAC key. For the current exchange the
        // first S2 advances the chain tracker; for a superseded exchange
        // (its announce already authenticated, the tracker moved on) one
        // forward derivation links the key to the stored announce element.
        if in_current {
            let (last_index, last) = self.peer_sig.last();
            if chain_index == last_index {
                if !alpha_crypto::ct_eq(key.as_bytes(), last.as_bytes()) {
                    return Err(ProtocolError::Chain(
                        alpha_crypto::chain::ChainError::Mismatch,
                    ));
                }
            } else {
                self.peer_sig
                    .accept_role(chain_index, key, Role::Disclose)?;
            }
        } else {
            let derived = alpha_crypto::chain::derive(
                alg,
                alpha_crypto::chain::ChainKind::RoleBoundSignature,
                ex.s1_index,
                key,
            );
            if !alpha_crypto::ct_eq(derived.as_bytes(), ex.announce.as_bytes()) {
                return Err(ProtocolError::Chain(
                    alpha_crypto::chain::ChainError::Mismatch,
                ));
            }
        }

        // Verify the message against the buffered pre-signature.
        let valid = match &ex.presig {
            BufferedPresig::Macs(macs) => {
                let mac = message_mac(alg, self.cfg.mac_scheme, key, seq, payload);
                alpha_crypto::ct_eq(mac.as_bytes(), macs[seq as usize].as_bytes())
            }
            BufferedPresig::Root { root, leaves } => {
                let expected_depth = merkle::log2_ceil(u64::from(*leaves).max(1)) as usize;
                path.len() == expected_depth
                    && merkle::verify_keyed(alg, key, &alg.hash(payload), seq as usize, path, root)
            }
            BufferedPresig::Forest {
                trees,
                leaves_per_tree,
            } => {
                let t = seq as usize / leaves_per_tree;
                let j = seq as usize % leaves_per_tree;
                let tree = &trees[t];
                let expected_depth = merkle::log2_ceil(u64::from(tree.leaves).max(1)) as usize;
                j < tree.leaves as usize
                    && path.len() == expected_depth
                    && merkle::verify_keyed(alg, key, &alg.hash(payload), j, path, &tree.root)
            }
        };

        let mut out = VerifierOutput::default();
        if !valid {
            // Reliable mode: disclose a nack so the signer retransmits
            // without waiting for its timer; unreliable mode: drop.
            if let Some(a2) = self.make_verdict(in_current, seq, false) {
                out.packets.push(a2);
                return Ok(out);
            }
            return Err(ProtocolError::BadMac);
        }

        // Allowlist: the exchange matched above cannot have been released
        // by the verdict construction.
        let ex = if in_current {
            self.current.as_mut().expect("still current")
        } else {
            self.previous.as_mut().expect("still previous")
        };
        if ex.first_s2_at.is_none() {
            ex.first_s2_at = Some(now);
        }
        let first_time = !ex.received[seq as usize];
        ex.received[seq as usize] = true;
        if first_time {
            // The only payload copy on the delivery path.
            out.events
                .push(VerifierEvent::Delivered(seq, payload.to_vec()));
        }
        let complete = ex.received.iter().all(|&r| r);
        if complete && first_time {
            out.events.push(VerifierEvent::BundleComplete);
        }
        if let Some(a2) = self.make_verdict(in_current, seq, true) {
            out.packets.push(a2);
        }
        Ok(out)
    }

    /// Replace this channel's acknowledgment chain (chain renewal).
    pub fn install_chain(&mut self, ack_chain: HashChain) {
        self.ack_chain = ack_chain;
    }

    /// Re-anchor the peer's signature chain (the peer renewed). Clears any
    /// buffered exchange: subsequent S1 packets use the new chain.
    pub fn replace_peer_sig(&mut self, anchor: Digest, anchor_index: u64) {
        self.peer_sig = ChainVerifier::new(
            self.cfg.algorithm,
            alpha_crypto::chain::ChainKind::RoleBoundSignature,
            anchor,
            anchor_index,
        )
        .with_max_skip(self.cfg.max_skip);
        self.current = None;
        self.previous = None;
    }

    /// Freeze this channel for hibernation. Unlike the signer side this
    /// always succeeds: buffered exchanges (a flow asleep mid-bundle)
    /// serialize in full, so a late S2 after thaw verifies exactly as it
    /// would have against the live channel.
    pub(crate) fn freeze(&self) -> crate::freeze::FrozenVerifier {
        let (peer_sig_index, peer_sig_last) = self.peer_sig.last();
        crate::freeze::FrozenVerifier {
            ack_chain: self.ack_chain.freeze(),
            peer_sig_index,
            peer_sig_last,
            accepting: self.accepting,
            current: self.current.as_ref().map(BufferedExchange::freeze),
            previous: self.previous.as_ref().map(BufferedExchange::freeze),
        }
    }

    /// Rebuild a channel from its frozen record. `ack_chain` is the
    /// already-rehydrated acknowledgment chain — the association thaws
    /// both of its chains in one lane-parallel pass before standing the
    /// channels up.
    pub(crate) fn thaw(
        assoc_id: u64,
        cfg: Config,
        frozen: &crate::freeze::FrozenVerifier,
        ack_chain: HashChain,
    ) -> VerifierChannel {
        let mut ch = VerifierChannel::new(
            assoc_id,
            cfg,
            ack_chain,
            frozen.peer_sig_last,
            frozen.peer_sig_index,
        );
        ch.accepting = frozen.accepting;
        ch.current = frozen
            .current
            .as_ref()
            .map(|fx| BufferedExchange::thaw(cfg.algorithm, fx));
        ch.previous = frozen
            .previous
            .as_ref()
            .map(|fx| BufferedExchange::thaw(cfg.algorithm, fx));
        ch
    }

    /// Expire a stale exchange, and — in reliable AMT mode — proactively
    /// nack sequence numbers still missing one RTO after the burst began,
    /// so the signer repairs loss without waiting out its own timer.
    /// Returns nack packets to transmit.
    pub fn poll(&mut self, now: Timestamp) -> Vec<Packet> {
        if let Some(ex) = &self.current {
            if now.since(ex.created_at) > self.exchange_ttl {
                self.current = None;
            }
        }
        if let Some(ex) = &self.previous {
            if now.since(ex.created_at) > self.exchange_ttl {
                self.previous = None;
            }
        }
        let rto = self.cfg.rto_micros;
        let missing: Vec<u32> = match &self.current {
            Some(ex)
                if matches!(ex.ack, AckState::Amt(_))
                    && ex.first_s2_at.is_some_and(|t| now.since(t) >= rto)
                    && now.since(ex.last_nack_at) >= rto
                    && ex.received.iter().any(|r| !r) =>
            {
                ex.received
                    .iter()
                    .enumerate()
                    .filter(|(_, &r)| !r)
                    .map(|(i, _)| i as u32)
                    .collect()
            }
            _ => return Vec::new(),
        };
        // Allowlist: `missing` is only non-empty when the match above saw
        // `Some(ex)` with an AMT ack state, and nothing in between mutates
        // `self.current`.
        let ex = self.current.as_mut().expect("matched above");
        ex.last_nack_at = now;
        let AckState::Amt(amt) = &ex.ack else {
            unreachable!("matched above")
        };
        let items: Vec<_> = missing
            .iter()
            .map(|&seq| amt.disclose(seq as usize, false))
            .collect();
        vec![Packet {
            assoc_id: self.assoc_id,
            alg: self.cfg.algorithm,
            chain_index: ex.ack_key_index,
            body: Body::A2 {
                element: ex.ack_key,
                disclosure: A2Disclosure::Amt(items),
            },
        }]
    }

    /// Construct the verdict A2 for `seq` if the mode calls for one.
    ///
    /// Flat mode sends a single ack once the whole bundle has verified (or
    /// a nack at the first failure); AMT mode acknowledges every packet
    /// individually (selective acknowledgment).
    fn make_verdict(&mut self, in_current: bool, seq: u32, ok: bool) -> Option<Packet> {
        let ex = if in_current {
            self.current.as_mut()?
        } else {
            self.previous.as_mut()?
        };
        let (disclosure, key_index, key) = match &mut ex.ack {
            AckState::None => return None,
            AckState::Flat {
                pair: _,
                secrets,
                verdict_sent,
            } => {
                if ok {
                    let all = ex.received.iter().all(|&r| r);
                    if !all {
                        return None;
                    }
                    *verdict_sent = true;
                } else if *verdict_sent {
                    return None;
                }
                let d = alpha_crypto::preack::disclose(secrets, ok);
                (
                    A2Disclosure::Flat {
                        ack: d.ack,
                        secret: d.secret,
                    },
                    ex.ack_key_index,
                    ex.ack_key,
                )
            }
            AckState::Amt(amt) => {
                let d = amt.disclose(seq as usize, ok);
                (A2Disclosure::Amt(vec![d]), ex.ack_key_index, ex.ack_key)
            }
        };
        Some(Packet {
            assoc_id: self.assoc_id,
            alg: self.cfg.algorithm,
            chain_index: key_index,
            body: Body::A2 {
                element: key,
                disclosure,
            },
        })
    }

    fn check_packet(&self, pkt: &Packet) -> Result<(), ProtocolError> {
        if pkt.assoc_id != self.assoc_id {
            return Err(ProtocolError::WrongAssociation);
        }
        if pkt.alg != self.cfg.algorithm {
            return Err(ProtocolError::WrongAlgorithm);
        }
        Ok(())
    }
}
