//! The signing side of one simplex protected channel.
//!
//! Owns the signature hash chain and drives the S1 → (A1) → S2 → (A2)
//! exchange of Figs. 2 and 3. One exchange is outstanding at a time — the
//! paper's S1/A1 phase is strictly sequential (§3.3.1); throughput comes
//! from packing many messages into one exchange (ALPHA-C / ALPHA-M), not
//! from pipelining exchanges.

use alpha_crypto::chain::{ChainVerifier, HashChain, Role};
use alpha_crypto::merkle::MerkleTree;
use alpha_crypto::preack::PreAckPair;
use alpha_crypto::{hmac, Digest};
use alpha_wire::{limits, A2Disclosure, AckCommit, Body, Packet, PreSignature, TreeDescriptor};

use crate::{Config, MacScheme, Mode, ProtocolError, Reliability, Timestamp};

/// Events surfaced to the application by the signing side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignerEvent {
    /// The verifier confirmed receipt of message `seq`.
    Acked(u32),
    /// The verifier reported message `seq` invalid or missing; a
    /// retransmission has been scheduled.
    Nacked(u32),
    /// Every message of the outstanding exchange is confirmed (reliable)
    /// or dispatched (unreliable); the channel is idle again.
    ExchangeComplete,
    /// The exchange was dropped after exhausting retransmissions.
    ExchangeAbandoned,
}

/// What a signer-side handler produced: packets to transmit and events for
/// the application.
#[derive(Debug, Default)]
pub struct SignerOutput {
    /// Packets to put on the wire, in order.
    pub packets: Vec<Packet>,
    /// Application events.
    pub events: Vec<SignerEvent>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExchangeState {
    AwaitA1,
    AwaitA2,
}

enum BufferedCommit {
    Flat(PreAckPair),
    Amt { root: Digest, leaves: u32 },
}

struct Exchange {
    mode: Mode,
    reliability: Reliability,
    key_index: u64,
    key: Digest,
    s1: Packet,
    messages: Vec<Vec<u8>>,
    /// Empty for Base/ALPHA-C; one tree for ALPHA-M; several for the
    /// combined mode. `leaves_per_tree` maps a global sequence number to
    /// `(tree, leaf)`.
    trees: Vec<MerkleTree>,
    leaves_per_tree: usize,
    state: ExchangeState,
    commit: Option<BufferedCommit>,
    acked: Vec<bool>,
    last_tx: Timestamp,
    retries: u32,
}

impl Exchange {
    fn path_for(&self, seq: u32) -> Vec<Digest> {
        if self.trees.is_empty() {
            return Vec::new();
        }
        let t = seq as usize / self.leaves_per_tree;
        let j = seq as usize % self.leaves_per_tree;
        self.trees[t].auth_path(j)
    }
}

/// The signer half of a simplex channel: signs outgoing messages with its
/// own signature chain and authenticates the peer's acknowledgment chain.
pub struct SignerChannel {
    assoc_id: u64,
    cfg: Config,
    chain: HashChain,
    peer_ack: ChainVerifier,
    pending: Option<Exchange>,
}

impl SignerChannel {
    /// Build from the signer's own chain and the peer's acknowledgment
    /// anchor (learned in the bootstrap handshake).
    #[must_use]
    pub fn new(
        assoc_id: u64,
        cfg: Config,
        chain: HashChain,
        peer_ack_anchor: Digest,
        peer_ack_anchor_index: u64,
    ) -> SignerChannel {
        let peer_ack = ChainVerifier::new(
            cfg.algorithm,
            alpha_crypto::chain::ChainKind::RoleBoundAck,
            peer_ack_anchor,
            peer_ack_anchor_index,
        )
        .with_max_skip(cfg.max_skip);
        SignerChannel {
            assoc_id,
            cfg,
            chain,
            peer_ack,
            pending: None,
        }
    }

    /// Association this channel belongs to.
    #[must_use]
    pub fn assoc_id(&self) -> u64 {
        self.assoc_id
    }

    /// True when no exchange is outstanding.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.pending.is_none()
    }

    /// Retune the retransmission timeout at runtime. The hook for the
    /// adaptation plane (`alpha-adapt`): an RFC 6298 estimate measured on
    /// live exchanges replaces the configured constant. Takes effect from
    /// the next (re)transmission; the value is clamped to at least 1 ms
    /// so a bad estimate cannot spin the timer.
    pub fn set_rto_micros(&mut self, rto_micros: u64) {
        self.cfg.rto_micros = rto_micros.max(1_000);
    }

    /// The currently effective retransmission timeout (µs).
    #[must_use]
    pub fn rto_micros(&self) -> u64 {
        self.cfg.rto_micros
    }

    /// Exchange pairs left on the signature chain.
    #[must_use]
    pub fn remaining_exchanges(&self) -> u64 {
        self.chain.remaining_pairs()
    }

    /// Bytes currently buffered for the outstanding exchange: the messages
    /// plus one MAC key — the signer's `n(m+h)` of Table 2 (ALPHA-M holds
    /// the tree too, its `(2n−1)h`).
    #[must_use]
    pub fn buffered_bytes(&self) -> usize {
        let h = self.cfg.algorithm.digest_len();
        match &self.pending {
            None => 0,
            Some(ex) => {
                let msgs: usize = ex.messages.iter().map(Vec::len).sum();
                let tree: usize = ex
                    .trees
                    .iter()
                    .map(|t| (2 * t.leaf_count().next_power_of_two() - 1) * h)
                    .sum();
                let commit = match &ex.commit {
                    Some(BufferedCommit::Flat(p)) => p.stored_bytes(),
                    Some(BufferedCommit::Amt { .. }) => h,
                    None => 0,
                };
                msgs + h + tree + commit
            }
        }
    }

    /// Start a signature exchange over `messages` in `mode`, producing the
    /// S1 packet. `Base` requires exactly one message; `Cumulative` and
    /// `Merkle` accept up to the wire limits.
    pub fn sign(
        &mut self,
        messages: &[&[u8]],
        mode: Mode,
        now: Timestamp,
    ) -> Result<Packet, ProtocolError> {
        if self.pending.is_some() {
            return Err(ProtocolError::ExchangeInProgress);
        }
        if messages.is_empty() {
            return Err(ProtocolError::NoMessages);
        }
        match mode {
            Mode::Base if messages.len() != 1 => return Err(ProtocolError::TooManyMessages),
            Mode::Cumulative if messages.len() > limits::MAX_PRESIGS => {
                return Err(ProtocolError::TooManyMessages)
            }
            Mode::Merkle if messages.len() as u64 > u64::from(limits::MAX_LEAVES) => {
                return Err(ProtocolError::TooManyMessages)
            }
            Mode::CumulativeMerkle { leaves_per_tree }
                if (leaves_per_tree == 0
                    || messages.len() as u64 > u64::from(limits::MAX_LEAVES)
                    || messages.len().div_ceil(leaves_per_tree) > limits::MAX_PRESIGS) =>
            {
                return Err(ProtocolError::TooManyMessages);
            }
            _ => {}
        }
        if messages.iter().any(|m| m.len() > limits::MAX_PAYLOAD) {
            return Err(ProtocolError::PayloadTooLarge);
        }
        if self.chain.remaining_pairs() == 0 {
            return Err(ProtocolError::ChainExhausted);
        }
        let ((announce_index, announce), (key_index, key)) = self
            .chain
            .disclose_pair()
            .map_err(|_| ProtocolError::ChainExhausted)?;
        debug_assert_eq!(alpha_crypto::chain::role_of(announce_index), Role::Announce);

        let alg = self.cfg.algorithm;
        let (presig, trees, leaves_per_tree) = match mode {
            Mode::Base | Mode::Cumulative => {
                let macs = match self.cfg.mac_scheme {
                    MacScheme::Hmac => {
                        // Every MAC of the bundle shares the chain-element
                        // key, so the whole pre-signature hashes in batched
                        // lane sweeps (byte-identical to `message_mac`).
                        let seq_be: Vec<[u8; 4]> = (0..messages.len() as u32)
                            .map(|s| s.to_be_bytes())
                            .collect();
                        let parts: Vec<[&[u8]; 2]> = seq_be
                            .iter()
                            .zip(messages)
                            .map(|(s, m)| [s.as_slice(), *m])
                            .collect();
                        let msgs: Vec<&[&[u8]]> = parts.iter().map(|p| p.as_slice()).collect();
                        let keys: Vec<&[u8]> = vec![key.as_bytes(); messages.len()];
                        let mut macs = vec![Digest::zero(alg); messages.len()];
                        alpha_crypto::backend::mac_parts_batch(alg, &keys, &msgs, &mut macs);
                        macs
                    }
                    MacScheme::Prefix => messages
                        .iter()
                        .enumerate()
                        .map(|(seq, m)| message_mac(alg, MacScheme::Prefix, &key, seq as u32, m))
                        .collect(),
                };
                (PreSignature::Cumulative(macs), Vec::new(), 1)
            }
            Mode::Merkle => {
                let tree = MerkleTree::from_messages(alg, messages);
                let root = tree.keyed_root(&key);
                (
                    PreSignature::MerkleRoot {
                        root,
                        leaves: messages.len() as u32,
                    },
                    vec![tree],
                    messages.len().max(1),
                )
            }
            Mode::CumulativeMerkle { leaves_per_tree } => {
                let trees: Vec<MerkleTree> = messages
                    .chunks(leaves_per_tree)
                    .map(|chunk| MerkleTree::from_messages(alg, chunk))
                    .collect();
                let descriptors = trees
                    .iter()
                    .map(|t| TreeDescriptor {
                        root: t.keyed_root(&key),
                        leaves: t.leaf_count() as u32,
                    })
                    .collect();
                (
                    PreSignature::MerkleForest(descriptors),
                    trees,
                    leaves_per_tree,
                )
            }
        };
        let s1 = Packet {
            assoc_id: self.assoc_id,
            alg,
            chain_index: announce_index,
            body: Body::S1 {
                element: announce,
                presig,
            },
        };
        self.pending = Some(Exchange {
            mode,
            reliability: self.cfg.reliability,
            key_index,
            key,
            s1: s1.clone(),
            messages: messages.iter().map(|m| m.to_vec()).collect(),
            trees,
            leaves_per_tree,
            state: ExchangeState::AwaitA1,
            commit: None,
            acked: vec![false; messages.len()],
            last_tx: now,
            retries: 0,
        });
        Ok(s1)
    }

    /// Process an A1 packet. On success returns the S2 packets for every
    /// message of the exchange.
    pub fn handle_a1(
        &mut self,
        pkt: &Packet,
        now: Timestamp,
    ) -> Result<SignerOutput, ProtocolError> {
        self.check_packet(pkt)?;
        let Body::A1 { element, commit } = &pkt.body else {
            return Err(ProtocolError::UnexpectedPacket);
        };
        let Some(ex) = self.pending.as_mut() else {
            return Err(ProtocolError::NoExchange);
        };
        if ex.state != ExchangeState::AwaitA1 {
            // §3.2.2: after sending S2, further A1 pre-(n)acks are discarded
            // so temporal separation holds.
            return Ok(SignerOutput::default());
        }
        self.peer_ack
            .accept_role(pkt.chain_index, element, Role::Announce)?;

        if ex.reliability == Reliability::Reliable {
            match (ex.mode, commit) {
                (Mode::Base | Mode::Cumulative, AckCommit::Flat { pre_ack, pre_nack }) => {
                    ex.commit = Some(BufferedCommit::Flat(PreAckPair {
                        pre_ack: *pre_ack,
                        pre_nack: *pre_nack,
                    }));
                }
                (Mode::Merkle | Mode::CumulativeMerkle { .. }, AckCommit::Amt { root, leaves }) => {
                    if *leaves as usize != ex.messages.len() {
                        return Err(ProtocolError::UnexpectedPacket);
                    }
                    ex.commit = Some(BufferedCommit::Amt {
                        root: *root,
                        leaves: *leaves,
                    });
                }
                _ => return Err(ProtocolError::UnexpectedPacket),
            }
        }

        let packets = Self::build_s2s(self.assoc_id, &self.cfg, ex, None);
        let mut out = SignerOutput {
            packets,
            events: Vec::new(),
        };
        if ex.reliability == Reliability::Reliable {
            ex.state = ExchangeState::AwaitA2;
            ex.last_tx = now;
            ex.retries = 0;
        } else {
            out.events.push(SignerEvent::ExchangeComplete);
            self.pending = None;
        }
        Ok(out)
    }

    /// Process an A2 packet (reliable mode): per-message verdicts. Nacked
    /// messages are retransmitted immediately.
    pub fn handle_a2(
        &mut self,
        pkt: &Packet,
        now: Timestamp,
    ) -> Result<SignerOutput, ProtocolError> {
        self.check_packet(pkt)?;
        let Body::A2 {
            element,
            disclosure,
        } = &pkt.body
        else {
            return Err(ProtocolError::UnexpectedPacket);
        };
        let Some(ex) = self.pending.as_mut() else {
            return Err(ProtocolError::NoExchange);
        };
        if ex.state != ExchangeState::AwaitA2 {
            return Err(ProtocolError::UnexpectedPacket);
        }
        // Authenticate the disclosed ack-chain element. Repeated A2 packets
        // disclose the same element; compare directly once accepted.
        let (last_index, last) = self.peer_ack.last();
        if pkt.chain_index == last_index {
            if !alpha_crypto::ct_eq(element.as_bytes(), last.as_bytes()) {
                return Err(ProtocolError::Chain(
                    alpha_crypto::chain::ChainError::Mismatch,
                ));
            }
        } else {
            self.peer_ack
                .accept_role(pkt.chain_index, element, Role::Disclose)?;
        }

        let alg = self.cfg.algorithm;
        let mut events = Vec::new();
        let mut retransmit: Vec<u32> = Vec::new();
        match (&ex.commit, disclosure) {
            (Some(BufferedCommit::Flat(pair)), A2Disclosure::Flat { ack, secret }) => {
                let disclosure = alpha_crypto::preack::AckDisclosure {
                    ack: *ack,
                    secret: *secret,
                };
                if !alpha_crypto::preack::verify(alg, element, &disclosure, pair) {
                    return Err(ProtocolError::BadMac);
                }
                if *ack {
                    for (seq, a) in ex.acked.iter_mut().enumerate() {
                        if !*a {
                            *a = true;
                            events.push(SignerEvent::Acked(seq as u32));
                        }
                    }
                } else {
                    for seq in 0..ex.acked.len() as u32 {
                        events.push(SignerEvent::Nacked(seq));
                        retransmit.push(seq);
                    }
                }
            }
            (Some(BufferedCommit::Amt { root, leaves }), A2Disclosure::Amt(items)) => {
                for item in items {
                    let verdict = alpha_crypto::amt::verify_disclosure(
                        alg,
                        element,
                        *leaves as usize,
                        item,
                        root,
                    );
                    match verdict {
                        None => return Err(ProtocolError::BadMac),
                        Some(true) => {
                            let seq = item.packet_index as usize;
                            if !ex.acked[seq] {
                                ex.acked[seq] = true;
                                events.push(SignerEvent::Acked(item.packet_index));
                            }
                        }
                        Some(false) => {
                            events.push(SignerEvent::Nacked(item.packet_index));
                            retransmit.push(item.packet_index);
                        }
                    }
                }
            }
            _ => return Err(ProtocolError::UnexpectedPacket),
        }

        // Forward progress (fresh acks) resets the abandonment counter, so
        // only a genuinely stalled exchange is dropped.
        if events.iter().any(|e| matches!(e, SignerEvent::Acked(_))) {
            ex.retries = 0;
        }
        if self.cfg.retransmit == crate::Retransmit::GoBackN {
            if let Some(&first) = retransmit.iter().min() {
                retransmit = (first..ex.messages.len() as u32)
                    .filter(|&s| !ex.acked[s as usize])
                    .collect();
            }
        }
        let mut packets = Vec::new();
        if !retransmit.is_empty() {
            ex.retries += 1;
            if ex.retries > self.cfg.max_retries {
                events.push(SignerEvent::ExchangeAbandoned);
                self.pending = None;
                return Ok(SignerOutput { packets, events });
            }
            packets = Self::build_s2s(self.assoc_id, &self.cfg, ex, Some(&retransmit));
            ex.last_tx = now;
        }
        if self
            .pending
            .as_ref()
            .is_some_and(|ex| ex.acked.iter().all(|&a| a))
        {
            events.push(SignerEvent::ExchangeComplete);
            self.pending = None;
        }
        Ok(SignerOutput { packets, events })
    }

    /// Replace this channel's signature chain (chain renewal). Fails while
    /// an exchange is outstanding — finish or abandon it first.
    pub fn install_chain(&mut self, chain: HashChain) -> Result<(), ProtocolError> {
        if self.pending.is_some() {
            return Err(ProtocolError::ExchangeInProgress);
        }
        self.chain = chain;
        Ok(())
    }

    /// Re-anchor the peer's acknowledgment chain (the peer renewed).
    pub fn replace_peer_ack(&mut self, anchor: Digest, anchor_index: u64) {
        self.peer_ack = ChainVerifier::new(
            self.cfg.algorithm,
            alpha_crypto::chain::ChainKind::RoleBoundAck,
            anchor,
            anchor_index,
        )
        .with_max_skip(self.cfg.max_skip);
    }

    /// Freeze this channel for hibernation. Only an idle channel freezes:
    /// an outstanding exchange holds payloads and timers that are about to
    /// act, so the caller must wait for (or abandon) it first.
    pub(crate) fn freeze(&self) -> Result<crate::freeze::FrozenSigner, ProtocolError> {
        if self.pending.is_some() {
            return Err(ProtocolError::ExchangeInProgress);
        }
        let (peer_ack_index, peer_ack_last) = self.peer_ack.last();
        Ok(crate::freeze::FrozenSigner {
            chain: self.chain.freeze(),
            peer_ack_index,
            peer_ack_last,
            rto_micros: self.cfg.rto_micros,
        })
    }

    /// Rebuild a channel from its frozen record. `chain` is the
    /// already-rehydrated signature chain — the association thaws both
    /// of its chains in one lane-parallel pass before standing the
    /// channels up.
    pub(crate) fn thaw(
        assoc_id: u64,
        cfg: Config,
        frozen: &crate::freeze::FrozenSigner,
        chain: HashChain,
    ) -> SignerChannel {
        let mut ch = SignerChannel::new(
            assoc_id,
            cfg,
            chain,
            frozen.peer_ack_last,
            frozen.peer_ack_index,
        );
        ch.cfg.rto_micros = frozen.rto_micros;
        ch
    }

    /// Drive retransmission timers. Returns packets to (re)send and any
    /// abandonment event.
    pub fn poll(&mut self, now: Timestamp) -> SignerOutput {
        let mut out = SignerOutput::default();
        let Some(ex) = self.pending.as_mut() else {
            return out;
        };
        if now.since(ex.last_tx) < self.cfg.rto_micros {
            return out;
        }
        if ex.retries >= self.cfg.max_retries {
            out.events.push(SignerEvent::ExchangeAbandoned);
            self.pending = None;
            return out;
        }
        ex.retries += 1;
        ex.last_tx = now;
        match ex.state {
            ExchangeState::AwaitA1 => out.packets.push(ex.s1.clone()),
            ExchangeState::AwaitA2 => {
                let unacked: Vec<u32> = ex
                    .acked
                    .iter()
                    .enumerate()
                    .filter(|(_, &a)| !a)
                    .map(|(i, _)| i as u32)
                    .collect();
                out.packets = Self::build_s2s(self.assoc_id, &self.cfg, ex, Some(&unacked));
            }
        }
        out
    }

    /// Earliest time at which [`SignerChannel::poll`] will act, if any.
    #[must_use]
    pub fn poll_at(&self) -> Option<Timestamp> {
        self.pending
            .as_ref()
            .map(|ex| ex.last_tx.plus_micros(self.cfg.rto_micros))
    }

    fn build_s2s(assoc_id: u64, cfg: &Config, ex: &Exchange, only: Option<&[u32]>) -> Vec<Packet> {
        let seqs: Vec<u32> = match only {
            Some(list) => list.to_vec(),
            None => (0..ex.messages.len() as u32).collect(),
        };
        seqs.into_iter()
            .filter(|&seq| (seq as usize) < ex.messages.len())
            .map(|seq| {
                let path = ex.path_for(seq);
                Packet {
                    assoc_id,
                    alg: cfg.algorithm,
                    chain_index: ex.key_index,
                    body: Body::S2 {
                        key: ex.key,
                        seq,
                        path,
                        payload: ex.messages[seq as usize].clone(),
                    },
                }
            })
            .collect()
    }

    fn check_packet(&self, pkt: &Packet) -> Result<(), ProtocolError> {
        if pkt.assoc_id != self.assoc_id {
            return Err(ProtocolError::WrongAssociation);
        }
        if pkt.alg != self.cfg.algorithm {
            return Err(ProtocolError::WrongAlgorithm);
        }
        Ok(())
    }
}

/// The per-message MAC of the Base/ALPHA-C pre-signature over
/// `(seq || m)`, keyed with the undisclosed chain element `h^Ss_{i-1}`.
/// The sequence number is bound so an attacker cannot re-index S2 packets
/// within a cumulative bundle.
#[must_use]
pub fn message_mac(
    alg: alpha_crypto::Algorithm,
    scheme: MacScheme,
    key: &Digest,
    seq: u32,
    message: &[u8],
) -> Digest {
    match scheme {
        MacScheme::Hmac => hmac::mac_parts(alg, key.as_bytes(), &[&seq.to_be_bytes(), message]),
        MacScheme::Prefix => hmac::prefix_mac(alg, key.as_bytes(), &[&seq.to_be_bytes(), message]),
    }
}
