//! Token-bucket rate limiter for S1 packets.
//!
//! S1 packets are the only thing ALPHA forwards unconditionally, so they
//! are the remaining flooding vector; §3.5 tells relays to "initially
//! limit and later increase the maximum size of S1 packets per sender".
//! This bucket implements exactly that: bytes of S1 per association per
//! second, refilled continuously, with a burst of one second's budget.

use crate::Timestamp;

/// Byte-rate token bucket (None = unlimited).
pub struct S1Limiter {
    rate_per_sec: Option<u64>,
    tokens: u64,
    last_refill: Timestamp,
}

impl S1Limiter {
    /// A bucket allowing `rate_per_sec` S1 bytes per second (burst = one
    /// second's worth), or unlimited when `None`.
    #[must_use]
    pub fn new(rate_per_sec: Option<u64>) -> S1Limiter {
        S1Limiter {
            rate_per_sec,
            tokens: rate_per_sec.unwrap_or(0),
            last_refill: Timestamp::ZERO,
        }
    }

    /// Account an S1 of `bytes` at time `now`; `true` = within budget.
    pub fn allow(&mut self, bytes: u64, now: Timestamp) -> bool {
        let Some(rate) = self.rate_per_sec else {
            return true;
        };
        let elapsed_us = now.since(self.last_refill);
        if elapsed_us > 0 {
            let refill = rate.saturating_mul(elapsed_us) / 1_000_000;
            if refill > 0 {
                self.tokens = (self.tokens + refill).min(rate);
                self.last_refill = now;
            }
        }
        if bytes <= self.tokens {
            self.tokens -= bytes;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_allows() {
        let mut l = S1Limiter::new(None);
        for i in 0..100 {
            assert!(l.allow(u64::MAX / 2, Timestamp::from_micros(i)));
        }
    }

    #[test]
    fn burst_then_blocked() {
        let mut l = S1Limiter::new(Some(1000));
        let t = Timestamp::from_millis(1);
        assert!(l.allow(600, t));
        assert!(l.allow(400, t));
        assert!(!l.allow(1, t)); // bucket empty
    }

    #[test]
    fn refills_over_time() {
        let mut l = S1Limiter::new(Some(1000));
        let t0 = Timestamp::ZERO;
        assert!(l.allow(1000, t0));
        assert!(!l.allow(100, t0));
        // 100 ms later: 100 tokens back.
        let t1 = Timestamp::from_millis(100);
        assert!(l.allow(100, t1));
        assert!(!l.allow(1, t1));
    }

    #[test]
    fn never_exceeds_burst() {
        let mut l = S1Limiter::new(Some(1000));
        // A long quiet period must not accumulate more than one second.
        let t = Timestamp::from_millis(60_000);
        assert!(l.allow(1000, t));
        assert!(!l.allow(1, t));
    }
}
