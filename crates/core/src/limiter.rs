//! Token-bucket rate limiter for S1 packets.
//!
//! S1 packets are the only thing ALPHA forwards unconditionally, so they
//! are the remaining flooding vector; §3.5 tells relays to "initially
//! limit and later increase the maximum size of S1 packets per sender".
//! This bucket implements exactly that: bytes of S1 per association per
//! second, refilled continuously, with a burst of one second's budget.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::Timestamp;

/// Byte-rate token bucket (None = unlimited).
pub struct S1Limiter {
    rate_per_sec: Option<u64>,
    tokens: u64,
    last_refill: Timestamp,
}

impl S1Limiter {
    /// A bucket allowing `rate_per_sec` S1 bytes per second (burst = one
    /// second's worth), or unlimited when `None`.
    #[must_use]
    pub fn new(rate_per_sec: Option<u64>) -> S1Limiter {
        S1Limiter {
            rate_per_sec,
            tokens: rate_per_sec.unwrap_or(0),
            last_refill: Timestamp::ZERO,
        }
    }

    /// Account an S1 of `bytes` at time `now`; `true` = within budget.
    pub fn allow(&mut self, bytes: u64, now: Timestamp) -> bool {
        let Some(rate) = self.rate_per_sec else {
            return true;
        };
        let elapsed_us = now.since(self.last_refill);
        if elapsed_us > 0 {
            let refill = rate.saturating_mul(elapsed_us) / 1_000_000;
            if refill > 0 {
                self.tokens = (self.tokens + refill).min(rate);
                self.last_refill = now;
            }
        }
        if bytes <= self.tokens {
            self.tokens -= bytes;
            true
        } else {
            false
        }
    }
}

/// Concurrent variant of [`S1Limiter`]: same policy (burst = one
/// second's budget, continuous refill), callable through `&self` so the
/// engine can admit packets under a shard *read* lock instead of taking
/// a write lock per packet.
///
/// Implemented as a GCRA ("virtual scheduling") cell: a single atomic
/// holds the theoretical arrival time (TAT, in µs). Admitting `bytes`
/// advances TAT by `bytes / rate` seconds; a packet is over budget when
/// the advanced TAT would run more than one second (the burst window)
/// ahead of `now`. One CAS per admitted packet, no lock, and the
/// outcome is identical to the token-bucket formulation: tokens
/// remaining ≡ `(now + burst − TAT) · rate / 1e6`.
pub struct SharedS1Limiter {
    rate_per_sec: Option<u64>,
    tat_us: AtomicU64,
}

/// The burst window: one second's budget, matching [`S1Limiter`].
const BURST_US: u64 = 1_000_000;

impl SharedS1Limiter {
    /// A concurrent bucket allowing `rate_per_sec` bytes per second
    /// (burst = one second's worth), or unlimited when `None`.
    #[must_use]
    pub fn new(rate_per_sec: Option<u64>) -> SharedS1Limiter {
        SharedS1Limiter {
            rate_per_sec,
            tat_us: AtomicU64::new(0),
        }
    }

    /// Account `bytes` at time `now`; `true` = within budget. Safe to
    /// call concurrently from many workers: admission is serialized by
    /// the CAS, so the budget is never over-committed.
    pub fn allow(&self, bytes: u64, now: Timestamp) -> bool {
        let Some(rate) = self.rate_per_sec else {
            return true;
        };
        if rate == 0 {
            return false;
        }
        let now_us = now.micros();
        let cost_us =
            u64::try_from((u128::from(bytes) * u128::from(BURST_US)).div_ceil(u128::from(rate)))
                .unwrap_or(u64::MAX);
        let mut observed = self.tat_us.load(Ordering::Relaxed);
        loop {
            // A clock that jumped far ahead refills the bucket: TAT
            // never lags more than the burst window behind `now`.
            let tat = observed.max(now_us);
            let new_tat = tat.saturating_add(cost_us);
            if new_tat > now_us.saturating_add(BURST_US) {
                return false;
            }
            match self.tat_us.compare_exchange_weak(
                observed,
                new_tat,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => observed = actual,
            }
        }
    }

    /// The configured rate (None = unlimited).
    #[must_use]
    pub fn rate_per_sec(&self) -> Option<u64> {
        self.rate_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_allows() {
        let mut l = S1Limiter::new(None);
        for i in 0..100 {
            assert!(l.allow(u64::MAX / 2, Timestamp::from_micros(i)));
        }
    }

    #[test]
    fn burst_then_blocked() {
        let mut l = S1Limiter::new(Some(1000));
        let t = Timestamp::from_millis(1);
        assert!(l.allow(600, t));
        assert!(l.allow(400, t));
        assert!(!l.allow(1, t)); // bucket empty
    }

    #[test]
    fn refills_over_time() {
        let mut l = S1Limiter::new(Some(1000));
        let t0 = Timestamp::ZERO;
        assert!(l.allow(1000, t0));
        assert!(!l.allow(100, t0));
        // 100 ms later: 100 tokens back.
        let t1 = Timestamp::from_millis(100);
        assert!(l.allow(100, t1));
        assert!(!l.allow(1, t1));
    }

    #[test]
    fn never_exceeds_burst() {
        let mut l = S1Limiter::new(Some(1000));
        // A long quiet period must not accumulate more than one second.
        let t = Timestamp::from_millis(60_000);
        assert!(l.allow(1000, t));
        assert!(!l.allow(1, t));
    }

    #[test]
    fn shared_matches_token_bucket() {
        // Same pass/fail pattern as the &mut bucket on a mixed schedule.
        let l = SharedS1Limiter::new(Some(1000));
        let t = Timestamp::from_millis(1);
        assert!(l.allow(600, t));
        assert!(l.allow(400, t));
        assert!(!l.allow(1, t)); // budget spent
        let t1 = Timestamp::from_millis(101);
        assert!(l.allow(100, t1)); // 100 ms later: 100 bytes back
        assert!(!l.allow(1, t1));
        assert!(SharedS1Limiter::new(None).allow(u64::MAX / 2, t));
        assert!(!SharedS1Limiter::new(Some(0)).allow(1, t));
    }

    #[test]
    fn shared_refills_across_timestamp_jumps() {
        let l = SharedS1Limiter::new(Some(1000));
        // Drain the full burst, then jump the clock far forward: the
        // bucket must refill to exactly one burst, no more.
        assert!(l.allow(1000, Timestamp::from_millis(5)));
        assert!(!l.allow(1, Timestamp::from_millis(5)));
        let jumped = Timestamp::from_millis(3_600_000); // +1 h
        assert!(l.allow(1000, jumped));
        assert!(!l.allow(1, jumped));
        // A backwards jump (clock regression) must neither panic nor
        // grant budget the forward clock already spent.
        assert!(!l.allow(1000, Timestamp::from_millis(5)));
        // Once real time catches back up, refill resumes normally.
        assert!(l.allow(100, jumped.plus_micros(100_000)));
    }

    #[test]
    fn shared_is_fair_under_contention() {
        use std::sync::Arc;
        let l = Arc::new(SharedS1Limiter::new(Some(8_000)));
        let now = Timestamp::from_millis(1);
        // 8 threads race for 8000 bytes of budget in 1-byte packets:
        // exactly 8000 grants total, regardless of interleaving.
        let grants: u64 = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let l = Arc::clone(&l);
                    s.spawn(move || (0..2000).filter(|_| l.allow(1, now)).count() as u64)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(grants, 8_000);
    }
}
