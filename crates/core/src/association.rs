//! The duplex end-host view of a protected path.
//!
//! Each host runs a [`SignerChannel`] for its outgoing simplex channel and
//! a [`VerifierChannel`] for the incoming one; the four hash-chain anchors
//! `{h^As_n, h^Aa_n, h^Bs_n, h^Ba_n}` of §3.1 are exactly the four chains
//! these two pairs of machines hold between two hosts.

use alpha_crypto::chain::{FrozenChain, HashChain};
use alpha_crypto::Digest;
use alpha_wire::{Body, Packet};
use rand::RngCore;

use crate::signer::{SignerChannel, SignerEvent};
use crate::verifier::{VerifierChannel, VerifierEvent};
use crate::{bootstrap, renewal, signal::Signal, Config, Mode, ProtocolError, Timestamp};

/// Application-visible outcome of feeding a packet (or timer tick) into an
/// [`Association`].
#[derive(Debug, Default)]
pub struct Response {
    /// Packets to transmit, in order.
    pub packets: Vec<Packet>,
    /// Verified payloads delivered by the incoming channel: `(seq, bytes)`.
    pub deliveries: Vec<(u32, Vec<u8>)>,
    /// Signer-side events (acks, nacks, completion).
    pub signer_events: Vec<SignerEvent>,
    /// True when the incoming bundle completed with this packet.
    pub bundle_complete: bool,
    /// True when this packet carried a chain renewal from the peer, which
    /// has already been applied (the renewal payload is consumed, not
    /// surfaced in `deliveries`).
    pub peer_renewed: bool,
    /// Verified control signals from the peer ([`crate::signal`]),
    /// consumed out of `deliveries`.
    pub signals: Vec<Signal>,
}

impl Response {
    /// First packet to transmit, if any (convenience for linear tests).
    #[must_use]
    pub fn packet(&self) -> Option<Packet> {
        self.packets.first().cloned()
    }

    /// First delivered payload, if any.
    #[must_use]
    pub fn payload(&self) -> Option<&[u8]> {
        self.deliveries.first().map(|(_, p)| p.as_slice())
    }

    fn from_signer(out: crate::signer::SignerOutput) -> Response {
        Response {
            packets: out.packets,
            signer_events: out.events,
            ..Response::default()
        }
    }

    fn from_verifier(out: crate::verifier::VerifierOutput) -> Response {
        let mut r = Response {
            packets: out.packets,
            ..Response::default()
        };
        for ev in out.events {
            match ev {
                VerifierEvent::Delivered(seq, payload) => r.deliveries.push((seq, payload)),
                VerifierEvent::BundleComplete => r.bundle_complete = true,
            }
        }
        r
    }
}

/// One host's end of a bootstrapped association.
pub struct Association {
    assoc_id: u64,
    cfg: Config,
    signer: SignerChannel,
    verifier: VerifierChannel,
}

impl Association {
    /// Assemble from freshly generated own chains plus the peer's anchors
    /// (normally called by [`bootstrap`]).
    #[must_use]
    pub fn from_chains(
        cfg: Config,
        assoc_id: u64,
        sig_chain: HashChain,
        ack_chain: HashChain,
        peer_sig_anchor: (Digest, u64),
        peer_ack_anchor: (Digest, u64),
    ) -> Association {
        let signer = SignerChannel::new(
            assoc_id,
            cfg,
            sig_chain,
            peer_ack_anchor.0,
            peer_ack_anchor.1,
        );
        let verifier = VerifierChannel::new(
            assoc_id,
            cfg,
            ack_chain,
            peer_sig_anchor.0,
            peer_sig_anchor.1,
        );
        Association {
            assoc_id,
            cfg,
            signer,
            verifier,
        }
    }

    /// Create a bootstrapped pair of associations in memory (unprotected
    /// handshake, no network). The workhorse of tests and examples.
    #[must_use]
    pub fn pair(cfg: Config, assoc_id: u64, rng: &mut dyn RngCore) -> (Association, Association) {
        let (hs, init_pkt) = bootstrap::initiate(cfg, assoc_id, None, rng);
        // Allowlist: both packets come straight from our own bootstrap
        // with AuthRequirement::None — no network input is involved, so
        // respond/complete cannot fail.
        let (responder, reply_pkt, _) =
            bootstrap::respond(cfg, &init_pkt, None, bootstrap::AuthRequirement::None, rng)
                .expect("in-memory handshake");
        let (initiator, _) = hs
            .complete(&reply_pkt, bootstrap::AuthRequirement::None)
            .expect("in-memory handshake");
        (initiator, responder)
    }

    /// Association identifier.
    #[must_use]
    pub fn assoc_id(&self) -> u64 {
        self.assoc_id
    }

    /// The association's configuration.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Outgoing (signing) channel.
    #[must_use]
    pub fn signer(&mut self) -> &mut SignerChannel {
        &mut self.signer
    }

    /// Incoming (verifying) channel.
    #[must_use]
    pub fn verifier(&mut self) -> &mut VerifierChannel {
        &mut self.verifier
    }

    /// Sign a single message in the association's default mode
    /// (`Mode::Base` signs it alone; the batch modes wrap it in a
    /// one-element bundle). Returns the S1 packet.
    pub fn sign(&mut self, message: &[u8], now: Timestamp) -> Result<Packet, ProtocolError> {
        self.signer.sign(&[message], self.cfg.mode, now)
    }

    /// Sign a batch of messages in `mode` (ALPHA-C or ALPHA-M).
    pub fn sign_batch(
        &mut self,
        messages: &[&[u8]],
        mode: Mode,
        now: Timestamp,
    ) -> Result<Packet, ProtocolError> {
        self.signer.sign(messages, mode, now)
    }

    /// Feed one received packet through the right channel. Verified chain
    /// renewals from the peer ([`crate::renewal`]) are applied in place and
    /// reported via [`Response::peer_renewed`].
    pub fn handle(
        &mut self,
        pkt: &Packet,
        now: Timestamp,
        rng: &mut dyn RngCore,
    ) -> Result<Response, ProtocolError> {
        let mut resp = match &pkt.body {
            Body::S1 { .. } => Response::from_verifier(self.verifier.handle_s1(pkt, now, rng)?),
            Body::S2 { .. } => Response::from_verifier(self.verifier.handle_s2(pkt, now)?),
            Body::A1 { .. } => Response::from_signer(self.signer.handle_a1(pkt, now)?),
            Body::A2 { .. } => Response::from_signer(self.signer.handle_a2(pkt, now)?),
            Body::Handshake(_) => return Err(ProtocolError::UnexpectedPacket),
        };
        self.intercept(&mut resp);
        Ok(resp)
    }

    /// Feed the fields of a received S2 through the verifying channel
    /// without materialising an owned [`Packet`]: the zero-copy ingest path
    /// used by the engine, with the path and payload still borrowed from
    /// the receive buffer.
    #[allow(clippy::too_many_arguments)] // one call site per decode path
    pub fn handle_s2_fields(
        &mut self,
        assoc_id: u64,
        chain_index: u64,
        key: &Digest,
        seq: u32,
        path: &[Digest],
        payload: &[u8],
        now: Timestamp,
    ) -> Result<Response, ProtocolError> {
        let mut resp = Response::from_verifier(self.verifier.handle_s2_fields(
            assoc_id,
            self.cfg.algorithm,
            chain_index,
            key,
            seq,
            path,
            payload,
            now,
        )?);
        self.intercept(&mut resp);
        Ok(resp)
    }

    /// Intercept renewal announcements and control signals among the
    /// verified deliveries, applying renewals in place.
    fn intercept(&mut self, resp: &mut Response) {
        let alg = self.cfg.algorithm;
        let mut renewed = None;
        let mut signals = Vec::new();
        resp.deliveries.retain(|(_, payload)| {
            if let Some(anchors) = renewal::parse(alg, payload) {
                renewed = Some(anchors);
                return false;
            }
            if let Some(sig) = Signal::parse(payload) {
                signals.push(sig);
                return false;
            }
            true
        });
        resp.signals = signals;
        if let Some(anchors) = renewed {
            self.verifier.replace_peer_sig(anchors.sig.0, anchors.sig.1);
            self.signer.replace_peer_ack(anchors.ack.0, anchors.ack.1);
            resp.peer_renewed = true;
        }
    }

    /// Drive timers: signer retransmissions, verifier buffer expiry and
    /// verifier timeout-nacks for missing messages.
    pub fn poll(&mut self, now: Timestamp) -> Response {
        let nacks = self.verifier.poll(now);
        let mut resp = Response::from_signer(self.signer.poll(now));
        resp.packets.extend(nacks);
        resp
    }

    /// Earliest time [`Association::poll`] has work to do.
    #[must_use]
    pub fn poll_at(&self) -> Option<Timestamp> {
        self.signer.poll_at()
    }

    /// Retune the signer's retransmission timeout at runtime (see
    /// [`SignerChannel::set_rto_micros`]).
    pub fn set_rto_micros(&mut self, rto_micros: u64) {
        self.signer.set_rto_micros(rto_micros);
    }

    /// Total protocol bytes buffered on this host (Tables 2 and 3).
    #[must_use]
    pub fn buffered_bytes(&self) -> usize {
        self.signer.buffered_bytes() + self.verifier.buffered_bytes()
    }

    /// Generate fresh chains and the S1 packet announcing them as a
    /// protected renewal message. After the exchange completes (reliable
    /// mode confirms delivery), call [`Association::commit_renewal`].
    pub fn begin_renewal(
        &mut self,
        now: Timestamp,
        rng: &mut dyn RngCore,
    ) -> Result<(renewal::RenewalOffer, Packet), ProtocolError> {
        let (offer, payload) = renewal::offer(&self.cfg, rng);
        let s1 = self.signer.sign(&[&payload], Mode::Base, now)?;
        Ok((offer, s1))
    }

    /// Switch to the renewed chains (after the renewal message delivered).
    pub fn commit_renewal(&mut self, offer: renewal::RenewalOffer) -> Result<(), ProtocolError> {
        self.signer.install_chain(offer.sig_chain)?;
        self.verifier.install_chain(offer.ack_chain);
        Ok(())
    }

    /// Sign a control signal toward the peer (and every on-path relay).
    pub fn send_signal(&mut self, sig: &Signal, now: Timestamp) -> Result<Packet, ProtocolError> {
        self.signer.sign(&[&sig.encode()], Mode::Base, now)
    }

    /// Freeze this association into a compact hibernation record
    /// ([`crate::freeze`]). Fails with
    /// [`ProtocolError::ExchangeInProgress`] while a signer exchange is
    /// outstanding; the verifier side freezes even mid-bundle.
    pub fn freeze(&self) -> Result<crate::freeze::FrozenAssociation, ProtocolError> {
        Ok(crate::freeze::FrozenAssociation {
            assoc_id: self.assoc_id,
            alg: self.cfg.algorithm,
            signer: self.signer.freeze()?,
            verifier: self.verifier.freeze(),
        })
    }

    /// Rebuild an association from its frozen record. `cfg` supplies the
    /// shared tunables (they are engine-wide, not per-flow, so they do not
    /// hibernate); the signer's adaptively tuned RTO is restored from the
    /// record. The thawed association is decision-identical to one that
    /// never slept.
    #[must_use]
    pub fn thaw(cfg: Config, frozen: &crate::freeze::FrozenAssociation) -> Association {
        debug_assert_eq!(cfg.algorithm, frozen.alg);
        // Both own chains rebuild in one two-lane pass — chain
        // re-derivation dominates the wake latency of a hibernated
        // flow, and the lanes roughly halve it.
        let (sig_chain, ack_chain) =
            FrozenChain::thaw_pair(&frozen.signer.chain, &frozen.verifier.ack_chain);
        Association {
            assoc_id: frozen.assoc_id,
            cfg,
            signer: SignerChannel::thaw(frozen.assoc_id, cfg, &frozen.signer, sig_chain),
            verifier: VerifierChannel::thaw(frozen.assoc_id, cfg, &frozen.verifier, ack_chain),
        }
    }
}
