//! Protocol-level errors.

use alpha_crypto::chain::ChainError;

/// Errors surfaced by the protocol state machines. Everything here is
/// reachable from network input or API misuse; nothing panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// A hash-chain element failed authentication.
    Chain(ChainError),
    /// A MAC or Merkle path did not verify: the message is forged or
    /// corrupted.
    BadMac,
    /// The packet type is not valid in the channel's current state
    /// (e.g. an A2 with no exchange outstanding).
    UnexpectedPacket,
    /// The packet belongs to a different association.
    WrongAssociation,
    /// The packet's algorithm does not match the association's.
    WrongAlgorithm,
    /// An exchange is already in flight; ALPHA's S1/A1 phase is strictly
    /// sequential per simplex channel (§3.3.1).
    ExchangeInProgress,
    /// No exchange is awaiting this packet.
    NoExchange,
    /// An S2/A2 referenced a message index outside the announced bundle.
    BadSeq,
    /// More messages than one exchange can carry.
    TooManyMessages,
    /// Empty message set (nothing to sign).
    NoMessages,
    /// The hash chain has no exchange pairs left; re-bootstrap needed.
    ChainExhausted,
    /// A payload exceeds the wire limit.
    PayloadTooLarge,
    /// Handshake processing failed (bad role ordering or state).
    BadHandshake,
    /// A protected handshake's public-key signature failed.
    BadAuth,
    /// The exchange was abandoned after exhausting retransmissions.
    RetriesExhausted,
}

impl From<ChainError> for ProtocolError {
    fn from(e: ChainError) -> ProtocolError {
        ProtocolError::Chain(e)
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Chain(e) => write!(f, "chain authentication failed: {e}"),
            ProtocolError::BadMac => write!(f, "MAC or Merkle path verification failed"),
            ProtocolError::UnexpectedPacket => write!(f, "packet not valid in current state"),
            ProtocolError::WrongAssociation => write!(f, "packet for a different association"),
            ProtocolError::WrongAlgorithm => write!(f, "hash algorithm mismatch"),
            ProtocolError::ExchangeInProgress => write!(f, "an exchange is already outstanding"),
            ProtocolError::NoExchange => write!(f, "no outstanding exchange for this packet"),
            ProtocolError::BadSeq => write!(f, "message index outside the announced bundle"),
            ProtocolError::TooManyMessages => write!(f, "too many messages for one exchange"),
            ProtocolError::NoMessages => write!(f, "no messages to sign"),
            ProtocolError::ChainExhausted => write!(f, "hash chain exhausted"),
            ProtocolError::PayloadTooLarge => write!(f, "payload exceeds wire limit"),
            ProtocolError::BadHandshake => write!(f, "handshake out of order or malformed"),
            ProtocolError::BadAuth => write!(f, "handshake signature verification failed"),
            ProtocolError::RetriesExhausted => write!(f, "exchange abandoned after retries"),
        }
    }
}

impl std::error::Error for ProtocolError {}
