//! In-band chain renewal: replacing hash chains before they exhaust.
//!
//! Hash chains are finite — a 1024-element chain carries ~511 exchanges —
//! so a long-lived association must eventually re-key. Re-running the
//! public-key-protected handshake works but costs exactly the asymmetric
//! operations ALPHA exists to avoid. Instead, the association's existing
//! security does the work: the owner generates fresh chains and sends
//! their anchors as an ordinary ALPHA-protected message. Everyone who can
//! verify that message — the peer *and every relay doing on-path
//! verification* — learns the new anchors with hash-chain-level assurance,
//! chained to the original (possibly PK-protected) bootstrap.
//!
//! Usage:
//!
//! 1. `let (offer, payload) = renewal::offer(&cfg, rng);`
//! 2. Send `payload` as a normal (preferably reliable) message.
//! 3. Peer and relays recognize the payload automatically
//!    ([`crate::Association::handle`] / [`crate::Relay::observe`] inspect verified
//!    payloads) and switch their trackers.
//! 4. After delivery is confirmed, commit locally:
//!    `assoc.commit_renewal(offer)`.
//!
//! The renewal message is authenticated by the *old* chains; the new
//! chains take effect for subsequent exchanges. This is the hash-chain
//! analogue of §3.4's observation that identity flows from whatever
//! authenticated the first anchors.

use alpha_crypto::chain::{ChainKind, HashChain};
use alpha_crypto::{Algorithm, Digest};
use rand::RngCore;

use crate::Config;

/// Marker prefix distinguishing renewal payloads from application data.
pub const MAGIC: &[u8; 12] = b"ALPHA-RENEW\x01";

/// Freshly generated chains awaiting delivery confirmation.
pub struct RenewalOffer {
    pub(crate) sig_chain: HashChain,
    pub(crate) ack_chain: HashChain,
}

/// The peer-visible half of a renewal: the new anchors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenewalAnchors {
    /// New signature-chain anchor and index.
    pub sig: (Digest, u64),
    /// New acknowledgment-chain anchor and index.
    pub ack: (Digest, u64),
}

/// Generate fresh chains per `cfg` and the payload announcing them.
#[must_use]
pub fn offer(cfg: &Config, rng: &mut dyn RngCore) -> (RenewalOffer, Vec<u8>) {
    let gen = |kind, rng: &mut dyn RngCore| match cfg.chain_storage {
        crate::ChainStorage::Full => HashChain::generate(cfg.algorithm, kind, cfg.chain_len, rng),
        crate::ChainStorage::Sqrt => {
            HashChain::generate_compact(cfg.algorithm, kind, cfg.chain_len, rng)
        }
        crate::ChainStorage::Dyadic => {
            HashChain::generate_dyadic(cfg.algorithm, kind, cfg.chain_len, rng)
        }
    };
    let (sig_chain, ack_chain) = (
        gen(ChainKind::RoleBoundSignature, rng),
        gen(ChainKind::RoleBoundAck, rng),
    );
    let payload = encode(cfg.algorithm, &sig_chain, &ack_chain);
    (
        RenewalOffer {
            sig_chain,
            ack_chain,
        },
        payload,
    )
}

fn encode(alg: Algorithm, sig: &HashChain, ack: &HashChain) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + 1 + 16 + 2 * alg.digest_len());
    out.extend_from_slice(MAGIC);
    out.push(match alg {
        Algorithm::Sha1 => 1,
        Algorithm::Sha256 => 2,
        Algorithm::MmoAes => 3,
    });
    out.extend_from_slice(&sig.anchor_index().to_be_bytes());
    out.extend_from_slice(sig.anchor().as_bytes());
    out.extend_from_slice(&ack.anchor_index().to_be_bytes());
    out.extend_from_slice(ack.anchor().as_bytes());
    out
}

/// Parse a verified payload as a renewal announcement. Returns `None` for
/// ordinary application data or malformed announcements.
#[must_use]
pub fn parse(alg: Algorithm, payload: &[u8]) -> Option<RenewalAnchors> {
    let rest = payload.strip_prefix(MAGIC.as_slice())?;
    let h = alg.digest_len();
    if rest.len() != 1 + 2 * (8 + h) {
        return None;
    }
    let tag_ok = matches!(
        (rest[0], alg),
        (1, Algorithm::Sha1) | (2, Algorithm::Sha256) | (3, Algorithm::MmoAes)
    );
    if !tag_ok {
        return None;
    }
    let rest = &rest[1..];
    let sig_idx = u64::from_be_bytes(rest[..8].try_into().ok()?);
    let sig_anchor = Digest::from_slice(&rest[8..8 + h]);
    let rest = &rest[8 + h..];
    let ack_idx = u64::from_be_bytes(rest[..8].try_into().ok()?);
    let ack_anchor = Digest::from_slice(&rest[8..8 + h]);
    if sig_idx < 2 || ack_idx < 2 {
        return None;
    }
    Some(RenewalAnchors {
        sig: (sig_anchor, sig_idx),
        ack: (ack_anchor, ack_idx),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn offer_roundtrips_through_parse() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cfg = Config::new(Algorithm::Sha1).with_chain_len(64);
        let (offer, payload) = offer(&cfg, &mut rng);
        let anchors = parse(Algorithm::Sha1, &payload).expect("parses");
        assert_eq!(anchors.sig.0, offer.sig_chain.anchor());
        assert_eq!(anchors.sig.1, 64);
        assert_eq!(anchors.ack.0, offer.ack_chain.anchor());
    }

    #[test]
    fn ordinary_payloads_are_not_renewals() {
        assert!(parse(Algorithm::Sha1, b"just application data").is_none());
        assert!(parse(Algorithm::Sha1, b"").is_none());
        assert!(parse(Algorithm::Sha1, MAGIC).is_none()); // truncated
    }

    #[test]
    fn algorithm_mismatch_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = Config::new(Algorithm::Sha256).with_chain_len(32);
        let (_, payload) = offer(&cfg, &mut rng);
        assert!(parse(Algorithm::Sha256, &payload).is_some());
        assert!(parse(Algorithm::Sha1, &payload).is_none());
    }

    #[test]
    fn tampered_length_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let cfg = Config::new(Algorithm::Sha1).with_chain_len(32);
        let (_, mut payload) = offer(&cfg, &mut rng);
        payload.pop();
        assert!(parse(Algorithm::Sha1, &payload).is_none());
    }
}
