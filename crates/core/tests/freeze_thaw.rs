//! Freeze → thaw equivalence: a hibernated association must be byte- and
//! decision-identical to one that never slept, across every chain storage
//! strategy and operating mode, including a thaw that lands mid-bundle
//! (the sender went quiet halfway through an S2 burst).
//!
//! The method is transcript comparison: the same fully deterministic
//! scenario runs twice — once straight through, once with freeze →
//! encode → decode → thaw injected at a chosen point — and every packet
//! byte and every delivered payload must match exactly.

use alpha_core::{
    Association, ChainStorage, Config, FrozenAssociation, Mode, ProtocolError, Reliability,
    Timestamp,
};
use alpha_crypto::Algorithm;
use alpha_wire::Packet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const STORAGES: [ChainStorage; 3] = [ChainStorage::Full, ChainStorage::Sqrt, ChainStorage::Dyadic];

fn enc(p: &Packet) -> Vec<u8> {
    let mut v = Vec::new();
    p.encode_into(&mut v);
    v
}

/// Freeze, serialize, parse, thaw: the full hibernation round trip.
fn roundtrip(cfg: Config, assoc: &Association) -> Association {
    let frozen = assoc.freeze().expect("idle signer");
    let bytes = frozen.encode();
    let decoded = FrozenAssociation::decode(&bytes).expect("own record decodes");
    Association::thaw(cfg, &decoded)
}

/// Where (if anywhere) the hibernation round trip is injected in round 0.
#[derive(Clone, Copy, Debug, PartialEq)]
enum FreezePoint {
    Never,
    /// Both sides sleep between the two exchange rounds (fully idle flow).
    BetweenRounds,
    /// The verifier sleeps just before the `i`-th S2 of the burst lands
    /// (mid-bundle: buffered pre-signature, partial `received` bitmap,
    /// possibly undisclosed verdict secrets).
    BeforeS2(usize),
}

/// Run two exchange rounds and record every wire byte and delivery.
fn transcript(cfg: Config, mode: Mode, msgs: &[&[u8]], freeze: FreezePoint) -> Vec<Vec<u8>> {
    let mut r = StdRng::seed_from_u64(0xF10);
    let (mut alice, mut bob) = Association::pair(cfg, 9, &mut r);
    let mut out: Vec<Vec<u8>> = Vec::new();
    for round in 0..2u64 {
        let now = Timestamp::from_millis(round * 10);
        let s1 = alice.sign_batch(msgs, mode, now).expect("sign");
        out.push(enc(&s1));
        let a1 = bob
            .handle(&s1, now, &mut r)
            .expect("s1")
            .packet()
            .expect("a1");
        out.push(enc(&a1));
        let s2s = alice.handle(&a1, now, &mut r).expect("a1").packets;
        for (i, s2) in s2s.iter().enumerate() {
            out.push(enc(s2));
            if round == 0 && freeze == FreezePoint::BeforeS2(i) {
                bob = roundtrip(cfg, &bob);
            }
            let resp = bob.handle(s2, now, &mut r).expect("s2");
            for (seq, payload) in &resp.deliveries {
                let mut d = seq.to_be_bytes().to_vec();
                d.extend_from_slice(payload);
                out.push(d);
            }
            for a2 in &resp.packets {
                out.push(enc(a2));
                let sresp = alice.handle(a2, now, &mut r).expect("a2");
                for p in &sresp.packets {
                    out.push(enc(p));
                }
                out.push(vec![sresp.signer_events.len() as u8]);
            }
        }
        if round == 0 && freeze == FreezePoint::BetweenRounds {
            alice = roundtrip(cfg, &alice);
            bob = roundtrip(cfg, &bob);
        }
    }
    out
}

fn scenarios() -> Vec<(Mode, Vec<Vec<u8>>)> {
    let msgs = |n: usize| -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("payload number {i}").into_bytes())
            .collect()
    };
    vec![
        (Mode::Base, msgs(1)),
        (Mode::Cumulative, msgs(4)),
        (Mode::Merkle, msgs(4)),
        (Mode::CumulativeMerkle { leaves_per_tree: 2 }, msgs(5)),
    ]
}

#[test]
fn thaw_is_decision_identical_across_storages_modes_and_freeze_points() {
    for storage in STORAGES {
        for reliability in [Reliability::Unreliable, Reliability::Reliable] {
            for (mode, msgs) in scenarios() {
                let cfg = Config::new(Algorithm::Sha1)
                    .with_chain_len(64)
                    .with_chain_storage(storage)
                    .with_reliability(reliability);
                let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
                let baseline = transcript(cfg, mode, &refs, FreezePoint::Never);
                for freeze in [
                    FreezePoint::BetweenRounds,
                    FreezePoint::BeforeS2(0),
                    FreezePoint::BeforeS2(refs.len() / 2),
                    FreezePoint::BeforeS2(refs.len() - 1),
                ] {
                    let frozen = transcript(cfg, mode, &refs, freeze);
                    assert_eq!(
                        baseline, frozen,
                        "diverged: {storage:?} {reliability:?} {mode:?} {freeze:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn thaw_is_decision_identical_across_algorithms() {
    for alg in Algorithm::ALL {
        let cfg = Config::new(alg)
            .with_chain_len(64)
            .with_reliability(Reliability::Reliable);
        let msgs: Vec<&[u8]> = vec![b"one", b"two", b"three"];
        let baseline = transcript(cfg, Mode::Cumulative, &msgs, FreezePoint::Never);
        let frozen = transcript(cfg, Mode::Cumulative, &msgs, FreezePoint::BeforeS2(1));
        assert_eq!(baseline, frozen, "diverged on {alg:?}");
    }
}

#[test]
fn idle_record_is_compact_regardless_of_chain_length() {
    // The whole point of hibernation: chain cursors and anchors, not
    // element vectors. A 4096-element SHA-1 flow must freeze to well under
    // a quarter kilobyte.
    for storage in STORAGES {
        let cfg = Config::new(Algorithm::Sha1)
            .with_chain_len(4096)
            .with_chain_storage(storage);
        let mut r = StdRng::seed_from_u64(4);
        let (alice, _) = Association::pair(cfg, 1, &mut r);
        let bytes = alice.freeze().expect("idle").encode();
        assert!(
            bytes.len() < 256,
            "{storage:?} record is {} bytes",
            bytes.len()
        );
    }
}

#[test]
fn freeze_refused_while_signer_exchange_outstanding() {
    let cfg = Config::new(Algorithm::Sha1).with_chain_len(64);
    let mut r = StdRng::seed_from_u64(5);
    let (mut alice, _) = Association::pair(cfg, 1, &mut r);
    alice.sign(b"in flight", Timestamp::ZERO).expect("sign");
    assert!(matches!(
        alice.freeze(),
        Err(ProtocolError::ExchangeInProgress)
    ));
}

#[test]
fn truncated_records_are_rejected_not_panicked() {
    let cfg = Config::new(Algorithm::Sha1)
        .with_chain_len(64)
        .with_reliability(Reliability::Reliable);
    let mut r = StdRng::seed_from_u64(6);
    let (mut alice, mut bob) = Association::pair(cfg, 1, &mut r);
    // Put the verifier mid-bundle so the record exercises every section.
    let msgs: Vec<&[u8]> = vec![b"a", b"b", b"c"];
    let s1 = alice
        .sign_batch(&msgs, Mode::Cumulative, Timestamp::ZERO)
        .expect("sign");
    let a1 = bob
        .handle(&s1, Timestamp::ZERO, &mut r)
        .expect("s1")
        .packet()
        .expect("a1");
    let s2s = alice
        .handle(&a1, Timestamp::ZERO, &mut r)
        .expect("a1")
        .packets;
    bob.handle(&s2s[0], Timestamp::ZERO, &mut r).expect("s2");
    let bytes = bob.freeze().expect("idle").encode();
    assert!(FrozenAssociation::decode(&bytes).is_some());
    for cut in 0..bytes.len() {
        assert!(
            FrozenAssociation::decode(&bytes[..cut]).is_none(),
            "prefix of {cut} bytes decoded"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized version of the transcript equivalence: arbitrary bundle
    /// shapes, payload sizes, storages, reliability and freeze points.
    #[test]
    fn freeze_thaw_transcripts_match(
        n in 1usize..6,
        payload_len in 0usize..48,
        storage_ix in 0usize..3,
        reliable in any::<bool>(),
        merkle in any::<bool>(),
        freeze_ix in 0usize..6,
    ) {
        let mode = if merkle { Mode::Merkle } else { Mode::Cumulative };
        let cfg = Config::new(Algorithm::Sha1)
            .with_chain_len(64)
            .with_chain_storage(STORAGES[storage_ix])
            .with_reliability(if reliable { Reliability::Reliable } else { Reliability::Unreliable });
        let msgs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; payload_len]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let baseline = transcript(cfg, mode, &refs, FreezePoint::Never);
        let frozen = transcript(cfg, mode, &refs, FreezePoint::BeforeS2(freeze_ix % n));
        prop_assert_eq!(baseline, frozen);
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = FrozenAssociation::decode(&bytes);
    }
}
