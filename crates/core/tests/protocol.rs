//! End-to-end protocol tests: every mode × reliability combination, the
//! attacks §3 defends against, and the relay's on-path behaviour.

use alpha_core::bootstrap::{self, AuthRequirement};
use alpha_core::{
    Association, Config, DropReason, Mode, ProtocolError, Relay, RelayConfig, RelayDecision,
    RelayEvent, Reliability, SignerEvent, Timestamp,
};
use alpha_crypto::Algorithm;
use alpha_pk::Signer;
use alpha_wire::Body;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn cfg(alg: Algorithm) -> Config {
    Config::new(alg).with_chain_len(64)
}

const T0: Timestamp = Timestamp::ZERO;

fn pair(cfg: Config, seed: u64) -> (Association, Association, StdRng) {
    let mut r = rng(seed);
    let (a, b) = Association::pair(cfg, 1, &mut r);
    (a, b, r)
}

#[test]
fn base_unreliable_roundtrip_all_algorithms() {
    for alg in Algorithm::ALL {
        let (mut alice, mut bob, mut r) = pair(cfg(alg), 1);
        let s1 = alice.sign(b"hello multi-hop world", T0).unwrap();
        let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
        let s2s = alice.handle(&a1, T0, &mut r).unwrap();
        assert_eq!(s2s.packets.len(), 1);
        assert!(s2s.signer_events.contains(&SignerEvent::ExchangeComplete));
        let resp = bob.handle(&s2s.packets[0], T0, &mut r).unwrap();
        assert_eq!(resp.payload().unwrap(), b"hello multi-hop world");
        assert!(resp.bundle_complete);
        assert!(resp.packets.is_empty(), "unreliable mode sends no A2");
    }
}

#[test]
fn multiple_sequential_exchanges() {
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 2);
    for i in 0..10u32 {
        let msg = format!("message number {i}");
        let s1 = alice.sign(msg.as_bytes(), T0).unwrap();
        let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
        let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
        let resp = bob.handle(&s2, T0, &mut r).unwrap();
        assert_eq!(resp.payload().unwrap(), msg.as_bytes());
    }
}

#[test]
fn base_reliable_ack_flow() {
    let c = cfg(Algorithm::Sha1).with_reliability(Reliability::Reliable);
    let (mut alice, mut bob, mut r) = pair(c, 3);
    let s1 = alice.sign(b"needs confirmation", T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    // A1 must carry a flat pre-(n)ack commitment.
    match &a1.body {
        Body::A1 {
            commit: alpha_wire::AckCommit::Flat { .. },
            ..
        } => {}
        other => panic!("expected flat commit, got {other:?}"),
    }
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    let resp = bob.handle(&s2, T0, &mut r).unwrap();
    assert_eq!(resp.payload().unwrap(), b"needs confirmation");
    let a2 = resp.packets[0].clone();
    let fin = alice.handle(&a2, T0, &mut r).unwrap();
    assert!(fin.signer_events.contains(&SignerEvent::Acked(0)));
    assert!(fin.signer_events.contains(&SignerEvent::ExchangeComplete));
    assert!(alice.signer().is_idle());
}

#[test]
fn cumulative_batch_out_of_order_delivery() {
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 4);
    let msgs: Vec<Vec<u8>> = (0..8).map(|i| format!("chunk {i}").into_bytes()).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let s1 = alice.sign_batch(&refs, Mode::Cumulative, T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let mut s2s = alice.handle(&a1, T0, &mut r).unwrap().packets;
    assert_eq!(s2s.len(), 8);
    // Deliver in reverse order: each S2 is independently verifiable.
    s2s.reverse();
    let mut delivered = Vec::new();
    for s2 in &s2s {
        let resp = bob.handle(s2, T0, &mut r).unwrap();
        delivered.extend(resp.deliveries);
    }
    assert_eq!(delivered.len(), 8);
    let mut seqs: Vec<u32> = delivered.iter().map(|(s, _)| *s).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..8).collect::<Vec<_>>());
    for (seq, payload) in &delivered {
        assert_eq!(payload, &msgs[*seq as usize]);
    }
}

#[test]
fn merkle_batch_loss_tolerance() {
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 5);
    let msgs: Vec<Vec<u8>> = (0..16)
        .map(|i| format!("block {i:04}").into_bytes())
        .collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let s1 = alice.sign_batch(&refs, Mode::Merkle, T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let s2s = alice.handle(&a1, T0, &mut r).unwrap().packets;
    assert_eq!(s2s.len(), 16);
    // Drop half the S2s; every survivor still verifies independently.
    for (i, s2) in s2s.iter().enumerate() {
        if i % 2 == 0 {
            continue; // lost
        }
        let resp = bob.handle(s2, T0, &mut r).unwrap();
        assert_eq!(resp.deliveries.len(), 1);
    }
}

#[test]
fn merkle_reliable_selective_repeat() {
    let c = cfg(Algorithm::Sha1).with_reliability(Reliability::Reliable);
    let (mut alice, mut bob, mut r) = pair(c, 6);
    let msgs: Vec<Vec<u8>> = (0..4)
        .map(|i| format!("reliable {i}").into_bytes())
        .collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let s1 = alice.sign_batch(&refs, Mode::Merkle, T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    match &a1.body {
        Body::A1 {
            commit: alpha_wire::AckCommit::Amt { leaves: 4, .. },
            ..
        } => {}
        other => panic!("expected AMT commit, got {other:?}"),
    }
    let s2s = alice.handle(&a1, T0, &mut r).unwrap().packets;
    // Deliver only seq 0 and 2; bob acks each individually.
    let mut acked = Vec::new();
    for s2 in [&s2s[0], &s2s[2]] {
        let resp = bob.handle(s2, T0, &mut r).unwrap();
        let a2 = resp.packets[0].clone();
        let out = alice.handle(&a2, T0, &mut r).unwrap();
        for ev in out.signer_events {
            if let SignerEvent::Acked(seq) = ev {
                acked.push(seq);
            }
        }
    }
    assert_eq!(acked, vec![0, 2]);
    assert!(!alice.signer().is_idle(), "seqs 1 and 3 unconfirmed");
    // Timer fires: signer retransmits exactly the unacked seqs.
    let later = Timestamp::from_millis(300);
    let re = alice.poll(later);
    let reseqs: Vec<u32> = re
        .packets
        .iter()
        .map(|p| match &p.body {
            Body::S2 { seq, .. } => *seq,
            _ => panic!("expected S2"),
        })
        .collect();
    assert_eq!(reseqs, vec![1, 3]);
    for s2 in &re.packets {
        let resp = bob.handle(s2, later, &mut r).unwrap();
        for a2 in &resp.packets {
            alice.handle(a2, later, &mut r).unwrap();
        }
    }
    assert!(alice.signer().is_idle(), "all seqs confirmed after repeat");
}

#[test]
fn tampered_payload_rejected_unreliable() {
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 7);
    let s1 = alice.sign(b"authentic", T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let mut s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    if let Body::S2 { payload, .. } = &mut s2.body {
        payload[0] ^= 0xff;
    }
    assert_eq!(
        bob.handle(&s2, T0, &mut r).unwrap_err(),
        ProtocolError::BadMac
    );
}

#[test]
fn tampered_payload_nacked_then_repaired_reliable() {
    let c = cfg(Algorithm::Sha1).with_reliability(Reliability::Reliable);
    let (mut alice, mut bob, mut r) = pair(c, 8);
    let s1 = alice.sign(b"will be tampered", T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    let mut bad = s2.clone();
    if let Body::S2 { payload, .. } = &mut bad.body {
        payload[3] ^= 1;
    }
    // Verifier answers the forged S2 with a nack instead of delivering.
    let resp = bob.handle(&bad, T0, &mut r).unwrap();
    assert!(resp.deliveries.is_empty());
    let nack = resp.packets[0].clone();
    let out = alice.handle(&nack, T0, &mut r).unwrap();
    assert!(out.signer_events.contains(&SignerEvent::Nacked(0)));
    // The nack triggered an immediate retransmission of the genuine S2.
    assert_eq!(out.packets.len(), 1);
    let resp = bob.handle(&out.packets[0], T0, &mut r).unwrap();
    assert_eq!(resp.payload().unwrap(), b"will be tampered");
    let a2 = resp.packets[0].clone();
    let fin = alice.handle(&a2, T0, &mut r).unwrap();
    assert!(fin.signer_events.contains(&SignerEvent::ExchangeComplete));
}

#[test]
fn duplicate_s1_replays_same_a1() {
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 9);
    let s1 = alice.sign(b"msg", T0).unwrap();
    let a1a = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let a1b = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    assert_eq!(a1a, a1b, "A1 must be idempotent for S1 retransmissions");
}

#[test]
fn duplicate_s2_delivers_once() {
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 10);
    let s1 = alice.sign(b"once", T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    assert_eq!(bob.handle(&s2, T0, &mut r).unwrap().deliveries.len(), 1);
    assert_eq!(bob.handle(&s2, T0, &mut r).unwrap().deliveries.len(), 0);
}

#[test]
fn s1_retransmission_after_lost_a1() {
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 11);
    let s1 = alice.sign(b"lost a1", T0).unwrap();
    let _a1_lost = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    // RTO fires: alice resends the identical S1.
    let later = Timestamp::from_millis(250);
    let out = alice.poll(later);
    assert_eq!(out.packets, vec![s1.clone()]);
    // Bob replays the A1, the exchange proceeds.
    let a1 = bob
        .handle(&out.packets[0], later, &mut r)
        .unwrap()
        .packet()
        .unwrap();
    let s2 = alice.handle(&a1, later, &mut r).unwrap().packets.remove(0);
    assert_eq!(
        bob.handle(&s2, later, &mut r).unwrap().payload().unwrap(),
        b"lost a1"
    );
}

#[test]
fn exchange_abandoned_after_max_retries() {
    let c = cfg(Algorithm::Sha1).with_rto_micros(1000);
    let (mut alice, _bob, _r) = pair(c, 12);
    alice.sign(b"into the void", T0).unwrap();
    let mut t = T0;
    let mut abandoned = false;
    for _ in 0..20 {
        t = t.plus_micros(1500);
        let out = alice.poll(t);
        if out.signer_events.contains(&SignerEvent::ExchangeAbandoned) {
            abandoned = true;
            break;
        }
    }
    assert!(abandoned);
    assert!(alice.signer().is_idle());
}

#[test]
fn unwilling_verifier_sends_no_a1() {
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 13);
    bob.verifier().set_accepting(false);
    let s1 = alice.sign(b"unsolicited", T0).unwrap();
    let resp = bob.handle(&s1, T0, &mut r).unwrap();
    assert!(resp.packets.is_empty(), "no willingness, no A1 (§3.5)");
    bob.verifier().set_accepting(true);
}

#[test]
fn wrong_association_and_algorithm_rejected() {
    let (mut alice, _bob, mut r) = pair(cfg(Algorithm::Sha1), 14);
    let (mut eve_a, eve_b) = Association::pair(cfg(Algorithm::Sha1), 2, &mut r);
    let foreign_s1 = eve_a.sign(b"foreign", T0).unwrap();
    let _ = eve_b; // unused second endpoint
    assert_eq!(
        alice.handle(&foreign_s1, T0, &mut r).unwrap_err(),
        ProtocolError::WrongAssociation
    );
}

#[test]
fn replayed_s1_element_rejected_on_fresh_exchange() {
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 15);
    // Exchange 1 completes.
    let s1_first = alice.sign(b"one", T0).unwrap();
    let a1 = bob.handle(&s1_first, T0, &mut r).unwrap().packet().unwrap();
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    bob.handle(&s2, T0, &mut r).unwrap();
    // Exchange 2 starts (advances bob's tracker past exchange 1).
    let s1_second = alice.sign(b"two", T0).unwrap();
    bob.handle(&s1_second, T0, &mut r).unwrap();
    // Replaying exchange 1's S1 now fails chain authentication.
    let err = bob.handle(&s1_first, T0, &mut r).unwrap_err();
    assert!(matches!(err, ProtocolError::Chain(_)), "got {err:?}");
}

#[test]
fn chain_exhaustion_reported() {
    // A chain of 4 elements publishes its anchor (element 4) and leaves
    // one usable (announce, key) pair: elements (3, 2).
    let c = cfg(Algorithm::Sha1).with_chain_len(4);
    let (mut alice, mut bob, mut r) = pair(c, 16);
    assert_eq!(alice.signer().remaining_exchanges(), 1);
    let s1 = alice.sign(b"x", T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    bob.handle(&s2, T0, &mut r).unwrap();
    assert_eq!(
        alice.sign(b"y", T0).unwrap_err(),
        ProtocolError::ChainExhausted
    );
}

// ---------------------------------------------------------------------
// Relay behaviour
// ---------------------------------------------------------------------

/// Run a full handshake through a relay and return everything.
fn relayed_pair(c: Config, seed: u64) -> (Association, Association, Relay, StdRng) {
    let mut r = rng(seed);
    let mut relay = Relay::new(RelayConfig::default());
    let (hs, init_pkt) = bootstrap::initiate(c, 9, None, &mut r);
    let (dec, _) = relay.observe(&init_pkt, T0);
    assert_eq!(dec, RelayDecision::Forward);
    let (responder, reply_pkt, _) =
        bootstrap::respond(c, &init_pkt, None, AuthRequirement::None, &mut r).unwrap();
    let (dec, events) = relay.observe(&reply_pkt, T0);
    assert_eq!(dec, RelayDecision::Forward);
    assert!(events.contains(&RelayEvent::AssociationLearned(9)));
    let (initiator, _) = hs.complete(&reply_pkt, AuthRequirement::None).unwrap();
    (initiator, responder, relay, r)
}

#[test]
fn relay_learns_forwards_and_extracts() {
    let (mut alice, mut bob, mut relay, mut r) = relayed_pair(cfg(Algorithm::Sha1), 20);
    let s1 = alice.sign(b"signal to middlebox", T0).unwrap();
    assert_eq!(relay.observe(&s1, T0).0, RelayDecision::Forward);
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    assert_eq!(relay.observe(&a1, T0).0, RelayDecision::Forward);
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    let (dec, events) = relay.observe(&s2, T0);
    assert_eq!(dec, RelayDecision::Forward);
    // The relay verified the payload *before* the destination had to —
    // this is the "secure extraction of signed data" capability.
    assert!(events.iter().any(|e| matches!(
        e,
        RelayEvent::VerifiedPayload { payload, .. } if payload == b"signal to middlebox"
    )));
    bob.handle(&s2, T0, &mut r).unwrap();
}

/// A retransmitted HS1 arriving *after* the relay has learned the
/// association (the initiator resent because the reply was slow) must
/// not knock the association back into the handshake-incomplete state:
/// the exchange that follows still verifies at the relay.
#[test]
fn relay_survives_retransmitted_handshake_init() {
    let c = cfg(Algorithm::Sha1);
    let mut r = rng(21);
    let mut relay = Relay::new(RelayConfig::default());
    let (hs, init_pkt) = bootstrap::initiate(c, 9, None, &mut r);
    relay.observe(&init_pkt, T0);
    let (mut bob, reply_pkt, _) =
        bootstrap::respond(c, &init_pkt, None, AuthRequirement::None, &mut r).unwrap();
    let (_, events) = relay.observe(&reply_pkt, T0);
    assert!(events.contains(&RelayEvent::AssociationLearned(9)));
    let (mut alice, _) = hs.complete(&reply_pkt, AuthRequirement::None).unwrap();

    // The duplicate init crosses the already-forwarded reply on the wire.
    assert_eq!(relay.observe(&init_pkt, T0).0, RelayDecision::Forward);

    let s1 = alice.sign(b"after the dup", T0).unwrap();
    assert_eq!(relay.observe(&s1, T0).0, RelayDecision::Forward);
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    assert_eq!(relay.observe(&a1, T0).0, RelayDecision::Forward);
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    let (dec, events) = relay.observe(&s2, T0);
    assert_eq!(dec, RelayDecision::Forward);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, RelayEvent::VerifiedPayload { .. })),
        "relay must still verify the exchange after a duplicate HS1"
    );
    bob.handle(&s2, T0, &mut r).unwrap();
}

/// The batched S2 verification path must be decision-for-decision
/// identical to packet-by-packet observation: same forwards, same drops,
/// same verified-payload outcomes, including a tampered packet mid-run
/// and a control (signal) payload that forms a single-shot barrier.
#[test]
fn relay_s2_batch_matches_sequential() {
    use alpha_core::signal::Signal;
    use alpha_core::S2BatchItem;
    use alpha_wire::PacketView;

    for mode in [Mode::Cumulative, Mode::Merkle] {
        let c = cfg(Algorithm::Sha256);
        let mut r = rng(77);
        let mut relay_seq = Relay::new(RelayConfig::default());
        let mut relay_bat = Relay::new(RelayConfig::default());
        let (hs, init_pkt) = bootstrap::initiate(c, 9, None, &mut r);
        let (mut bob, reply_pkt, _) =
            bootstrap::respond(c, &init_pkt, None, AuthRequirement::None, &mut r).unwrap();
        let (mut alice, _) = hs.complete(&reply_pkt, AuthRequirement::None).unwrap();

        // Exchange A: a four-message bundle. Exchange B: a rate-limit
        // signal, whose S2 payload is magic-prefixed control data.
        let msgs: Vec<Vec<u8>> = (0..4)
            .map(|i| format!("batched {i}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let s1a = alice.sign_batch(&refs, mode, T0).unwrap();
        let a1a = bob.handle(&s1a, T0, &mut r).unwrap().packet().unwrap();
        let mut s2s = alice.handle(&a1a, T0, &mut r).unwrap().packets;
        let s1b = alice
            .send_signal(&Signal::RateLimit { bytes_per_sec: 512 }, T0)
            .unwrap();
        let a1b = bob.handle(&s1b, T0, &mut r).unwrap().packet().unwrap();
        let s2b = alice.handle(&a1b, T0, &mut r).unwrap().packets.remove(0);
        for relay in [&mut relay_seq, &mut relay_bat] {
            for pkt in [&init_pkt, &reply_pkt, &s1a, &a1a, &s1b, &a1b] {
                assert_eq!(relay.observe(pkt, T0).0, RelayDecision::Forward);
            }
        }
        // Tamper one mid-run payload: exactly it must drop.
        if let Body::S2 { payload, .. } = &mut s2s[2].body {
            payload[0] ^= 1;
        }
        s2s.push(s2b);

        let emitted: Vec<Vec<u8>> = s2s.iter().map(alpha_wire::Packet::emit).collect();
        let seq_results: Vec<_> = emitted
            .iter()
            .map(|bytes| {
                let view = PacketView::parse(bytes).unwrap();
                relay_seq.observe_view(&view, bytes.len(), T0)
            })
            .collect();

        let items: Vec<S2BatchItem<'_>> = s2s
            .iter()
            .map(|p| {
                let Body::S2 {
                    key,
                    seq,
                    path,
                    payload,
                } = &p.body
                else {
                    panic!("expected S2");
                };
                S2BatchItem {
                    alg: p.alg,
                    chain_index: p.chain_index,
                    key: *key,
                    seq: *seq,
                    path,
                    payload,
                }
            })
            .collect();
        let bat_results = relay_bat.observe_s2_batch(9, &items, T0);
        assert_eq!(seq_results, bat_results, "mode {mode:?}");
        assert_eq!(
            bat_results[2].0,
            RelayDecision::Drop(DropReason::BadMac),
            "mode {mode:?}"
        );
        let forwarded = bat_results
            .iter()
            .filter(|(d, _)| *d == RelayDecision::Forward)
            .count();
        assert_eq!(forwarded, 4, "mode {mode:?}");
        // The signal rode last and still verified through the barrier.
        assert!(bat_results[4].1.verified_s2.is_some(), "mode {mode:?}");
    }
}

#[test]
fn relay_drops_tampered_s2() {
    let (mut alice, mut bob, mut relay, mut r) = relayed_pair(cfg(Algorithm::Sha1), 21);
    let s1 = alice.sign(b"genuine bytes", T0).unwrap();
    relay.observe(&s1, T0);
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    relay.observe(&a1, T0);
    let mut s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    if let Body::S2 { payload, .. } = &mut s2.body {
        payload[0] ^= 1;
    }
    assert_eq!(
        relay.observe(&s2, T0).0,
        RelayDecision::Drop(DropReason::BadMac)
    );
}

#[test]
fn relay_drops_unsolicited_s2() {
    let (mut alice, mut bob, mut relay, mut r) = relayed_pair(cfg(Algorithm::Sha1), 22);
    // Build a complete exchange *without* letting the relay see S1/A1.
    let s1 = alice.sign(b"sneak", T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    // The relay never saw the announcement: unsolicited data is dropped
    // (flooding cannot propagate past the first ALPHA-aware relay).
    assert_eq!(
        relay.observe(&s2, T0).0,
        RelayDecision::Drop(DropReason::Unsolicited)
    );
}

#[test]
fn relay_rate_limits_s1_floods() {
    let cfg_relay = RelayConfig {
        s1_bytes_per_sec: Some(100),
        ..RelayConfig::default()
    };
    let c = cfg(Algorithm::Sha1);
    let mut r = rng(23);
    let mut relay = Relay::new(cfg_relay);
    let (hs, init_pkt) = bootstrap::initiate(c, 9, None, &mut r);
    relay.observe(&init_pkt, T0);
    let (mut responder, reply_pkt, _) =
        bootstrap::respond(c, &init_pkt, None, AuthRequirement::None, &mut r).unwrap();
    relay.observe(&reply_pkt, T0);
    let (mut initiator, _) = hs.complete(&reply_pkt, AuthRequirement::None).unwrap();

    // A base-mode S1 is 64 bytes; the 100-byte budget admits one per second.
    let s1a = initiator.sign(b"a", T0).unwrap();
    assert_eq!(relay.observe(&s1a, T0).0, RelayDecision::Forward);
    let a1 = responder
        .handle(&s1a, T0, &mut r)
        .unwrap()
        .packet()
        .unwrap();
    relay.observe(&a1, T0);
    let s2 = initiator.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    relay.observe(&s2, T0);
    responder.handle(&s2, T0, &mut r).unwrap();

    let s1b = initiator.sign(b"b", T0).unwrap();
    assert_eq!(
        relay.observe(&s1b, T0).0,
        RelayDecision::Drop(DropReason::RateLimited)
    );
    // After a second of refill the same S1 passes.
    let later = Timestamp::from_millis(1000);
    assert_eq!(relay.observe(&s1b, later).0, RelayDecision::Forward);
}

#[test]
fn relay_verifies_verdicts() {
    let c = cfg(Algorithm::Sha1).with_reliability(Reliability::Reliable);
    let (mut alice, mut bob, mut relay, mut r) = relayed_pair(c, 24);
    let s1 = alice.sign(b"confirmed through relay", T0).unwrap();
    relay.observe(&s1, T0);
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    relay.observe(&a1, T0);
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    relay.observe(&s2, T0);
    let resp = bob.handle(&s2, T0, &mut r).unwrap();
    let a2 = resp.packets[0].clone();
    let (dec, events) = relay.observe(&a2, T0);
    assert_eq!(dec, RelayDecision::Forward);
    assert!(events
        .iter()
        .any(|e| matches!(e, RelayEvent::VerifiedVerdict { ack: true, .. })));
}

#[test]
fn relay_unknown_association_policy() {
    let (mut alice, mut bob, _relay, mut r) = relayed_pair(cfg(Algorithm::Sha1), 25);
    let s1 = alice.sign(b"x", T0).unwrap();
    let _ = bob.handle(&s1, T0, &mut r);
    // A relay that never saw the handshake:
    let mut strict = Relay::new(RelayConfig {
        forward_unknown: false,
        ..RelayConfig::default()
    });
    assert_eq!(
        strict.observe(&s1, T0).0,
        RelayDecision::Drop(DropReason::UnknownAssociation)
    );
    let mut loose = Relay::new(RelayConfig::default());
    assert_eq!(loose.observe(&s1, T0).0, RelayDecision::Forward);
}

// ---------------------------------------------------------------------
// Bootstrap
// ---------------------------------------------------------------------

#[test]
fn protected_bootstrap_rsa_pinned() {
    let mut r = rng(30);
    let alice_key = alpha_pk::rsa::RsaPrivateKey::generate(512, &mut r);
    let bob_key = alpha_pk::rsa::RsaPrivateKey::generate(512, &mut r);
    let c = cfg(Algorithm::Sha1);
    let (hs, init) = bootstrap::initiate(c, 5, Some(&alice_key), &mut r);
    let alice_pub = alpha_pk::PublicKey::Rsa(alice_key.public_key().clone());
    let bob_pub = alpha_pk::PublicKey::Rsa(bob_key.public_key().clone());
    let (_responder, reply, peer) = bootstrap::respond(
        c,
        &init,
        Some(&bob_key),
        AuthRequirement::Pinned(&alice_pub),
        &mut r,
    )
    .unwrap();
    assert_eq!(peer, Some(alice_pub));
    let (_initiator, peer) = hs
        .complete(&reply, AuthRequirement::Pinned(&bob_pub))
        .unwrap();
    assert_eq!(peer, Some(bob_pub));
}

#[test]
fn protected_bootstrap_ecdsa_tofu() {
    let mut r = rng(31);
    let key = alpha_pk::ecdsa::EcdsaPrivateKey::generate(&mut r);
    let c = cfg(Algorithm::Sha1);
    let (_hs, init) = bootstrap::initiate(c, 5, Some(&key), &mut r);
    let (_resp, _reply, peer) =
        bootstrap::respond(c, &init, None, AuthRequirement::AnyKey, &mut r).unwrap();
    assert!(matches!(peer, Some(alpha_pk::PublicKey::Ecdsa(_))));
}

#[test]
fn unauthenticated_handshake_rejected_when_auth_required() {
    let mut r = rng(32);
    let c = cfg(Algorithm::Sha1);
    let (_hs, init) = bootstrap::initiate(c, 5, None, &mut r);
    let err = bootstrap::respond(c, &init, None, AuthRequirement::AnyKey, &mut r)
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err, ProtocolError::BadAuth);
}

#[test]
fn tampered_handshake_signature_rejected() {
    let mut r = rng(33);
    let key = alpha_pk::ecdsa::EcdsaPrivateKey::generate(&mut r);
    let c = cfg(Algorithm::Sha1);
    let (_hs, mut init) = bootstrap::initiate(c, 5, Some(&key), &mut r);
    if let Body::Handshake(hs) = &mut init.body {
        // Attacker substitutes its own anchor but keeps the signature.
        hs.sig_anchor_index += 2;
    }
    let err = bootstrap::respond(c, &init, None, AuthRequirement::AnyKey, &mut r)
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err, ProtocolError::BadAuth);
}

#[test]
fn wrong_pinned_key_rejected() {
    let mut r = rng(34);
    let key = alpha_pk::ecdsa::EcdsaPrivateKey::generate(&mut r);
    let other = alpha_pk::ecdsa::EcdsaPrivateKey::generate(&mut r);
    let other_pub = other.verifying_key();
    let c = cfg(Algorithm::Sha1);
    let (_hs, init) = bootstrap::initiate(c, 5, Some(&key), &mut r);
    let err = bootstrap::respond(c, &init, None, AuthRequirement::Pinned(&other_pub), &mut r)
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err, ProtocolError::BadAuth);
}

// ---------------------------------------------------------------------
// Memory accounting (Tables 2 / 3 ground truth)
// ---------------------------------------------------------------------

#[test]
fn signer_buffer_matches_table2_shape() {
    let (mut alice, _bob, _r) = pair(cfg(Algorithm::Sha1), 40);
    assert_eq!(alice.signer().buffered_bytes(), 0);
    let msgs: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 100]).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    alice.sign_batch(&refs, Mode::Cumulative, T0).unwrap();
    // n messages of m bytes + one h-byte key: n·m + h (the key is shared,
    // the paper's n(m+h) upper-bounds per-message keys).
    assert_eq!(alice.signer().buffered_bytes(), 4 * 100 + 20);
}

#[test]
fn verifier_buffer_matches_table2_shape() {
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 41);
    let msgs: Vec<Vec<u8>> = (0..8).map(|_| vec![7u8; 50]).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    // ALPHA-C: verifier holds n·h.
    let s1 = alice.sign_batch(&refs, Mode::Cumulative, T0).unwrap();
    bob.handle(&s1, T0, &mut r).unwrap();
    assert_eq!(bob.verifier().buffered_bytes(), 8 * 20);
}

#[test]
fn merkle_verifier_buffer_is_constant() {
    let c = cfg(Algorithm::Sha1);
    for n in [2usize, 8, 32] {
        let mut r = rng(42);
        let (mut alice, mut bob) = Association::pair(c, 1, &mut r);
        let msgs: Vec<Vec<u8>> = (0..n).map(|_| vec![7u8; 50]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let s1 = alice.sign_batch(&refs, Mode::Merkle, T0).unwrap();
        bob.handle(&s1, T0, &mut r).unwrap();
        // ALPHA-M: one root regardless of n (Table 2's verifier column).
        assert_eq!(bob.verifier().buffered_bytes(), 20, "n={n}");
    }
}

#[test]
fn relay_forwards_retransmitted_s1_and_replayed_a1() {
    // Regression: a lost A1 makes the signer retransmit its S1 verbatim;
    // relays must forward the duplicate (and the verifier's replayed A1)
    // instead of dropping them as chain replays — the paper stresses that
    // "especially S1 and A1 packets require robust and fast retransmission".
    let (mut alice, mut bob, mut relay, mut r) = relayed_pair(cfg(Algorithm::Sha1), 26);
    let s1 = alice.sign(b"retry me", T0).unwrap();
    assert_eq!(relay.observe(&s1, T0).0, RelayDecision::Forward);
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    assert_eq!(relay.observe(&a1, T0).0, RelayDecision::Forward);
    // A1 lost; the RTO fires and the identical S1 crosses the relay again.
    let retx = alice.poll(Timestamp::from_millis(250));
    assert_eq!(retx.packets, vec![s1.clone()]);
    assert_eq!(
        relay.observe(&retx.packets[0], T0).0,
        RelayDecision::Forward
    );
    // Bob replays the same A1; the relay forwards that too.
    let a1_again = bob
        .handle(&retx.packets[0], T0, &mut r)
        .unwrap()
        .packet()
        .unwrap();
    assert_eq!(a1_again, a1);
    assert_eq!(relay.observe(&a1_again, T0).0, RelayDecision::Forward);
    // The exchange then completes through the relay.
    let s2 = alice
        .handle(&a1_again, T0, &mut r)
        .unwrap()
        .packets
        .remove(0);
    assert_eq!(relay.observe(&s2, T0).0, RelayDecision::Forward);
    assert_eq!(
        bob.handle(&s2, T0, &mut r).unwrap().payload().unwrap(),
        b"retry me"
    );
}

#[test]
fn forged_duplicate_s1_still_dropped() {
    // The duplicate-S1 path must not become a bypass: same index but a
    // different element (or no matching exchange) is still rejected.
    let (mut alice, mut bob, mut relay, mut r) = relayed_pair(cfg(Algorithm::Sha1), 27);
    let s1 = alice.sign(b"x", T0).unwrap();
    relay.observe(&s1, T0);
    let _ = bob.handle(&s1, T0, &mut r);
    let mut forged = s1.clone();
    if let Body::S1 { element, .. } = &mut forged.body {
        *element = alpha_crypto::Algorithm::Sha1.hash(b"not the element");
    }
    assert_eq!(
        relay.observe(&forged, T0).0,
        RelayDecision::Drop(DropReason::BadChainElement)
    );
}

#[test]
fn cumulative_merkle_forest_roundtrip() {
    // The ALPHA-C + ALPHA-M combination: 16 messages across 4 trees of 4.
    // Paths shrink to depth 2 instead of depth 4.
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 50);
    let msgs: Vec<Vec<u8>> = (0..16)
        .map(|i| format!("forest {i:02}").into_bytes())
        .collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let mode = Mode::CumulativeMerkle { leaves_per_tree: 4 };
    let s1 = alice.sign_batch(&refs, mode, T0).unwrap();
    match &s1.body {
        Body::S1 {
            presig: alpha_wire::PreSignature::MerkleForest(trees),
            ..
        } => {
            assert_eq!(trees.len(), 4);
            assert!(trees.iter().all(|t| t.leaves == 4));
        }
        other => panic!("expected forest, got {other:?}"),
    }
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let mut s2s = alice.handle(&a1, T0, &mut r).unwrap().packets;
    assert_eq!(s2s.len(), 16);
    for s2 in &s2s {
        if let Body::S2 { path, .. } = &s2.body {
            assert_eq!(path.len(), 2, "forest paths are log2(4) deep");
        }
    }
    s2s.reverse(); // out-of-order delivery still works
    let mut delivered = Vec::new();
    for s2 in &s2s {
        delivered.extend(bob.handle(s2, T0, &mut r).unwrap().deliveries);
    }
    delivered.sort_by_key(|(s, _)| *s);
    assert_eq!(delivered.len(), 16);
    for (i, (seq, payload)) in delivered.iter().enumerate() {
        assert_eq!(*seq as usize, i);
        assert_eq!(payload, &msgs[i]);
    }
}

#[test]
fn cumulative_merkle_uneven_last_tree() {
    // 10 messages across trees of 4: 4 + 4 + 2.
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 51);
    let msgs: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 40]).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let s1 = alice
        .sign_batch(&refs, Mode::CumulativeMerkle { leaves_per_tree: 4 }, T0)
        .unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let s2s = alice.handle(&a1, T0, &mut r).unwrap().packets;
    let mut count = 0;
    for s2 in &s2s {
        count += bob.handle(s2, T0, &mut r).unwrap().deliveries.len();
    }
    assert_eq!(count, 10);
}

#[test]
fn cumulative_merkle_reliable_with_amt() {
    // The combined mode acknowledges with one AMT over all messages.
    let c = cfg(Algorithm::Sha1).with_reliability(Reliability::Reliable);
    let (mut alice, mut bob, mut r) = pair(c, 52);
    let msgs: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 64]).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let s1 = alice
        .sign_batch(&refs, Mode::CumulativeMerkle { leaves_per_tree: 4 }, T0)
        .unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    match &a1.body {
        Body::A1 {
            commit: alpha_wire::AckCommit::Amt { leaves: 8, .. },
            ..
        } => {}
        other => panic!("expected 8-leaf AMT, got {other:?}"),
    }
    let s2s = alice.handle(&a1, T0, &mut r).unwrap().packets;
    for s2 in &s2s {
        let resp = bob.handle(s2, T0, &mut r).unwrap();
        for a2 in &resp.packets {
            alice.handle(a2, T0, &mut r).unwrap();
        }
    }
    assert!(alice.signer().is_idle());
}

#[test]
fn cumulative_merkle_tamper_rejected_per_tree() {
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 53);
    let msgs: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 64]).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let s1 = alice
        .sign_batch(&refs, Mode::CumulativeMerkle { leaves_per_tree: 4 }, T0)
        .unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let mut s2s = alice.handle(&a1, T0, &mut r).unwrap().packets;
    if let Body::S2 { payload, .. } = &mut s2s[5].body {
        payload[0] ^= 1;
    }
    assert_eq!(
        bob.handle(&s2s[5], T0, &mut r).unwrap_err(),
        ProtocolError::BadMac
    );
    // Other trees unaffected.
    assert_eq!(bob.handle(&s2s[0], T0, &mut r).unwrap().deliveries.len(), 1);
}

#[test]
fn forest_with_mismatched_tree_sizes_rejected() {
    // A forged forest whose interior trees differ in size is rejected
    // (ambiguous seq -> (tree, leaf) mapping).
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 54);
    let msgs: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 8]).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let mut s1 = alice
        .sign_batch(&refs, Mode::CumulativeMerkle { leaves_per_tree: 4 }, T0)
        .unwrap();
    if let Body::S1 {
        presig: alpha_wire::PreSignature::MerkleForest(trees),
        ..
    } = &mut s1.body
    {
        trees[0].leaves = 3; // interior tree no longer full
    }
    assert_eq!(
        bob.handle(&s1, T0, &mut r).unwrap_err(),
        ProtocolError::UnexpectedPacket
    );
}

#[test]
fn compact_chains_interoperate_transparently() {
    // Memory-constrained hosts with O(sqrt n) or O(log n) chain storage
    // talk to a full-storage host; the wire behaviour is identical.
    use alpha_core::ChainStorage;
    for storage in [ChainStorage::Sqrt, ChainStorage::Dyadic] {
        let mut r = rng(60);
        let small_cfg = cfg(Algorithm::Sha1)
            .with_chain_storage(storage)
            .with_chain_len(64);
        let full_cfg = cfg(Algorithm::Sha1).with_chain_len(64);
        let (hs, init) = bootstrap::initiate(small_cfg, 1, None, &mut r);
        let (mut bob, reply, _) =
            bootstrap::respond(full_cfg, &init, None, AuthRequirement::None, &mut r).unwrap();
        let (mut alice, _) = hs.complete(&reply, AuthRequirement::None).unwrap();
        for i in 0..5u32 {
            let msg = format!("compact {i}");
            let s1 = alice.sign(msg.as_bytes(), T0).unwrap();
            let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
            let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
            assert_eq!(
                bob.handle(&s2, T0, &mut r).unwrap().payload().unwrap(),
                msg.as_bytes(),
                "{storage:?}"
            );
        }
    }
}

#[test]
fn go_back_n_retransmits_suffix() {
    use alpha_core::Retransmit;
    let c = cfg(Algorithm::Sha1)
        .with_reliability(Reliability::Reliable)
        .with_retransmit(Retransmit::GoBackN);
    let (mut alice, mut bob, mut r) = pair(c, 61);
    let msgs: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 32]).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let s1 = alice.sign_batch(&refs, Mode::Merkle, T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let s2s = alice.handle(&a1, T0, &mut r).unwrap().packets;
    // Deliver seqs 0, 1, and a *tampered* seq 2; bob nacks seq 2.
    for s2 in &s2s[..2] {
        let resp = bob.handle(s2, T0, &mut r).unwrap();
        for a2 in &resp.packets {
            alice.handle(a2, T0, &mut r).unwrap();
        }
    }
    let mut bad = s2s[2].clone();
    if let Body::S2 { payload, .. } = &mut bad.body {
        payload[0] ^= 1;
    }
    let nack = bob.handle(&bad, T0, &mut r).unwrap().packets.remove(0);
    let out = alice.handle(&nack, T0, &mut r).unwrap();
    // Go-back-N: the nack for seq 2 triggers retransmission of 2..6, not
    // just 2.
    let reseqs: Vec<u32> = out
        .packets
        .iter()
        .map(|p| match &p.body {
            Body::S2 { seq, .. } => *seq,
            _ => panic!("expected S2"),
        })
        .collect();
    assert_eq!(reseqs, vec![2, 3, 4, 5]);
    // Complete the exchange.
    for s2 in &out.packets {
        let resp = bob.handle(s2, T0, &mut r).unwrap();
        for a2 in &resp.packets {
            alice.handle(a2, T0, &mut r).unwrap();
        }
    }
    assert!(alice.signer().is_idle());
}

// ---------------------------------------------------------------------
// Chain renewal
// ---------------------------------------------------------------------

#[test]
fn chain_renewal_end_to_end_through_relay() {
    // A short-chained association renews in-band; the peer AND the on-path
    // relay re-anchor from the verified renewal payload, and traffic
    // continues on the fresh chains.
    let c = cfg(Algorithm::Sha1)
        .with_chain_len(8)
        .with_reliability(Reliability::Reliable);
    let (mut alice, mut bob, mut relay, mut r) = relayed_pair(c, 70);

    // Exchange 1: ordinary traffic (consumes one pair).
    let s1 = alice.sign(b"before renewal", T0).unwrap();
    relay.observe(&s1, T0);
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    relay.observe(&a1, T0);
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    relay.observe(&s2, T0);
    let resp = bob.handle(&s2, T0, &mut r).unwrap();
    let a2 = resp.packets[0].clone();
    relay.observe(&a2, T0);
    alice.handle(&a2, T0, &mut r).unwrap();

    // Renewal exchange: alice announces fresh chains.
    let (offer, s1) = alice.begin_renewal(T0, &mut r).unwrap();
    assert_eq!(relay.observe(&s1, T0).0, RelayDecision::Forward);
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    relay.observe(&a1, T0);
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    let (dec, events) = relay.observe(&s2, T0);
    assert_eq!(dec, RelayDecision::Forward);
    assert!(!events.is_empty(), "relay verified the renewal payload");
    let resp = bob.handle(&s2, T0, &mut r).unwrap();
    assert!(resp.peer_renewed, "bob applied the renewal");
    assert!(
        resp.deliveries.is_empty(),
        "renewal payload is consumed internally"
    );
    let a2 = resp.packets[0].clone();
    relay.observe(&a2, T0);
    let fin = alice.handle(&a2, T0, &mut r).unwrap();
    assert!(fin.signer_events.contains(&SignerEvent::ExchangeComplete));
    alice.commit_renewal(offer).unwrap();

    // Bob renews too: each alice->bob exchange also consumes bob's
    // acknowledgment chain, so a long-lived association renews from both
    // ends.
    let (offer, s1) = bob.begin_renewal(T0, &mut r).unwrap();
    relay.observe(&s1, T0);
    let a1 = alice.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    relay.observe(&a1, T0);
    let s2 = bob.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    relay.observe(&s2, T0);
    let resp = alice.handle(&s2, T0, &mut r).unwrap();
    assert!(resp.peer_renewed, "alice applied bob's renewal");
    let a2 = resp.packets[0].clone();
    relay.observe(&a2, T0);
    bob.handle(&a2, T0, &mut r).unwrap();
    bob.commit_renewal(offer).unwrap();

    // Post-renewal traffic flows on the new chains, verified by bob AND
    // the relay.
    for i in 0..2u32 {
        let msg = format!("after renewal {i}");
        let s1 = alice.sign(msg.as_bytes(), T0).unwrap();
        assert_eq!(relay.observe(&s1, T0).0, RelayDecision::Forward, "i={i}");
        let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
        relay.observe(&a1, T0);
        let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
        let (dec, events) = relay.observe(&s2, T0);
        assert_eq!(dec, RelayDecision::Forward);
        assert!(events.iter().any(|e| matches!(
            e,
            alpha_core::RelayEvent::VerifiedPayload { payload, .. } if payload == msg.as_bytes()
        )));
        let resp = bob.handle(&s2, T0, &mut r).unwrap();
        assert_eq!(resp.payload().unwrap(), msg.as_bytes());
        let a2 = resp.packets[0].clone();
        relay.observe(&a2, T0);
        alice.handle(&a2, T0, &mut r).unwrap();
    }
}

#[test]
fn renewal_extends_chain_lifetime_past_exhaustion() {
    // chain_len 8 → 3 usable pairs per chain, and every alice→bob exchange
    // consumes a pair of alice's signature chain AND of bob's ack chain.
    // With both sides renewing every round, the association outlives its
    // original chains several times over.
    let c = cfg(Algorithm::Sha1).with_chain_len(8);
    let (mut alice, mut bob, mut r) = pair(c, 71);
    let mut delivered = 0;
    for round in 0..10 {
        // One data exchange.
        let msg = format!("round {round}");
        let s1 = alice.sign(msg.as_bytes(), T0).unwrap();
        let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
        let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
        delivered += bob.handle(&s2, T0, &mut r).unwrap().deliveries.len();
        // Alice renews (her sig + ack chains).
        let (offer, s1) = alice.begin_renewal(T0, &mut r).unwrap();
        let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
        let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
        let resp = bob.handle(&s2, T0, &mut r).unwrap();
        assert!(resp.peer_renewed, "round {round}");
        alice.commit_renewal(offer).unwrap();
        // Bob renews (his sig + ack chains).
        let (offer, s1) = bob.begin_renewal(T0, &mut r).unwrap();
        let a1 = alice.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
        let s2 = bob.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
        let resp = alice.handle(&s2, T0, &mut r).unwrap();
        assert!(resp.peer_renewed, "round {round}");
        bob.commit_renewal(offer).unwrap();
    }
    assert_eq!(delivered, 10, "far beyond the 3 exchanges one chain allows");
}

#[test]
fn renewal_cannot_be_committed_mid_exchange() {
    let (mut alice, _bob, mut r) = pair(cfg(Algorithm::Sha1), 72);
    let (offer, _s1) = alice.begin_renewal(T0, &mut r).unwrap();
    // The renewal exchange itself is still outstanding.
    assert_eq!(
        alice.commit_renewal(offer).map(|_| ()).unwrap_err(),
        ProtocolError::ExchangeInProgress
    );
}

#[test]
fn forged_renewal_payload_rejected_like_any_forgery() {
    // An attacker cannot inject a renewal: it rides in an ordinary S2 and
    // fails MAC verification like any tampered payload.
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 73);
    let (_offer, s1) = alice.begin_renewal(T0, &mut r).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let mut s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    if let Body::S2 { payload, .. } = &mut s2.body {
        // Attacker swaps in anchors of their own chains.
        let evil_cfg = cfg(Algorithm::Sha1);
        let (_evil, evil_payload) = alpha_core::renewal::offer(&evil_cfg, &mut r);
        *payload = evil_payload;
    }
    assert_eq!(
        bob.handle(&s2, T0, &mut r).unwrap_err(),
        ProtocolError::BadMac
    );
}

// ---------------------------------------------------------------------
// Control signalling (§1: end-host controlled, relay enforced)
// ---------------------------------------------------------------------

#[test]
fn signals_surface_to_application_not_deliveries() {
    use alpha_core::signal::Signal;
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 80);
    let sig = Signal::LocatorUpdate {
        locator: b"203.0.113.9:4500".to_vec(),
    };
    let s1 = alice.send_signal(&sig, T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    let resp = bob.handle(&s2, T0, &mut r).unwrap();
    assert!(resp.deliveries.is_empty());
    assert_eq!(resp.signals, vec![sig]);
}

#[test]
fn relay_enforces_signalled_rate_limit() {
    use alpha_core::signal::Signal;
    let (mut alice, mut bob, mut relay, mut r) = relayed_pair(cfg(Algorithm::Sha1), 81);

    // Bob signals: at most 300 payload bytes/second toward me.
    let s1 = bob
        .send_signal(&Signal::RateLimit { bytes_per_sec: 300 }, T0)
        .unwrap();
    relay.observe(&s1, T0);
    let a1 = alice.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    relay.observe(&a1, T0);
    let s2 = bob.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    assert_eq!(relay.observe(&s2, T0).0, RelayDecision::Forward);
    let resp = alice.handle(&s2, T0, &mut r).unwrap();
    assert_eq!(resp.signals.len(), 1);

    // Alice now pushes bundles; the relay forwards until the budget is
    // spent, then drops the excess *before* it reaches bob.
    let mut forwarded = 0u32;
    let mut dropped = 0u32;
    for i in 0..4 {
        let payload = vec![i as u8; 120];
        let s1 = alice.sign(&payload, T0).unwrap();
        relay.observe(&s1, T0);
        let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
        relay.observe(&a1, T0);
        let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
        match relay.observe(&s2, T0).0 {
            RelayDecision::Forward => {
                forwarded += 1;
                bob.handle(&s2, T0, &mut r).unwrap();
            }
            RelayDecision::Drop(DropReason::RateLimited) => dropped += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    // 300 B budget admits two 120 B payloads, not four.
    assert_eq!(forwarded, 2);
    assert_eq!(dropped, 2);
}

#[test]
fn relay_releases_state_on_verified_close() {
    use alpha_core::signal::Signal;
    let (mut alice, mut bob, mut relay, mut r) = relayed_pair(cfg(Algorithm::Sha1), 82);
    assert_eq!(relay.association_count(), 1);
    let s1 = alice.send_signal(&Signal::Close, T0).unwrap();
    relay.observe(&s1, T0);
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    relay.observe(&a1, T0);
    let s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    let (dec, events) = relay.observe(&s2, T0);
    assert_eq!(dec, RelayDecision::Forward, "the close itself is forwarded");
    assert!(!events.is_empty());
    assert_eq!(relay.association_count(), 0, "state released immediately");
    let resp = bob.handle(&s2, T0, &mut r).unwrap();
    assert_eq!(resp.signals, vec![Signal::Close]);
}

#[test]
fn forged_rate_limit_signal_cannot_be_injected() {
    use alpha_core::signal::Signal;
    // An attacker cannot throttle a flow by injecting a RateLimit: the
    // signal rides in an authenticated S2 like everything else.
    let (mut alice, mut bob, mut relay, mut r) = relayed_pair(cfg(Algorithm::Sha1), 83);
    let s1 = bob
        .send_signal(&Signal::RateLimit { bytes_per_sec: 1 }, T0)
        .unwrap();
    relay.observe(&s1, T0);
    let a1 = alice.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    relay.observe(&a1, T0);
    let mut s2 = bob.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    if let Body::S2 { payload, .. } = &mut s2.body {
        // Attacker rewrites the limit to zero.
        *payload = Signal::RateLimit { bytes_per_sec: 0 }.encode();
    }
    assert_eq!(
        relay.observe(&s2, T0).0,
        RelayDecision::Drop(DropReason::BadMac)
    );
}

// ---------------------------------------------------------------------
// State machine edge cases and size estimation
// ---------------------------------------------------------------------

#[test]
fn signer_rejects_out_of_state_packets() {
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 90);
    // A1 with no exchange outstanding.
    let s1 = alice.sign(b"x", T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let _ = alice.handle(&a1, T0, &mut r).unwrap(); // completes (unreliable)
    assert_eq!(
        alice.handle(&a1, T0, &mut r).unwrap_err(),
        ProtocolError::NoExchange
    );
    // A2 in unreliable mode.
    let s1 = alice.sign(b"y", T0).unwrap();
    let a2ish = alpha_wire::Packet {
        assoc_id: 1,
        alg: Algorithm::Sha1,
        chain_index: 1,
        body: Body::A2 {
            element: Algorithm::Sha1.hash(b"e"),
            disclosure: alpha_wire::A2Disclosure::Flat {
                ack: true,
                secret: [0; 16],
            },
        },
    };
    let err = alice.handle(&a2ish, T0, &mut r).unwrap_err();
    assert_eq!(err, ProtocolError::UnexpectedPacket);
    let _ = bob.handle(&s1, T0, &mut r);
}

#[test]
fn sign_input_validation() {
    let (mut alice, _bob, _r) = pair(cfg(Algorithm::Sha1), 91);
    assert_eq!(
        alice.sign_batch(&[], Mode::Cumulative, T0).unwrap_err(),
        ProtocolError::NoMessages
    );
    assert_eq!(
        alice.sign_batch(&[b"a", b"b"], Mode::Base, T0).unwrap_err(),
        ProtocolError::TooManyMessages
    );
    let huge = vec![0u8; alpha_wire::limits::MAX_PAYLOAD + 1];
    assert_eq!(
        alice.sign(&huge, T0).unwrap_err(),
        ProtocolError::PayloadTooLarge
    );
    assert_eq!(
        alice
            .sign_batch(&[b"a"], Mode::CumulativeMerkle { leaves_per_tree: 0 }, T0)
            .unwrap_err(),
        ProtocolError::TooManyMessages
    );
    // A second sign while one is outstanding.
    alice.sign(b"first", T0).unwrap();
    assert_eq!(
        alice.sign(b"second", T0).unwrap_err(),
        ProtocolError::ExchangeInProgress
    );
}

#[test]
fn s2_with_out_of_range_seq_rejected() {
    let (mut alice, mut bob, mut r) = pair(cfg(Algorithm::Sha1), 92);
    let s1 = alice
        .sign_batch(&[b"a", b"b"], Mode::Cumulative, T0)
        .unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let mut s2 = alice.handle(&a1, T0, &mut r).unwrap().packets.remove(0);
    if let Body::S2 { seq, .. } = &mut s2.body {
        *seq = 99;
    }
    assert_eq!(
        bob.handle(&s2, T0, &mut r).unwrap_err(),
        ProtocolError::BadSeq
    );
}

#[test]
fn s1_wire_len_estimates_match_reality() {
    let h = 20usize;
    for (mode, n) in [
        (Mode::Base, 1usize),
        (Mode::Cumulative, 20),
        (Mode::Merkle, 64),
        (Mode::CumulativeMerkle { leaves_per_tree: 8 }, 64),
    ] {
        let mut r = rng(93);
        let (mut alice, _bob) = Association::pair(cfg(Algorithm::Sha1), 1, &mut r);
        let msgs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 64]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let s1 = alice.sign_batch(&refs, mode, T0).unwrap();
        assert_eq!(s1.wire_len(), mode.s1_wire_len(n, h), "{mode:?}");
    }
}

#[test]
fn s2_overhead_estimates_match_reality() {
    let h = 20usize;
    for (mode, n) in [
        (Mode::Cumulative, 16usize),
        (Mode::Merkle, 16),
        (Mode::CumulativeMerkle { leaves_per_tree: 4 }, 16),
    ] {
        let mut r = rng(94);
        let (mut alice, mut bob) = Association::pair(cfg(Algorithm::Sha1), 1, &mut r);
        let msgs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 64]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let s1 = alice.sign_batch(&refs, mode, T0).unwrap();
        let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
        let s2 = &alice.handle(&a1, T0, &mut r).unwrap().packets[0];
        let (key_len, path_len) = match &s2.body {
            Body::S2 { key, path, .. } => (key.len(), path.iter().map(|d| d.len()).sum::<usize>()),
            _ => unreachable!(),
        };
        assert_eq!(key_len + path_len, mode.s2_overhead(n, h), "{mode:?}");
    }
}

#[test]
fn verifier_timeout_nacks_accelerate_repair() {
    // AMT mode: one S2 is lost. One RTO after the burst started, the
    // verifier nacks the missing seq on its own; the signer repairs
    // immediately instead of waiting out its (longer) timer.
    let c = cfg(Algorithm::Sha1)
        .with_reliability(Reliability::Reliable)
        .with_rto_micros(10_000);
    let (mut alice, mut bob, mut r) = pair(c, 95);
    let msgs: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 64]).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let s1 = alice.sign_batch(&refs, Mode::Merkle, T0).unwrap();
    let a1 = bob.handle(&s1, T0, &mut r).unwrap().packet().unwrap();
    let s2s = alice.handle(&a1, T0, &mut r).unwrap().packets;
    // Deliver all but seq 2; feed the resulting acks to alice.
    for (i, s2) in s2s.iter().enumerate() {
        if i == 2 {
            continue; // lost
        }
        for a2 in bob.handle(s2, T0, &mut r).unwrap().packets {
            alice.handle(&a2, T0, &mut r).unwrap();
        }
    }
    // One RTO later the VERIFIER emits a nack for seq 2.
    let t1 = Timestamp::from_micros(12_000);
    let nacks = bob.poll(t1).packets;
    assert_eq!(nacks.len(), 1, "verifier nacks the gap");
    let out = alice.handle(&nacks[0], t1, &mut r).unwrap();
    assert!(out.signer_events.contains(&SignerEvent::Nacked(2)));
    assert_eq!(out.packets.len(), 1, "immediate retransmission of seq 2");
    // Delivery completes.
    for a2 in bob.handle(&out.packets[0], t1, &mut r).unwrap().packets {
        alice.handle(&a2, t1, &mut r).unwrap();
    }
    assert!(alice.signer().is_idle());
    // Nacks are paced: polling again immediately emits nothing.
    assert!(bob.poll(t1.plus_micros(1)).packets.is_empty());
}
