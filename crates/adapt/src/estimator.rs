//! Per-flow channel estimation.
//!
//! The estimator turns per-exchange outcomes into three smoothed signals
//! the mode controller acts on:
//!
//! - **Loss** — an EWMA over the *retransmission fraction* of each
//!   exchange (retransmitted packets / packets sent). This deliberately
//!   measures *effective* loss as the signer experiences it: under the
//!   flat pre-ack commit (Base/ALPHA-C) a single lost S2 forces the whole
//!   bundle to be resent, so the same channel reads hotter in a
//!   retransmit-all mode than under AMT selective repeat. That
//!   amplification is exactly the cost the controller must steer away
//!   from, so it is a feature of the signal, not a bias to correct.
//! - **RTT** — RFC 6298 smoothing (SRTT/RTTVAR, RTO = SRTT + 4·RTTVAR)
//!   over S1→A1 samples, with Karn's rule: an exchange whose S1 was
//!   retransmitted contributes no sample.
//! - **Goodput per auth byte** — delivered payload bytes divided by
//!   authentication overhead bytes actually put on the wire, accounted on
//!   top of [`Mode::s1_wire_len`] / [`Mode::s2_overhead`]-shaped packets
//!   (the full S1, and every S2's non-payload bytes, retransmissions
//!   included). This is the efficiency the adaptive_modes bench sweeps.

use alpha_core::Mode;
use serde::Value;

use crate::AdaptConfig;

/// Which of the four operating modes an exchange used, without the
/// [`Mode::CumulativeMerkle`] payload (the controller tracks
/// `leaves_per_tree` separately in its configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeKind {
    /// One message per exchange.
    Base,
    /// ALPHA-C: flat pre-signature list, flat pre-ack.
    Cumulative,
    /// ALPHA-M: one Merkle root, per-S2 authentication paths, AMT acks.
    Merkle,
    /// ALPHA-C+M: a forest of shallow trees, AMT acks.
    CumulativeMerkle,
}

impl ModeKind {
    /// The kind of a concrete [`Mode`].
    #[must_use]
    pub fn of(mode: Mode) -> ModeKind {
        match mode {
            Mode::Base => ModeKind::Base,
            Mode::Cumulative => ModeKind::Cumulative,
            Mode::Merkle => ModeKind::Merkle,
            Mode::CumulativeMerkle { .. } => ModeKind::CumulativeMerkle,
        }
    }

    /// Stable lower-case label for JSON snapshots and CLI output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ModeKind::Base => "base",
            ModeKind::Cumulative => "cumulative",
            ModeKind::Merkle => "merkle",
            ModeKind::CumulativeMerkle => "cumulative-merkle",
        }
    }
}

/// The observed outcome of one signature exchange, as accumulated by
/// [`crate::FlowAdapt`] and fed to the estimator and policy.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeSample {
    /// Mode the exchange ran in.
    pub kind: ModeKind,
    /// Messages bundled under the S1.
    pub n: u32,
    /// Times the S1 was put on the wire (1 = no retransmission).
    pub s1_transmissions: u32,
    /// S2 packets put on the wire, retransmissions included.
    pub s2_transmissions: u32,
    /// Explicit nack verdicts received.
    pub nacks: u32,
    /// Authentication overhead bytes transmitted (full S1s plus the
    /// non-payload bytes of every S2).
    pub auth_bytes: u64,
    /// Payload bytes covered by the exchange (credited only when it
    /// completed).
    pub payload_bytes: u64,
    /// Karn-valid S1→A1 round-trip sample, if any.
    pub rtt_us: Option<u64>,
    /// Whether the exchange completed (false: abandoned after retries).
    pub completed: bool,
}

impl ExchangeSample {
    /// The retransmission fraction of this exchange in `[0, 1]`: the
    /// share of transmitted packets that were retransmissions. Abandoned
    /// exchanges saturate to 1.0 — every byte was spent without a
    /// delivery confirmation.
    #[must_use]
    pub fn loss_fraction(&self) -> f64 {
        if !self.completed {
            return 1.0;
        }
        let sent = self.s1_transmissions + self.s2_transmissions;
        if sent == 0 {
            return 0.0;
        }
        let expected = 1 + self.n.min(self.s2_transmissions);
        let retx = sent.saturating_sub(expected);
        f64::from(retx) / f64::from(sent)
    }
}

/// Smoothed per-flow channel state. See the module docs for the three
/// signals and their smoothing rules.
#[derive(Debug, Clone)]
pub struct ChannelEstimator {
    cfg: AdaptConfig,
    loss: f64,
    have_loss: bool,
    srtt_us: f64,
    rttvar_us: f64,
    have_rtt: bool,
    efficiency: f64,
    have_efficiency: bool,
    total_exchanges: u64,
    total_abandoned: u64,
    total_auth_bytes: u64,
    total_payload_bytes: u64,
}

impl ChannelEstimator {
    /// A fresh estimator with no samples.
    #[must_use]
    pub fn new(cfg: AdaptConfig) -> ChannelEstimator {
        ChannelEstimator {
            cfg,
            loss: 0.0,
            have_loss: false,
            srtt_us: 0.0,
            rttvar_us: 0.0,
            have_rtt: false,
            efficiency: 0.0,
            have_efficiency: false,
            total_exchanges: 0,
            total_abandoned: 0,
            total_auth_bytes: 0,
            total_payload_bytes: 0,
        }
    }

    /// Fold one finished exchange into the smoothed signals.
    pub fn observe(&mut self, sample: &ExchangeSample) {
        let a = self.cfg.loss_alpha;
        let loss = sample.loss_fraction();
        if self.have_loss {
            self.loss = (1.0 - a) * self.loss + a * loss;
        } else {
            self.loss = loss;
            self.have_loss = true;
        }
        if sample.auth_bytes > 0 {
            let eff = sample.payload_bytes as f64 / sample.auth_bytes as f64;
            if self.have_efficiency {
                self.efficiency = (1.0 - a) * self.efficiency + a * eff;
            } else {
                self.efficiency = eff;
                self.have_efficiency = true;
            }
        }
        if let Some(rtt) = sample.rtt_us {
            self.rtt_sample(rtt);
        }
        self.total_exchanges += 1;
        if !sample.completed {
            self.total_abandoned += 1;
        }
        self.total_auth_bytes += sample.auth_bytes;
        self.total_payload_bytes += sample.payload_bytes;
    }

    /// Fold one RTT measurement (RFC 6298 §2).
    pub fn rtt_sample(&mut self, rtt_us: u64) {
        let r = rtt_us as f64;
        if self.have_rtt {
            // RTTVAR before SRTT, per the RFC's update order.
            self.rttvar_us = 0.75 * self.rttvar_us + 0.25 * (self.srtt_us - r).abs();
            self.srtt_us = 0.875 * self.srtt_us + 0.125 * r;
        } else {
            self.srtt_us = r;
            self.rttvar_us = r / 2.0;
            self.have_rtt = true;
        }
    }

    /// Smoothed effective loss estimate in `[0, 1]` (0.0 until the first
    /// sample).
    #[must_use]
    pub fn loss_estimate(&self) -> f64 {
        if self.have_loss {
            self.loss
        } else {
            0.0
        }
    }

    /// Smoothed round-trip time (µs), `None` until the first Karn-valid
    /// sample.
    #[must_use]
    pub fn srtt_us(&self) -> Option<u64> {
        self.have_rtt.then_some(self.srtt_us as u64)
    }

    /// Smoothed round-trip variance (µs), `None` until the first sample.
    #[must_use]
    pub fn rttvar_us(&self) -> Option<u64> {
        self.have_rtt.then_some(self.rttvar_us as u64)
    }

    /// RFC 6298 retransmission timeout `SRTT + 4·RTTVAR`, clamped to the
    /// configured bounds; `None` until an RTT sample exists.
    #[must_use]
    pub fn rto_us(&self) -> Option<u64> {
        self.have_rtt.then(|| {
            let rto = self.srtt_us + 4.0 * self.rttvar_us;
            (rto as u64).clamp(self.cfg.min_rto_us, self.cfg.max_rto_us)
        })
    }

    /// Smoothed goodput per authentication byte (payload bytes delivered
    /// per overhead byte transmitted); 0.0 until the first sample.
    #[must_use]
    pub fn goodput_per_auth_byte(&self) -> f64 {
        if self.have_efficiency {
            self.efficiency
        } else {
            0.0
        }
    }

    /// Lifetime goodput per auth byte (totals, not smoothed).
    #[must_use]
    pub fn lifetime_goodput_per_auth_byte(&self) -> f64 {
        if self.total_auth_bytes == 0 {
            0.0
        } else {
            self.total_payload_bytes as f64 / self.total_auth_bytes as f64
        }
    }

    /// Exchanges observed.
    #[must_use]
    pub fn exchanges(&self) -> u64 {
        self.total_exchanges
    }

    /// Exchanges abandoned after exhausting retransmissions.
    #[must_use]
    pub fn abandoned(&self) -> u64 {
        self.total_abandoned
    }

    /// Total authentication overhead bytes observed.
    #[must_use]
    pub fn auth_bytes(&self) -> u64 {
        self.total_auth_bytes
    }

    /// Total payload bytes credited.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.total_payload_bytes
    }

    /// Freeze the smoothed signals and lifetime counters for hibernation.
    /// [`ChannelEstimator::restore`] rebuilds an estimator whose every
    /// observable (and every future update) matches this one exactly.
    #[must_use]
    pub fn freeze(&self) -> FrozenEstimator {
        FrozenEstimator {
            loss: self.loss,
            have_loss: self.have_loss,
            srtt_us: self.srtt_us,
            rttvar_us: self.rttvar_us,
            have_rtt: self.have_rtt,
            efficiency: self.efficiency,
            have_efficiency: self.have_efficiency,
            total_exchanges: self.total_exchanges,
            total_abandoned: self.total_abandoned,
            total_auth_bytes: self.total_auth_bytes,
            total_payload_bytes: self.total_payload_bytes,
        }
    }

    /// Rebuild an estimator from a hibernation snapshot.
    #[must_use]
    pub fn restore(cfg: AdaptConfig, frozen: &FrozenEstimator) -> ChannelEstimator {
        ChannelEstimator {
            cfg,
            loss: frozen.loss,
            have_loss: frozen.have_loss,
            srtt_us: frozen.srtt_us,
            rttvar_us: frozen.rttvar_us,
            have_rtt: frozen.have_rtt,
            efficiency: frozen.efficiency,
            have_efficiency: frozen.have_efficiency,
            total_exchanges: frozen.total_exchanges,
            total_abandoned: frozen.total_abandoned,
            total_auth_bytes: frozen.total_auth_bytes,
            total_payload_bytes: frozen.total_payload_bytes,
        }
    }

    /// JSON snapshot of every smoothed signal and lifetime counter.
    #[must_use]
    pub fn snapshot(&self) -> Value {
        Value::object([
            ("loss".to_owned(), Value::F64(self.loss_estimate())),
            (
                "srtt_us".to_owned(),
                Value::U64(self.srtt_us().unwrap_or(0)),
            ),
            (
                "rttvar_us".to_owned(),
                Value::U64(self.rttvar_us().unwrap_or(0)),
            ),
            ("rto_us".to_owned(), Value::U64(self.rto_us().unwrap_or(0))),
            (
                "goodput_per_auth_byte".to_owned(),
                Value::F64(self.goodput_per_auth_byte()),
            ),
            (
                "lifetime_goodput_per_auth_byte".to_owned(),
                Value::F64(self.lifetime_goodput_per_auth_byte()),
            ),
            ("exchanges".to_owned(), Value::U64(self.total_exchanges)),
            ("abandoned".to_owned(), Value::U64(self.total_abandoned)),
            ("auth_bytes".to_owned(), Value::U64(self.total_auth_bytes)),
            (
                "payload_bytes".to_owned(),
                Value::U64(self.total_payload_bytes),
            ),
        ])
    }
}

/// The hibernated form of a [`ChannelEstimator`]: every smoothed signal
/// and lifetime counter, without the (engine-wide) configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrozenEstimator {
    /// EWMA effective-loss signal.
    pub loss: f64,
    /// Whether `loss` has ever been seeded.
    pub have_loss: bool,
    /// Smoothed round-trip time (µs).
    pub srtt_us: f64,
    /// Smoothed round-trip variance (µs).
    pub rttvar_us: f64,
    /// Whether an RTT sample has been folded in.
    pub have_rtt: bool,
    /// EWMA goodput-per-auth-byte signal.
    pub efficiency: f64,
    /// Whether `efficiency` has ever been seeded.
    pub have_efficiency: bool,
    /// Exchanges observed.
    pub total_exchanges: u64,
    /// Exchanges abandoned.
    pub total_abandoned: u64,
    /// Lifetime authentication overhead bytes.
    pub total_auth_bytes: u64,
    /// Lifetime payload bytes.
    pub total_payload_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_sample(n: u32) -> ExchangeSample {
        ExchangeSample {
            kind: ModeKind::Cumulative,
            n,
            s1_transmissions: 1,
            s2_transmissions: n,
            nacks: 0,
            auth_bytes: 100,
            payload_bytes: 1000,
            rtt_us: Some(10_000),
            completed: true,
        }
    }

    #[test]
    fn loss_fraction_counts_retransmissions() {
        let mut s = clean_sample(8);
        assert_eq!(s.loss_fraction(), 0.0);
        s.s2_transmissions = 16; // the whole bundle resent once
        let sent = 1.0 + 16.0;
        assert!((s.loss_fraction() - 8.0 / sent).abs() < 1e-9);
        s.completed = false;
        assert_eq!(s.loss_fraction(), 1.0);
    }

    #[test]
    fn ewma_loss_converges_and_decays() {
        let mut est = ChannelEstimator::new(AdaptConfig::default());
        for _ in 0..20 {
            let mut s = clean_sample(8);
            s.s2_transmissions = 16;
            est.observe(&s);
        }
        let hot = est.loss_estimate();
        assert!(hot > 0.3, "loss should read hot, got {hot}");
        for _ in 0..30 {
            est.observe(&clean_sample(8));
        }
        assert!(est.loss_estimate() < 0.05);
    }

    #[test]
    fn rfc6298_rto_tracks_srtt_and_var() {
        let mut est = ChannelEstimator::new(AdaptConfig::default());
        est.rtt_sample(100_000);
        assert_eq!(est.srtt_us(), Some(100_000));
        assert_eq!(est.rttvar_us(), Some(50_000));
        assert_eq!(est.rto_us(), Some(300_000));
        for _ in 0..50 {
            est.rtt_sample(100_000);
        }
        // Stable samples shrink the variance term toward the floor.
        assert!(est.rto_us().unwrap() < 150_000);
        assert!(est.rto_us().unwrap() >= AdaptConfig::default().min_rto_us);
    }

    #[test]
    fn goodput_accounting_uses_totals() {
        let mut est = ChannelEstimator::new(AdaptConfig::default());
        est.observe(&clean_sample(4));
        est.observe(&clean_sample(4));
        assert!((est.lifetime_goodput_per_auth_byte() - 10.0).abs() < 1e-9);
        assert_eq!(est.exchanges(), 2);
        let snap = est.snapshot();
        assert_eq!(snap.get("exchanges").unwrap().as_u64(), Some(2));
        assert!(snap.get("loss").unwrap().as_f64().unwrap() < 1e-9);
    }
}
