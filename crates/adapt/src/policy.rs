//! Mode/bundle-size control policies.
//!
//! The default [`HysteresisPolicy`] is a three-rung ladder over the
//! loss estimate, with AIMD bundle sizing inside each rung:
//!
//! ```text
//!   loss →   Cumulative  ⇄  CumulativeMerkle  ⇄  Merkle
//!            (flat acks)     (shallow forest,     (single root,
//!                             AMT selective        smallest S1,
//!                             repeat)              AMT selective
//!                                                  repeat)
//! ```
//!
//! Rationale (§3.3 of the paper): ALPHA-C amortizes one S1 over n
//! messages at one hash of overhead each — unbeatable on a clean
//! channel — but its flat pre-ack is all-or-nothing, so one lost S2
//! resends the whole bundle and the expected cost grows like
//! `(1-p)^-n`. The Merkle modes pay `h·(log₂ + 1)` per packet but their
//! AMT verdicts enable selective repeat, so cost grows only like
//! `(1-p)^-1`. C+M with shallow trees is the middle point; pure ALPHA-M
//! is the storm rung: its S1 is the smallest of any bundled mode (one
//! root regardless of n), maximizing the chance the exchange opens at
//! all when every packet is a coin toss, and each S2 verifies
//! independently.
//!
//! Rung changes are damped twice: the **raw per-exchange loss sample**
//! must sit beyond the threshold for [`AdaptConfig::dwell`] consecutive
//! exchanges (one amplified flat-ack spike decaying through the EWMA
//! cannot fake a streak — any clean exchange resets it), and the enter
//! thresholds are strictly above the exit thresholds, so a flow
//! oscillating around one threshold latches instead of flapping.
//!
//! Bundle size is AIMD per rung: doubled after a retransmission-free
//! exchange, halved on any loss, always a power of two within the
//! rung's floor/cap.

use crate::estimator::{ChannelEstimator, ExchangeSample, ModeKind};
use crate::AdaptConfig;
use alpha_core::Mode;

/// What the controller wants the next exchange to look like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Operating mode family.
    pub kind: ModeKind,
    /// Target bundle size (messages under one S1), a power of two.
    pub n: usize,
}

impl Decision {
    /// The concrete [`Mode`] for a bundle of `take` messages
    /// (`take ≤ self.n`; short final batches degrade gracefully).
    /// A single-message cumulative bundle is exactly Base mode, and a
    /// one-leaf tree is pointless, so `take == 1` always maps to Base —
    /// its S1 is the smallest of all (§3.3 Fig. 2).
    #[must_use]
    pub fn mode_for(&self, take: usize, leaves_per_tree: usize) -> Mode {
        if take <= 1 {
            return Mode::Base;
        }
        match self.kind {
            ModeKind::Base => Mode::Base,
            ModeKind::Cumulative => Mode::Cumulative,
            ModeKind::Merkle => Mode::Merkle,
            ModeKind::CumulativeMerkle => Mode::CumulativeMerkle {
                leaves_per_tree: leaves_per_tree.max(1).min(take),
            },
        }
    }
}

/// A pluggable mode/bundle controller. Implementations are consulted
/// once per finished exchange with the smoothed channel state, the raw
/// sample, and their previous decision.
pub trait ModePolicy: std::fmt::Debug + Send + Sync {
    /// Pick the mode and bundle size for the next exchange.
    fn decide(
        &mut self,
        est: &ChannelEstimator,
        sample: &ExchangeSample,
        prev: Decision,
    ) -> Decision;

    /// The decision to use before any exchange has completed.
    fn initial(&self) -> Decision;

    /// Clone this policy with its full control state (lets flow state
    /// holding a boxed policy stay `Clone`).
    fn clone_box(&self) -> Box<dyn ModePolicy>;
}

impl Clone for Box<dyn ModePolicy> {
    fn clone(&self) -> Box<dyn ModePolicy> {
        self.clone_box()
    }
}

/// Ladder rungs, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Rung {
    Cumulative,
    Forest,
    Merkle,
}

impl Rung {
    fn kind(self) -> ModeKind {
        match self {
            Rung::Cumulative => ModeKind::Cumulative,
            Rung::Forest => ModeKind::CumulativeMerkle,
            Rung::Merkle => ModeKind::Merkle,
        }
    }
}

/// The default threshold ladder with dwell-count hysteresis (see the
/// module docs for the rationale).
#[derive(Debug, Clone)]
pub struct HysteresisPolicy {
    cfg: AdaptConfig,
    rung: Rung,
    n: usize,
    /// Consecutive exchanges whose raw loss sample was beyond the next
    /// rung's enter threshold.
    escalate_streak: u32,
    /// Consecutive exchanges whose raw loss sample was below the
    /// current rung's exit threshold.
    relax_streak: u32,
    /// Consecutive retransmission-free exchanges, for damped AIMD
    /// growth.
    clean_streak: u32,
}

impl HysteresisPolicy {
    /// A policy starting on the Cumulative rung with the minimum bundle.
    #[must_use]
    pub fn new(cfg: AdaptConfig) -> HysteresisPolicy {
        HysteresisPolicy {
            cfg,
            rung: Rung::Cumulative,
            n: cfg.min_n.max(1).next_power_of_two(),
            escalate_streak: 0,
            relax_streak: 0,
            clean_streak: 0,
        }
    }

    /// `(floor, cap)` for the bundle size on a rung. The forest rung
    /// keeps at least one full tree; the Merkle rung caps n so the
    /// per-S2 path (`log₂ n` hashes) stays shallow.
    fn n_bounds(&self, rung: Rung) -> (usize, usize) {
        let cap = self.cfg.max_n.max(1);
        match rung {
            Rung::Cumulative => (self.cfg.min_n.max(1), cap),
            Rung::Forest => (self.cfg.leaves_per_tree.max(2).min(cap), cap),
            Rung::Merkle => (2.min(cap), self.cfg.merkle_max_n.max(2).min(cap)),
        }
    }

    /// Advance the dwell streaks with one exchange's **raw** loss
    /// sample and move the rung when a streak reaches `dwell`.
    ///
    /// Streaks deliberately count raw samples, not the EWMA: with
    /// flat-ack bundles a single lost packet amplifies into a resend of
    /// the whole bundle, so one unlucky exchange produces a loss spike
    /// that would sit above the enter threshold for several exchanges
    /// while it decays through the EWMA. Raw samples make a streak mean
    /// "`dwell` *independently* bad exchanges in a row", which is
    /// vanishingly unlikely on a clean channel but near-certain under
    /// sustained loss.
    ///
    /// `shrunk` says AIMD has already collapsed the bundle to the rung
    /// floor. Escalation only counts while it holds: the cheap response
    /// to loss is a smaller bundle, and at a large `n` a single short
    /// burst amplifies into a misleadingly large raw sample (one lost
    /// packet resends the whole bundle). Only when loss persists *after*
    /// the bundle has been shrunk is a mode change warranted — that is
    /// what separates sustained loss from occasional bursts.
    fn step(&mut self, loss: f64, shrunk: bool) {
        let c = &self.cfg;
        let (enter_next, exit_here) = match self.rung {
            Rung::Cumulative => (Some(c.forest_enter_loss), None),
            Rung::Forest => (Some(c.merkle_enter_loss), Some(c.forest_exit_loss)),
            Rung::Merkle => (None, Some(c.merkle_exit_loss)),
        };
        if shrunk && enter_next.is_some_and(|t| loss >= t) {
            self.escalate_streak += 1;
        } else {
            self.escalate_streak = 0;
        }
        if exit_here.is_some_and(|t| loss <= t) {
            self.relax_streak += 1;
        } else {
            self.relax_streak = 0;
        }
        if self.escalate_streak >= c.dwell {
            self.rung = match self.rung {
                Rung::Cumulative => Rung::Forest,
                Rung::Forest | Rung::Merkle => Rung::Merkle,
            };
            self.escalate_streak = 0;
            self.relax_streak = 0;
        } else if self.relax_streak >= c.dwell {
            self.rung = match self.rung {
                Rung::Merkle => Rung::Forest,
                Rung::Forest | Rung::Cumulative => Rung::Cumulative,
            };
            self.escalate_streak = 0;
            self.relax_streak = 0;
        }
    }
}

/// Largest power of two `≤ x` (1 for `x == 0`).
fn pow2_at_most(x: usize) -> usize {
    if x == 0 {
        1
    } else {
        1 << (usize::BITS - 1 - x.leading_zeros())
    }
}

impl ModePolicy for HysteresisPolicy {
    fn decide(
        &mut self,
        _est: &ChannelEstimator,
        sample: &ExchangeSample,
        _prev: Decision,
    ) -> Decision {
        let (floor, _) = self.n_bounds(self.rung);
        let shrunk = self.n <= (floor * 2).max(2);
        self.step(sample.loss_fraction(), shrunk);
        // Bounds follow the (possibly new) rung chosen above.
        let (floor, cap) = self.n_bounds(self.rung);
        // AIMD in powers of two: back off on any retransmission or
        // abandonment, grow on a retransmission-free exchange — but only
        // from the *second* consecutive clean one. Holding after a
        // backoff keeps the random walk from bouncing a full factor of
        // two on every isolated burst, which moves the AIMD equilibrium
        // from P(dirty) ≈ 1/2 down to ≈ 0.38 and roughly halves the
        // oscillation amplitude around it.
        let clean = sample.completed && sample.loss_fraction() == 0.0 && sample.nacks == 0;
        self.clean_streak = if clean { self.clean_streak + 1 } else { 0 };
        let next = if clean && self.clean_streak >= 2 {
            self.n.saturating_mul(2)
        } else if clean {
            self.n
        } else {
            self.n / 2
        };
        self.n = pow2_at_most(next.clamp(floor.max(1), cap.max(1)));
        if self.n < floor {
            self.n = floor.next_power_of_two().min(pow2_at_most(cap.max(1)));
        }
        Decision {
            kind: self.rung.kind(),
            n: self.n.max(1),
        }
    }

    fn initial(&self) -> Decision {
        Decision {
            kind: self.rung.kind(),
            n: self.n,
        }
    }

    fn clone_box(&self) -> Box<dyn ModePolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: ModeKind, n: u32, retx: u32, completed: bool) -> ExchangeSample {
        ExchangeSample {
            kind,
            n,
            s1_transmissions: 1,
            s2_transmissions: n + retx,
            nacks: 0,
            auth_bytes: 100,
            payload_bytes: if completed { 256 * u64::from(n) } else { 0 },
            rtt_us: None,
            completed,
        }
    }

    fn drive(
        policy: &mut HysteresisPolicy,
        est: &mut ChannelEstimator,
        s: ExchangeSample,
    ) -> Decision {
        est.observe(&s);
        let prev = policy.initial();
        policy.decide(est, &s, prev)
    }

    #[test]
    fn clean_channel_grows_cumulative_bundles() {
        let cfg = AdaptConfig::default();
        let mut p = HysteresisPolicy::new(cfg);
        let mut est = ChannelEstimator::new(cfg);
        let mut d = p.initial();
        for _ in 0..10 {
            d = drive(
                &mut p,
                &mut est,
                sample(ModeKind::Cumulative, d.n as u32, 0, true),
            );
        }
        assert_eq!(d.kind, ModeKind::Cumulative);
        assert_eq!(d.n, cfg.max_n);
        assert!(d.n.is_power_of_two());
    }

    #[test]
    fn sustained_loss_escalates_to_merkle_and_recovers() {
        let cfg = AdaptConfig::default();
        let mut p = HysteresisPolicy::new(cfg);
        let mut est = ChannelEstimator::new(cfg);
        let mut d = p.initial();
        // Heavy loss: whole-bundle retransmissions, some abandonments.
        let mut seen = vec![d.kind];
        for i in 0..30 {
            let n = d.n as u32;
            d = drive(&mut p, &mut est, sample(d.kind, n, 2 * n, i % 3 != 0));
            seen.push(d.kind);
        }
        assert_eq!(
            d.kind,
            ModeKind::Merkle,
            "ladder should top out, saw {seen:?}"
        );
        assert!(d.n <= cfg.merkle_max_n);
        // Ladder steps through the forest rung on the way up.
        assert!(seen.contains(&ModeKind::CumulativeMerkle));
        // Recovery: clean exchanges walk back down to Cumulative.
        for _ in 0..30 {
            d = drive(&mut p, &mut est, sample(d.kind, d.n as u32, 0, true));
        }
        assert_eq!(d.kind, ModeKind::Cumulative);
    }

    #[test]
    fn hysteresis_latches_between_exit_and_enter_thresholds() {
        let cfg = AdaptConfig::default();
        let mut p = HysteresisPolicy::new(cfg);
        let mut est = ChannelEstimator::new(cfg);
        // Push the flow onto the forest rung with moderate loss...
        let mut d = p.initial();
        for _ in 0..10 {
            d = drive(&mut p, &mut est, sample(d.kind, 8, 3, true));
        }
        assert_eq!(d.kind, ModeKind::CumulativeMerkle);
        // ...then hold the loss estimate in the dead band between
        // forest_exit_loss and merkle_enter_loss: one mild-loss exchange
        // alternating with one clean one. The rung must latch — zero
        // further switches in either direction.
        let mut switches = 0;
        let mut prev_kind = d.kind;
        for i in 0..40 {
            let retx = if i % 2 == 0 { 1 } else { 0 };
            d = drive(&mut p, &mut est, sample(d.kind, 8, retx, true));
            let loss = est.loss_estimate();
            assert!(
                loss > cfg.forest_exit_loss && loss < cfg.merkle_enter_loss,
                "test drifted out of the dead band: {loss}"
            );
            if d.kind != prev_kind {
                switches += 1;
            }
            prev_kind = d.kind;
        }
        assert_eq!(switches, 0, "rung flapped inside the dead band");
        assert_eq!(d.kind, ModeKind::CumulativeMerkle);
    }

    #[test]
    fn decision_maps_to_concrete_modes() {
        let d = Decision {
            kind: ModeKind::CumulativeMerkle,
            n: 16,
        };
        assert_eq!(
            d.mode_for(16, 4),
            Mode::CumulativeMerkle { leaves_per_tree: 4 }
        );
        assert_eq!(d.mode_for(1, 4), Mode::Base);
        let m = Decision {
            kind: ModeKind::Merkle,
            n: 8,
        };
        assert_eq!(m.mode_for(8, 4), Mode::Merkle);
        assert_eq!(m.mode_for(3, 4), Mode::Merkle);
    }
}
