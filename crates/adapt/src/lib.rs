#![warn(missing_docs)]

//! The ALPHA adaptation plane: per-flow channel estimation and online
//! mode / bundle-size control.
//!
//! The "A" in ALPHA is *adaptive*: §3.3 of the paper frames Base,
//! ALPHA-C, ALPHA-M and C+M as points on a latency/overhead/buffer
//! trade-off that an association should move between **per exchange**.
//! This crate is the control plane behind that claim:
//!
//! - [`ChannelEstimator`] — EWMA effective-loss, RFC 6298 SRTT/RTTVAR/RTO
//!   (with Karn's rule), and goodput-per-auth-byte accounting.
//! - [`ModePolicy`] / [`HysteresisPolicy`] — a pluggable controller; the
//!   default is a dwell-damped threshold ladder
//!   `Cumulative ⇄ CumulativeMerkle ⇄ Merkle` with AIMD power-of-two
//!   bundle sizing.
//! - [`FlowAdapt`] — the per-flow facade the engine, simulator and
//!   benches embed: it watches outgoing S1/S2 packets and
//!   [`SignerEvent`]s, closes the loop after every exchange, and answers
//!   [`FlowAdapt::plan`] with the mode and bundle size for the next one.
//!
//! Everything here is sans-io and allocation-light, in the style of
//! `alpha-core`: the caller feeds packets, events and timestamps in and
//! reads decisions out. Nothing reads a clock or does I/O.

mod estimator;
mod policy;

pub use estimator::{ChannelEstimator, ExchangeSample, FrozenEstimator, ModeKind};
pub use policy::{Decision, HysteresisPolicy, ModePolicy};

use alpha_core::{Mode, SignerEvent, Timestamp};
use alpha_wire::{Body, Packet};
use serde::Value;

/// Tunables for the estimator and the default policy. `Copy` so it can
/// ride inside engine configuration structs.
#[derive(Debug, Clone, Copy)]
pub struct AdaptConfig {
    /// EWMA gain for the loss and efficiency signals (0 < α ≤ 1).
    pub loss_alpha: f64,
    /// Smallest bundle size the controller may pick.
    pub min_n: usize,
    /// Largest bundle size the controller may pick (power of two).
    pub max_n: usize,
    /// Bundle-size cap on the Merkle rung (keeps per-S2 paths shallow).
    pub merkle_max_n: usize,
    /// Messages per tree in CumulativeMerkle mode.
    pub leaves_per_tree: usize,
    /// Consecutive beyond-threshold exchanges before a rung change.
    pub dwell: u32,
    /// Raw per-exchange loss sample at which Cumulative escalates to
    /// the forest rung. Set well above the spike one short burst causes
    /// inside a large flat-ack bundle, so only *sustained* loss climbs
    /// the ladder.
    pub forest_enter_loss: f64,
    /// Raw loss sample below which the forest rung relaxes to
    /// Cumulative.
    pub forest_exit_loss: f64,
    /// Raw loss sample at which the forest rung escalates to Merkle.
    pub merkle_enter_loss: f64,
    /// Raw loss sample below which Merkle relaxes to the forest rung.
    pub merkle_exit_loss: f64,
    /// Lower clamp for the RFC 6298 RTO (µs).
    pub min_rto_us: u64,
    /// Upper clamp for the RFC 6298 RTO (µs).
    pub max_rto_us: u64,
}

impl Default for AdaptConfig {
    fn default() -> AdaptConfig {
        AdaptConfig {
            loss_alpha: 0.25,
            min_n: 1,
            max_n: 64,
            merkle_max_n: 16,
            leaves_per_tree: 4,
            dwell: 3,
            forest_enter_loss: 0.15,
            forest_exit_loss: 0.02,
            merkle_enter_loss: 0.30,
            merkle_exit_loss: 0.15,
            min_rto_us: 20_000,
            max_rto_us: 2_000_000,
        }
    }
}

/// One controller decision change, kept in a bounded per-flow log so
/// tests (and operators) can audit convergence and flap rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchRecord {
    /// Index of the exchange whose outcome triggered the switch
    /// (1-based: the first exchange is 1).
    pub exchange: u64,
    /// Decision before the switch.
    pub from: Decision,
    /// Decision after the switch.
    pub to: Decision,
    /// Loss estimate at the moment of the switch.
    pub loss: f64,
}

/// Accumulator for the exchange currently in flight.
#[derive(Debug, Clone)]
struct InFlight {
    kind: ModeKind,
    n: u32,
    payload_bytes: u64,
    started: Timestamp,
    s1_transmissions: u32,
    s2_transmissions: u32,
    nacks: u32,
    auth_bytes: u64,
    rtt_us: Option<u64>,
}

/// Per-flow adaptation state: one estimator, one policy, one in-flight
/// exchange accumulator, and a bounded switch log.
///
/// Protocol integration (the engine, the simulator and the benches all
/// follow the same shape):
///
/// 1. [`FlowAdapt::plan`] → `(Mode, take)` for the next bundle.
/// 2. [`FlowAdapt::begin_exchange`] right after `sign_batch` succeeds.
/// 3. [`FlowAdapt::observe`] on every signer-side response — outgoing
///    packets **and** signer events together (S1/S2 retransmissions from
///    `poll` included).
/// 4. [`FlowAdapt::on_a1`] when an A1 for the flow arrives (RTT).
///
/// The exchange closes itself on `ExchangeComplete` /
/// `ExchangeAbandoned`, feeds the estimator, consults the policy, and
/// logs a [`SwitchRecord`] when the decision changed.
#[derive(Debug, Clone)]
pub struct FlowAdapt {
    cfg: AdaptConfig,
    est: ChannelEstimator,
    policy: Box<dyn ModePolicy>,
    decision: Decision,
    cur: Option<InFlight>,
    switches: Vec<SwitchRecord>,
    switches_total: u64,
}

/// Switch records kept per flow (oldest dropped first).
const SWITCH_LOG_CAP: usize = 128;

impl FlowAdapt {
    /// A flow controlled by the default [`HysteresisPolicy`].
    #[must_use]
    pub fn new(cfg: AdaptConfig) -> FlowAdapt {
        FlowAdapt::with_policy(cfg, Box::new(HysteresisPolicy::new(cfg)))
    }

    /// A flow controlled by a custom policy.
    #[must_use]
    pub fn with_policy(cfg: AdaptConfig, policy: Box<dyn ModePolicy>) -> FlowAdapt {
        let decision = policy.initial();
        FlowAdapt {
            cfg,
            est: ChannelEstimator::new(cfg),
            policy,
            decision,
            cur: None,
            switches: Vec::new(),
            switches_total: 0,
        }
    }

    /// The mode and message count for the next exchange, given
    /// `available` buffered messages: `take = min(n*, available)`.
    #[must_use]
    pub fn plan(&self, available: usize) -> (Mode, usize) {
        let take = self.decision.n.min(available).max(1);
        (self.decision.mode_for(take, self.cfg.leaves_per_tree), take)
    }

    /// Start accounting a new exchange of `n` messages totalling
    /// `payload_bytes`, signed at `now` in `mode`. Any exchange still
    /// open is closed as abandoned first (defensive; the signer
    /// serializes exchanges).
    pub fn begin_exchange(&mut self, mode: Mode, n: usize, payload_bytes: u64, now: Timestamp) {
        if self.cur.is_some() {
            self.finish(false);
        }
        self.cur = Some(InFlight {
            kind: ModeKind::of(mode),
            n: n as u32,
            payload_bytes,
            started: now,
            s1_transmissions: 0,
            s2_transmissions: 0,
            nacks: 0,
            auth_bytes: 0,
            rtt_us: None,
        });
    }

    /// Account outgoing packets and signer events from one response.
    /// Packets are counted before events so the bytes of S2s emitted in
    /// the same response as `ExchangeComplete` land in the right sample.
    pub fn observe(&mut self, packets: &[Packet], events: &[SignerEvent]) {
        self.observe_packets(packets);
        self.observe_events(events);
    }

    /// Account outgoing signer-side packets (original transmissions and
    /// retransmissions alike). Non-signer packets (A1/A2 of the reverse
    /// direction, handshakes) are ignored.
    pub fn observe_packets(&mut self, packets: &[Packet]) {
        let Some(cur) = self.cur.as_mut() else {
            return;
        };
        for p in packets {
            match &p.body {
                Body::S1 { .. } => {
                    cur.s1_transmissions += 1;
                    cur.auth_bytes += p.wire_len() as u64;
                }
                Body::S2 { payload, .. } => {
                    cur.s2_transmissions += 1;
                    cur.auth_bytes += (p.wire_len() - payload.len()) as u64;
                }
                _ => {}
            }
        }
    }

    /// Account signer events; closes the exchange on completion or
    /// abandonment.
    pub fn observe_events(&mut self, events: &[SignerEvent]) {
        for ev in events {
            match ev {
                SignerEvent::Nacked(_) => {
                    if let Some(cur) = self.cur.as_mut() {
                        cur.nacks += 1;
                    }
                }
                SignerEvent::Acked(_) => {}
                SignerEvent::ExchangeComplete => self.finish(true),
                SignerEvent::ExchangeAbandoned => self.finish(false),
            }
        }
    }

    /// Record the arrival of the A1 opening the current exchange. Karn's
    /// rule: only an exchange whose S1 went out exactly once yields an
    /// RTT sample, and only the first A1 counts.
    pub fn on_a1(&mut self, now: Timestamp) {
        if let Some(cur) = self.cur.as_mut() {
            if cur.s1_transmissions == 1 && cur.rtt_us.is_none() {
                cur.rtt_us = Some(now.since(cur.started));
            }
        }
    }

    fn finish(&mut self, completed: bool) {
        let Some(cur) = self.cur.take() else {
            return;
        };
        let sample = ExchangeSample {
            kind: cur.kind,
            n: cur.n,
            s1_transmissions: cur.s1_transmissions.max(1),
            s2_transmissions: cur.s2_transmissions,
            nacks: cur.nacks,
            auth_bytes: cur.auth_bytes,
            payload_bytes: if completed { cur.payload_bytes } else { 0 },
            rtt_us: cur.rtt_us,
            completed,
        };
        self.est.observe(&sample);
        let next = self.policy.decide(&self.est, &sample, self.decision);
        if next != self.decision {
            if self.switches.len() == SWITCH_LOG_CAP {
                self.switches.remove(0);
            }
            self.switches.push(SwitchRecord {
                exchange: self.est.exchanges(),
                from: self.decision,
                to: next,
                loss: self.est.loss_estimate(),
            });
            self.switches_total += 1;
            self.decision = next;
        }
    }

    /// The current decision (mode family and target bundle size).
    #[must_use]
    pub fn decision(&self) -> Decision {
        self.decision
    }

    /// The channel estimator (read-only).
    #[must_use]
    pub fn estimator(&self) -> &ChannelEstimator {
        &self.est
    }

    /// Exchanges observed so far.
    #[must_use]
    pub fn exchanges(&self) -> u64 {
        self.est.exchanges()
    }

    /// The bounded switch log, oldest first.
    #[must_use]
    pub fn switches(&self) -> &[SwitchRecord] {
        &self.switches
    }

    /// Decision changes over the flow's lifetime (not capped).
    #[must_use]
    pub fn switches_total(&self) -> u64 {
        self.switches_total
    }

    /// Mode-family decision changes over the flow's lifetime — switches
    /// that altered only the bundle size are excluded. This is the flap
    /// count hysteresis is meant to bound.
    #[must_use]
    pub fn mode_switches_total(&self) -> u64 {
        self.switches
            .iter()
            .filter(|s| s.from.kind != s.to.kind)
            .count() as u64
    }

    /// The RFC 6298 RTO for this flow, if an RTT sample exists.
    #[must_use]
    pub fn rto_us(&self) -> Option<u64> {
        self.est.rto_us()
    }

    /// Freeze the adaptation state for hibernation: the estimator
    /// snapshot, the current decision, and the lifetime switch count.
    /// Call only between exchanges (the engine freezes idle flows, so an
    /// in-flight accumulator never exists here); the bounded switch log
    /// and the policy's dwell streaks restart on restore — both only
    /// delay the next rung change, they never alter verifier decisions.
    #[must_use]
    pub fn freeze(&self) -> FrozenAdapt {
        FrozenAdapt {
            est: self.est.freeze(),
            decision: self.decision,
            switches_total: self.switches_total,
        }
    }

    /// Rebuild adaptation state from a hibernation snapshot.
    #[must_use]
    pub fn restore(cfg: AdaptConfig, frozen: &FrozenAdapt) -> FlowAdapt {
        let mut fa = FlowAdapt::new(cfg);
        fa.est = ChannelEstimator::restore(cfg, &frozen.est);
        fa.decision = frozen.decision;
        fa.switches_total = frozen.switches_total;
        fa
    }

    /// JSON snapshot: current decision plus every estimator signal.
    #[must_use]
    pub fn snapshot(&self) -> Value {
        Value::object([
            (
                "mode".to_owned(),
                Value::Str(self.decision.kind.label().to_owned()),
            ),
            ("n".to_owned(), Value::U64(self.decision.n as u64)),
            ("switches".to_owned(), Value::U64(self.switches_total)),
            ("estimator".to_owned(), self.est.snapshot()),
        ])
    }
}

/// The hibernated form of a [`FlowAdapt`]: what survives a freeze/thaw
/// cycle (see [`FlowAdapt::freeze`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrozenAdapt {
    /// Estimator snapshot.
    pub est: FrozenEstimator,
    /// Controller decision at freeze time.
    pub decision: Decision,
    /// Lifetime decision changes.
    pub switches_total: u64,
}

/// Serialized size of a [`FrozenAdapt`] record.
const FROZEN_ADAPT_LEN: usize = 4 * 8 + 3 + 4 * 8 + 1 + 8 + 8;

impl FrozenAdapt {
    /// Serialize into the compact byte record held by the hibernation
    /// store.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FROZEN_ADAPT_LEN);
        for f in [
            self.est.loss,
            self.est.srtt_us,
            self.est.rttvar_us,
            self.est.efficiency,
        ] {
            out.extend_from_slice(&f.to_bits().to_be_bytes());
        }
        out.push(u8::from(self.est.have_loss));
        out.push(u8::from(self.est.have_rtt));
        out.push(u8::from(self.est.have_efficiency));
        for v in [
            self.est.total_exchanges,
            self.est.total_abandoned,
            self.est.total_auth_bytes,
            self.est.total_payload_bytes,
        ] {
            out.extend_from_slice(&v.to_be_bytes());
        }
        out.push(match self.decision.kind {
            ModeKind::Base => 0,
            ModeKind::Cumulative => 1,
            ModeKind::Merkle => 2,
            ModeKind::CumulativeMerkle => 3,
        });
        out.extend_from_slice(&(self.decision.n as u64).to_be_bytes());
        out.extend_from_slice(&self.switches_total.to_be_bytes());
        out
    }

    /// Parse a record produced by [`FrozenAdapt::to_bytes`]; `None` on any
    /// malformed input.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<FrozenAdapt> {
        if bytes.len() != FROZEN_ADAPT_LEN {
            return None;
        }
        let f64_at = |i: usize| {
            let raw: [u8; 8] = bytes[i..i + 8].try_into().expect("8 bytes");
            f64::from_bits(u64::from_be_bytes(raw))
        };
        let u64_at = |i: usize| {
            let raw: [u8; 8] = bytes[i..i + 8].try_into().expect("8 bytes");
            u64::from_be_bytes(raw)
        };
        let kind = match bytes[67] {
            0 => ModeKind::Base,
            1 => ModeKind::Cumulative,
            2 => ModeKind::Merkle,
            3 => ModeKind::CumulativeMerkle,
            _ => return None,
        };
        Some(FrozenAdapt {
            est: FrozenEstimator {
                loss: f64_at(0),
                srtt_us: f64_at(8),
                rttvar_us: f64_at(16),
                efficiency: f64_at(24),
                have_loss: bytes[32] != 0,
                have_rtt: bytes[33] != 0,
                have_efficiency: bytes[34] != 0,
                total_exchanges: u64_at(35),
                total_abandoned: u64_at(43),
                total_auth_bytes: u64_at(51),
                total_payload_bytes: u64_at(59),
            },
            decision: Decision {
                kind,
                n: u64_at(68) as usize,
            },
            switches_total: u64_at(76),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_core::{Association, Config, Reliability};
    use alpha_crypto::Algorithm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair() -> (Association, Association, StdRng) {
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = Config::new(Algorithm::Sha1)
            .with_chain_len(512)
            .with_reliability(Reliability::Reliable);
        let (a, b) = Association::pair(cfg, 7, &mut rng);
        (a, b, rng)
    }

    /// Run one full lossless exchange through real associations with the
    /// FlowAdapt observing, and check the accounting matches the wire
    /// formulas exactly.
    #[test]
    fn accounting_matches_wire_formulas_on_a_real_exchange() {
        let (mut alice, mut bob, mut rng) = pair();
        let mut fa = FlowAdapt::new(AdaptConfig::default());
        let now = Timestamp::ZERO;
        let h = Algorithm::Sha1.digest_len();

        let msgs: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 100]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let (mode, take) = (Mode::Cumulative, refs.len());
        let s1 = alice.sign_batch(&refs, mode, now).unwrap();
        fa.begin_exchange(mode, take, 400, now);
        fa.observe_packets(std::slice::from_ref(&s1));
        assert_eq!(s1.wire_len(), mode.s1_wire_len(take, h));

        let a1 = bob.handle(&s1, now, &mut rng).unwrap().packet().unwrap();
        let later = now.plus_micros(5_000);
        fa.on_a1(later);
        let resp = alice.handle(&a1, later, &mut rng).unwrap();
        fa.observe(&resp.packets, &resp.signer_events);
        let mut s2_auth = 0usize;
        for s2 in &resp.packets {
            let Body::S2 { payload, .. } = &s2.body else {
                panic!("expected S2")
            };
            s2_auth += s2.wire_len() - payload.len();
            let r = bob.handle(s2, later, &mut rng).unwrap();
            if let Some(a2) = r.packet() {
                let done = alice.handle(&a2, later, &mut rng).unwrap();
                fa.observe(&done.packets, &done.signer_events);
            }
        }

        assert_eq!(fa.exchanges(), 1, "exchange should have closed");
        let est = fa.estimator();
        let expected = mode.s1_wire_len(take, h) + s2_auth;
        assert_eq!(est.auth_bytes(), expected as u64);
        assert_eq!(est.payload_bytes(), 400);
        assert_eq!(est.loss_estimate(), 0.0);
        assert_eq!(est.srtt_us(), Some(5_000));
    }

    #[test]
    fn plan_caps_take_and_degrades_to_base() {
        let fa = FlowAdapt::new(AdaptConfig::default());
        let (mode, take) = fa.plan(100);
        assert!(take >= 1 && take <= AdaptConfig::default().max_n);
        let (mode1, take1) = fa.plan(1);
        assert_eq!(take1, 1);
        assert_eq!(mode1, Mode::Base);
        let _ = mode;
    }

    #[test]
    fn abandoned_exchange_credits_no_payload_and_reads_as_loss() {
        let mut fa = FlowAdapt::new(AdaptConfig::default());
        fa.begin_exchange(Mode::Cumulative, 4, 1024, Timestamp::ZERO);
        fa.observe_events(&[SignerEvent::ExchangeAbandoned]);
        assert_eq!(fa.estimator().payload_bytes(), 0);
        assert_eq!(fa.estimator().loss_estimate(), 1.0);
        assert_eq!(fa.exchanges(), 1);
    }

    #[test]
    fn switch_log_records_mode_changes_with_exchange_index() {
        let mut fa = FlowAdapt::new(AdaptConfig::default());
        // Hammer the flow with abandoned exchanges until the ladder tops
        // out, then verify the log shape.
        for i in 0..20 {
            fa.begin_exchange(Mode::Cumulative, 4, 1024, Timestamp::from_millis(i));
            fa.observe_events(&[SignerEvent::ExchangeAbandoned]);
        }
        assert_eq!(fa.decision().kind, ModeKind::Merkle);
        assert!(fa.mode_switches_total() >= 2);
        assert!(fa.switches_total() >= fa.mode_switches_total());
        let log = fa.switches();
        assert!(!log.is_empty());
        assert!(log.windows(2).all(|w| w[0].exchange <= w[1].exchange));
        let snap = fa.snapshot();
        assert_eq!(snap.get("mode").unwrap().as_str(), Some("merkle"));
    }

    #[test]
    fn karn_rule_skips_rtt_after_s1_retransmission() {
        let mut fa = FlowAdapt::new(AdaptConfig::default());
        fa.begin_exchange(Mode::Base, 1, 64, Timestamp::ZERO);
        // Two S1 transmissions (a retransmission) → no RTT sample.
        let (mut alice, _bob, _rng) = pair();
        let s1 = alice.sign(b"x", Timestamp::ZERO).unwrap();
        fa.observe_packets(&[s1.clone(), s1]);
        fa.on_a1(Timestamp::from_millis(50));
        fa.observe_events(&[SignerEvent::ExchangeComplete]);
        assert_eq!(fa.estimator().srtt_us(), None);
    }
}
