//! FFI-layout and semantics property tests for the hand-declared
//! io_uring ABI in `alpha_transport::uring` (Linux only), mirroring
//! `tests/epoll_props.rs` and `tests/mmsg_props.rs` for the other FFI
//! modules.
//!
//! The hand-written `#[repr(C)]` declarations are only right if the
//! kernel agrees with them: struct sizes are pinned to the published
//! ABI, a NOP must round-trip through the SQ/CQ rings with its cookie
//! intact, the provided-buffer ring must register, and the full
//! completion-mode runtime (multishot RECVMSG + buffer select +
//! SENDMSG + EXT_ARG waits) must move real datagrams over loopback.
//! Ring-semantics tests skip with a message on kernels without
//! io_uring support; the layout pins always run.

#![cfg(target_os = "linux")]

use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::Duration;

use alpha_engine::IoWorker;
use alpha_transport::uring::{
    BufRing, BufRingEntry, Cqe, CqringOffsets, IoUringParams, Ring, Sqe, SqringOffsets, UringIo,
};
use alpha_wire::FramePool;

/// Build a small ring or skip the calling test when the kernel lacks
/// io_uring (ENOSYS under seccomp sandboxes, EPERM under some
/// container policies).
fn ring_or_skip(test: &str) -> Option<Ring> {
    match Ring::new(8, 32) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("skipping {test}: io_uring unavailable ({e})");
            None
        }
    }
}

#[test]
fn abi_struct_layouts_are_pinned() {
    // Sizes from the kernel's published io_uring uapi; a drift here
    // means setup writes garbage offsets or SQEs are misread.
    assert_eq!(std::mem::size_of::<SqringOffsets>(), 40);
    assert_eq!(std::mem::size_of::<CqringOffsets>(), 40);
    assert_eq!(std::mem::size_of::<IoUringParams>(), 120);
    assert_eq!(std::mem::size_of::<Sqe>(), 64);
    assert_eq!(std::mem::size_of::<Cqe>(), 16);
    assert_eq!(std::mem::size_of::<BufRingEntry>(), 16);
    // The shared pbuf-ring tail aliases bytes 14..16 of entry 0, so
    // the `resv` field must sit exactly there.
    assert_eq!(std::mem::offset_of!(BufRingEntry, resv), 14);
}

#[test]
fn setup_reports_feature_flags() {
    let Some(ring) = ring_or_skip("setup_reports_feature_flags") else {
        return;
    };
    // The module requires EXT_ARG (timed waits) at setup, so a
    // constructed ring must carry it; NODROP/SINGLE_MMAP arrived
    // earlier than EXT_ARG and come along on any such kernel.
    assert_ne!(ring.features(), 0, "kernel reported no feature bits");
    assert_ne!(ring.features() & (1 << 8), 0, "EXT_ARG missing post-setup");
}

#[test]
fn nop_round_trips_with_cookie() {
    let Some(mut ring) = ring_or_skip("nop_round_trips_with_cookie") else {
        return;
    };
    assert!(ring.push_nop(0xdead_beef_cafe), "SQ has room for one NOP");
    ring.enter(1, Some(Duration::from_millis(500)))
        .expect("enter GETEVENTS");
    let mut cqes = Vec::new();
    assert_eq!(ring.reap(&mut cqes), 1, "exactly one completion");
    assert_eq!(cqes[0].user_data, 0xdead_beef_cafe, "cookie echoed");
    assert!(cqes[0].res >= 0, "NOP succeeds");
}

#[test]
fn sq_capacity_is_bounded_and_recycles() {
    let Some(mut ring) = ring_or_skip("sq_capacity_is_bounded_and_recycles") else {
        return;
    };
    // Fill the 8-deep SQ without submitting: the 9th push must fail.
    for i in 0..8 {
        assert!(ring.push_nop(i), "SQE {i} fits");
    }
    assert!(!ring.push_nop(99), "9th SQE rejected while full");
    ring.enter(8, Some(Duration::from_millis(500)))
        .expect("submit all");
    let mut cqes = Vec::new();
    assert_eq!(ring.reap(&mut cqes), 8);
    // Submitting freed the slots.
    assert!(ring.push_nop(100), "SQ recycles after submit");
}

#[test]
fn timed_wait_expires_without_completions() {
    let Some(mut ring) = ring_or_skip("timed_wait_expires_without_completions") else {
        return;
    };
    let start = std::time::Instant::now();
    ring.enter(1, Some(Duration::from_millis(30)))
        .expect("EXT_ARG timeout is a success, not an error");
    assert!(
        start.elapsed() >= Duration::from_millis(25),
        "wait returned before its timeout with nothing in flight"
    );
    let mut cqes = Vec::new();
    assert_eq!(ring.reap(&mut cqes), 0, "nothing completed");
}

#[test]
fn provided_buffer_ring_registers() {
    let Some(ring) = ring_or_skip("provided_buffer_ring_registers") else {
        return;
    };
    let mut buf = vec![0u8; 4096];
    match BufRing::new(&ring, 7, 16) {
        Ok(mut bufs) => {
            assert_eq!(bufs.bgid(), 7);
            bufs.provide(3, buf.as_mut_ptr() as u64, buf.len() as u32);
        }
        Err(e) => {
            // PBUF_RING is newer (5.19) than rings themselves; absent
            // support must surface as a clean error, not UB.
            eprintln!("skipping pbuf-ring leg: {e}");
        }
    }
}

#[test]
fn full_runtime_moves_datagrams_over_loopback() {
    if ring_or_skip("full_runtime_moves_datagrams_over_loopback").is_none() {
        return;
    }
    // The startup probe IS the round-trip property: multishot RECVMSG
    // with buffer select must deliver payload + source address, and a
    // ring-staged SENDMSG must land on a real peer socket.
    match alpha_transport::uring::probe() {
        Ok(()) => {}
        Err(e) => panic!("kernel has io_uring but the runtime probe failed: {e}"),
    }
}

#[test]
fn runtime_survives_rx_buffer_exhaustion() {
    if ring_or_skip("runtime_survives_rx_buffer_exhaustion").is_none() {
        return;
    }
    if !alpha_transport::uring::supported() {
        eprintln!("skipping: full runtime unsupported");
        return;
    }
    let here = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind");
    let peer = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind");
    let here_addr = here.local_addr().expect("addr");
    let pool = FramePool::new(2048, 8);
    let counters = Arc::new(IoWorker::default());
    let mut io =
        UringIo::new(here.as_raw_fd(), &[], &pool, Arc::clone(&counters)).expect("runtime");

    // Blast far more datagrams than the provided-buffer ring holds;
    // every one the ring accepts must come back intact, and the
    // runtime must keep receiving after exhaustion/re-arm cycles.
    let total = 512;
    let mut got = 0usize;
    let mut rx = Vec::new();
    let mut fired = Vec::new();
    for round in 0..total / 32 {
        for i in 0..32 {
            let n = round * 32 + i;
            peer.send_to(format!("frame-{n:04}").as_bytes(), here_addr)
                .expect("send");
        }
        for _ in 0..50 {
            rx.clear();
            io.wait(Duration::from_millis(20), &pool, &mut rx, &mut fired)
                .expect("wait");
            for d in &rx {
                assert!(d.frame.starts_with(b"frame-"), "payload intact");
                got += 1;
            }
            if rx.is_empty() {
                break;
            }
        }
    }
    // Loopback UDP may still drop under socket-buffer pressure; the
    // property is liveness through exhaustion, not zero loss.
    assert!(
        got >= total / 2,
        "runtime wedged after buffer exhaustion: {got}/{total} delivered"
    );
    drop(io);
}
