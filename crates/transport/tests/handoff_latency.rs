//! Handoff-latency regression test: a cross-worker datagram must reach
//! its owning worker fast.
//!
//! A 2-worker live-loopback engine runs with every shard pre-claimed by
//! worker 0, so any datagram the kernel steers to worker 1's
//! SO_REUSEPORT socket *must* cross a handoff ring. The measured ring
//! wait (receive-stamp to drain) is the wake-up path:
//!
//! - Under the **epoll** backend the pushing worker rings the owner's
//!   eventfd doorbell, so the owner wakes in microseconds. The bound
//!   here is deliberately slack (scheduler noise on a loaded CI host),
//!   but far below a read-timeout period.
//! - Under the **fallback** backend the datagram sits until the owner's
//!   `SO_RCVTIMEO` expires (up to 5 ms) — the documented-loose bound
//!   only guards against pathological regressions (e.g. a datagram
//!   stranded until an unrelated wake).
//!
//! Both legs run sequentially in one #[test] because `wait::force` is
//! process-wide. When the single-socket UDP backend is active there is
//! no cross-worker path at all; the test skips rather than asserting on
//! zero samples.

use std::time::Duration;

use alpha_transport::{probe_handoff, wait, WaitBackend};

const PROBE_WINDOW: Duration = Duration::from_millis(600);

#[test]
fn preclaimed_handoffs_drain_within_backend_bounds() {
    // Fallback leg first (always supported).
    wait::force(WaitBackend::Fallback).expect("fallback supported");
    let fb = probe_handoff(PROBE_WINDOW, true).expect("fallback probe");
    if !fb.reuseport {
        eprintln!("skipping: single-socket UDP backend, no cross-worker path to measure");
        return;
    }
    eprintln!("fallback probe: {fb:?}");
    assert!(
        fb.samples > 0,
        "preclaimed shards must force handoffs: {fb:?}"
    );
    assert!(
        fb.p99_us <= 1_000_000,
        "fallback handoff p99 {}us exceeds the documented-loose 1s bound: {fb:?}",
        fb.p99_us
    );

    if !WaitBackend::Epoll.is_supported() {
        eprintln!("skipping epoll leg: not supported on this platform");
        return;
    }
    wait::force(WaitBackend::Epoll).expect("epoll supported");
    let ep = probe_handoff(PROBE_WINDOW, true).expect("epoll probe");
    eprintln!("epoll probe: {ep:?}");
    assert_eq!(ep.wait_backend, "epoll", "epoll leg ran the epoll loop");
    assert!(
        ep.samples > 0,
        "preclaimed shards must force handoffs: {ep:?}"
    );
    // Tight bounds in release: the doorbell must beat the read-timeout
    // clock by a wide margin even on a slow single-core host (measured
    // p50 ≤ 100 µs, p99 ≤ 200 µs). Debug builds spend milliseconds per
    // exchange in unoptimized hash chains, so the measurement is
    // dominated by crypto, not the wake path — only the pathological
    // "stranded until an unrelated wake" regression is gated there.
    let (p50_bound, p99_bound) = if cfg!(debug_assertions) {
        (500_000, 1_000_000)
    } else {
        (2_000, 100_000)
    };
    assert!(
        ep.p50_us <= p50_bound,
        "epoll handoff p50 {}us exceeds {}us — doorbells are not waking the owner: {ep:?}",
        ep.p50_us,
        p50_bound
    );
    assert!(
        ep.p99_us <= p99_bound,
        "epoll handoff p99 {}us exceeds {}us: {ep:?}",
        ep.p99_us,
        p99_bound
    );
}
