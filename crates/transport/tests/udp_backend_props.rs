//! Backend-equivalence test: the completion-mode `uring` backend, the
//! batched `mmsg` backend, and the portable `fallback` backend must be
//! interchangeable — same multi-flow relay scenario, byte-identical
//! delivered payloads, and identical protocol decisions (handshakes
//! learned, S2 exchanges verified, zero failures, zero drops). Only
//! the syscall count may differ.

use std::net::UdpSocket;
use std::sync::atomic::Ordering::Relaxed;
use std::time::Duration;

use alpha_core::{Config, Mode};
use alpha_crypto::Algorithm;
use alpha_engine::{EngineConfig, EngineCore};
use alpha_transport::{io, Engine, HandshakeAuth, UdpBackend, UdpHost};

const FLOWS: usize = 4;
const PAYLOADS: usize = 6;

/// Everything one run of the scenario produces that must not depend on
/// the backend: what each server received, and what the relay decided.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    /// Per-flow payloads, in delivery order.
    delivered: Vec<Vec<Vec<u8>>>,
    handshakes: u64,
    s2_verified: u64,
    verify_failures: u64,
    parse_errors: u64,
    total_drops: u64,
    flow_count: usize,
}

fn run_scenario(backend: UdpBackend) -> Outcome {
    io::force(backend).expect("backend supported");
    let cfg = Config::new(Algorithm::Sha1).with_chain_len(64);

    // Reserve every endpoint socket up front and keep them bound, so the
    // relay can be routed before traffic flows and no address can be
    // reallocated out from under a thread.
    let reserve = |_: usize| UdpSocket::bind("127.0.0.1:0").unwrap();
    let client_socks: Vec<_> = (0..FLOWS).map(reserve).collect();
    let server_socks: Vec<_> = (0..FLOWS).map(reserve).collect();

    let relay_core = EngineCore::new(EngineConfig::new(cfg).with_shards(4));
    for i in 0..FLOWS {
        relay_core.add_route(
            client_socks[i].local_addr().unwrap(),
            server_socks[i].local_addr().unwrap(),
        );
    }
    let relay = Engine::bind("127.0.0.1:0", relay_core, 2).expect("relay bind");
    let relay_addr = relay.local_addr().unwrap();
    assert_eq!(
        relay.core().metrics().io.backend_name(),
        backend.name(),
        "forced backend must be the one the engine reports"
    );

    let servers: Vec<_> = server_socks
        .into_iter()
        .enumerate()
        .map(|(i, sock)| {
            std::thread::spawn(move || {
                let mut host = UdpHost::accept_socket(
                    cfg,
                    sock,
                    Duration::from_secs(30),
                    HandshakeAuth::default(),
                )
                .unwrap_or_else(|e| panic!("server {i} accept: {e}"));
                host.serve(Duration::from_millis(2500))
                    .unwrap_or_else(|e| panic!("server {i} serve: {e}"))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    let clients: Vec<_> = client_socks
        .into_iter()
        .enumerate()
        .map(|(i, sock)| {
            std::thread::spawn(move || {
                let mut host = UdpHost::connect_socket(
                    cfg,
                    500 + i as u64,
                    sock,
                    relay_addr,
                    Duration::from_secs(30),
                    HandshakeAuth::default(),
                )
                .unwrap_or_else(|e| panic!("client {i} connect: {e}"));
                // One exchange per payload: exercises the relay's
                // exchange rotation, not just a single verified S2.
                for j in 0..PAYLOADS {
                    let payload = format!("flow {i} payload {j}");
                    host.send_batch(&[payload.as_bytes()], Mode::Base, Duration::from_secs(20))
                        .unwrap_or_else(|e| panic!("client {i} send {j}: {e}"));
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let delivered: Vec<Vec<Vec<u8>>> = servers
        .into_iter()
        .map(|s| s.join().expect("server thread"))
        .collect();

    let core = relay.core().clone();
    relay.shutdown();
    let m = core.metrics();
    Outcome {
        delivered,
        handshakes: m.handshakes.load(Relaxed),
        s2_verified: m.s2_verified.load(Relaxed),
        verify_failures: m.verify_failures.load(Relaxed),
        parse_errors: m.parse_errors.load(Relaxed),
        total_drops: m.total_drops(),
        flow_count: core.flow_count(),
    }
}

fn check_outcome(o: &Outcome, label: &str) {
    for (i, flow) in o.delivered.iter().enumerate() {
        let want: Vec<Vec<u8>> = (0..PAYLOADS)
            .map(|j| format!("flow {i} payload {j}").into_bytes())
            .collect();
        assert_eq!(flow, &want, "{label}: server {i} payloads");
    }
    assert_eq!(o.handshakes, FLOWS as u64, "{label}: handshakes learned");
    assert_eq!(o.flow_count, FLOWS, "{label}: relay flows resident");
    assert!(
        o.s2_verified >= FLOWS as u64,
        "{label}: at least one verified exchange per flow (got {})",
        o.s2_verified
    );
    assert_eq!(o.verify_failures, 0, "{label}: verify failures");
    assert_eq!(o.parse_errors, 0, "{label}: parse errors");
    assert_eq!(o.total_drops, 0, "{label}: relay drops");
}

/// All backends run the identical scenario in one process; everything
/// protocol-visible must match exactly. (Single #[test] on purpose:
/// `io::force` is process-wide, so the legs must be sequenced.)
#[test]
fn backends_are_delivery_and_decision_identical() {
    let fallback = run_scenario(UdpBackend::Fallback);
    check_outcome(&fallback, "fallback");

    if !UdpBackend::Mmsg.is_supported() {
        eprintln!("skipping mmsg leg: not supported on this platform");
        return;
    }
    let mmsg = run_scenario(UdpBackend::Mmsg);
    check_outcome(&mmsg, "mmsg");

    assert_eq!(
        mmsg, fallback,
        "mmsg and fallback must deliver identical bytes and make identical relay decisions"
    );

    if !UdpBackend::Uring.is_supported() {
        eprintln!("skipping uring leg: not supported on this kernel");
        return;
    }
    let uring = run_scenario(UdpBackend::Uring);
    check_outcome(&uring, "uring");

    assert_eq!(
        uring, fallback,
        "uring and fallback must deliver identical bytes and make identical relay decisions"
    );
}
