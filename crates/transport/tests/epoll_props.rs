//! FFI-layout and semantics property tests for the hand-declared
//! `epoll`/`eventfd`/`timerfd` ABI in `alpha_transport::epoll` (Linux
//! only), mirroring `tests/mmsg_props.rs` for the other FFI module.
//!
//! The hand-written `#[repr(C)]` declarations are only right if the
//! kernel agrees with them: the `epoll_event` size is pinned to the
//! known packed/aligned layouts, doorbells must count their rings and
//! zero on drain, timers must never fire before their armed delay (and
//! must still fire on a zero delay, which the raw ABI would treat as
//! *disarm*), and a real loopback socket must become readable exactly
//! when a datagram lands.

#![cfg(target_os = "linux")]

use std::net::UdpSocket;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use alpha_transport::epoll::{Epoll, EpollEvent, EventFd, TimerFd, MAX_EVENTS};

/// One `epoll_wait` round with a scratch token vec.
fn wait_once(ep: &Epoll, timeout_ms: i32) -> Vec<u64> {
    let mut tokens = Vec::with_capacity(MAX_EVENTS);
    ep.wait(timeout_ms, &mut tokens).expect("epoll_wait");
    tokens
}

#[test]
fn epoll_event_layout_is_pinned() {
    // Packed 12 bytes on x86_64 (the historical 32/64-bit compat
    // layout), naturally aligned 16 bytes elsewhere. If this fails the
    // kernel would read garbage tokens.
    if cfg!(target_arch = "x86_64") {
        assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        assert_eq!(std::mem::align_of::<EpollEvent>(), 1);
    } else {
        assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
        assert_eq!(std::mem::align_of::<EpollEvent>(), 8);
    }
}

#[test]
fn eventfd_rings_accumulate_and_drain_to_zero() {
    let bell = EventFd::new().expect("eventfd");
    assert_eq!(bell.drain(), 0, "fresh bell is silent");
    bell.ring();
    bell.ring();
    bell.ring();
    assert_eq!(bell.drain(), 3, "three rings accumulated");
    assert_eq!(bell.drain(), 0, "drained bell is silent again");
}

#[test]
fn eventfd_readiness_follows_the_counter() {
    let ep = Epoll::new().expect("epoll");
    let bell = EventFd::new().expect("eventfd");
    ep.add(bell.as_raw_fd(), 7, false).expect("add bell");

    assert!(
        wait_once(&ep, 0).is_empty(),
        "silent bell must not be readable"
    );
    bell.ring();
    assert_eq!(wait_once(&ep, 1000), vec![7], "rung bell reported by token");
    // Level-triggered: still readable until drained.
    assert_eq!(wait_once(&ep, 0), vec![7]);
    bell.drain();
    assert!(wait_once(&ep, 0).is_empty(), "drained bell is quiet");
}

#[test]
fn timer_never_fires_before_its_delay() {
    let ep = Epoll::new().expect("epoll");
    let timer = TimerFd::new().expect("timerfd");
    ep.add(timer.as_raw_fd(), 9, false).expect("add timer");

    let delay = Duration::from_millis(20);
    let armed = Instant::now();
    timer.arm_in(delay).expect("arm");
    let tokens = wait_once(&ep, 1000);
    let waited = armed.elapsed();
    assert_eq!(tokens, vec![9], "timer fired");
    assert!(
        waited >= delay,
        "CLOCK_MONOTONIC timer fired early: {waited:?} < {delay:?}"
    );
    assert_eq!(timer.drain(), 1, "one expiry acknowledged");
    assert!(wait_once(&ep, 0).is_empty(), "acknowledged timer is quiet");
}

#[test]
fn zero_delay_arm_still_fires() {
    // The raw ABI treats an all-zero itimerspec as *disarm*; arm_in
    // must clamp so an already-due deadline still produces a wake.
    let ep = Epoll::new().expect("epoll");
    let timer = TimerFd::new().expect("timerfd");
    ep.add(timer.as_raw_fd(), 11, false).expect("add timer");
    timer.arm_in(Duration::ZERO).expect("arm zero");
    assert_eq!(wait_once(&ep, 1000), vec![11], "zero-delay arm fired");
    assert_eq!(timer.drain(), 1);
}

#[test]
fn disarm_cancels_a_pending_expiry() {
    let ep = Epoll::new().expect("epoll");
    let timer = TimerFd::new().expect("timerfd");
    ep.add(timer.as_raw_fd(), 13, false).expect("add timer");
    timer.arm_in(Duration::from_millis(10)).expect("arm");
    timer.disarm().expect("disarm");
    std::thread::sleep(Duration::from_millis(30));
    assert!(
        wait_once(&ep, 0).is_empty(),
        "disarmed timer must never fire"
    );
    assert_eq!(timer.drain(), 0);
}

#[test]
fn socket_readiness_over_a_real_loopback_pair() {
    let rx = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
    let tx = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
    let ep = Epoll::new().expect("epoll");
    ep.add(rx.as_raw_fd(), u64::MAX, false).expect("add socket");

    assert!(
        wait_once(&ep, 0).is_empty(),
        "idle socket must not be readable"
    );
    tx.send_to(b"knock", rx.local_addr().unwrap())
        .expect("send");
    assert_eq!(
        wait_once(&ep, 1000),
        vec![u64::MAX],
        "datagram makes the socket readable"
    );
    // Level-triggered: readable until the datagram is consumed.
    let mut buf = [0u8; 16];
    let (n, _) = rx.recv_from(&mut buf).expect("recv");
    assert_eq!(&buf[..n], b"knock");
    assert!(wait_once(&ep, 0).is_empty(), "drained socket is quiet");
}

#[test]
fn one_set_multiplexes_socket_bell_and_timer() {
    // The worker-loop wiring in miniature: one epoll set, three fd
    // kinds, each reported under its own token.
    let rx = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
    let tx = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
    let ep = Epoll::new().expect("epoll");
    let bell = EventFd::new().expect("eventfd");
    let timer = TimerFd::new().expect("timerfd");
    ep.add(rx.as_raw_fd(), 1, false).expect("add socket");
    ep.add(bell.as_raw_fd(), 2, false).expect("add bell");
    ep.add(timer.as_raw_fd(), 3, false).expect("add timer");

    tx.send_to(b"x", rx.local_addr().unwrap()).expect("send");
    bell.ring();
    timer.arm_in(Duration::from_millis(1)).expect("arm");
    std::thread::sleep(Duration::from_millis(5));

    let mut tokens = wait_once(&ep, 1000);
    tokens.sort_unstable();
    assert_eq!(tokens, vec![1, 2, 3], "all three sources reported");
}
