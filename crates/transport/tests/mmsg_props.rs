//! FFI-layout property tests for the hand-declared `recvmmsg`/`sendmmsg`
//! ABI in `alpha_transport::mmsg` (Linux only).
//!
//! The hand-written `#[repr(C)]` headers are only right if real
//! datagrams survive them: batches of every awkward size (0 bytes, 1
//! byte, odd lengths, ~MTU) go through a loopback socket pair and come
//! back with the same lengths, payload bytes and source addresses;
//! undersized receive frames must surface the kernel's truncation flag;
//! oversized send batches must be chunked and resubmitted completely.

#![cfg(target_os = "linux")]

use std::net::UdpSocket;
use std::sync::Arc;
use std::time::Duration;

use alpha_engine::IoWorker;
use alpha_transport::io::MAX_BATCH;
use alpha_transport::{mmsg, RxDatagram, UdpBackend, UdpIo};
use alpha_wire::{Frame, FramePool};

fn pair() -> (UdpSocket, UdpSocket) {
    let a = UdpSocket::bind("127.0.0.1:0").unwrap();
    let b = UdpSocket::bind("127.0.0.1:0").unwrap();
    a.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    (a, b)
}

/// Payload for message `i` of a round: length-patterned bytes so a
/// mixed-up iovec or msg_len shows as a mismatch, not a coincidence.
fn payload(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| (i * 131 + j * 7) as u8).collect()
}

fn frame_of(pool: &FramePool, bytes: &[u8]) -> Frame {
    let mut f = pool.checkout();
    f.buf_mut().extend_from_slice(bytes);
    f
}

/// Receive exactly `n` datagrams, however many syscalls that takes.
fn recv_all(sock: &UdpSocket, pool: &FramePool, n: usize) -> Vec<RxDatagram> {
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    while out.len() < n {
        let want = n - out.len();
        let got = mmsg::recv_batch(sock, pool, &mut scratch, &mut out, want).expect("recv_batch");
        assert!(got > 0, "timed out with {}/{} datagrams", out.len(), n);
    }
    out
}

#[test]
fn batches_of_awkward_sizes_survive_the_packing() {
    let (tx, rx) = pair();
    let rx_addr = rx.local_addr().unwrap();
    let tx_addr = tx.local_addr().unwrap();
    let pool = FramePool::new(65_536, 4 * MAX_BATCH);

    // 0, 1, odd, and ~MTU sizes, batch sizes 1..=VLEN.
    let sizes = [0usize, 1, 3, 17, 255, 999, 1473];
    for batch in [1usize, 2, 3, 7, MAX_BATCH / 2, MAX_BATCH] {
        let msgs: Vec<(std::net::SocketAddr, Frame)> = (0..batch)
            .map(|i| {
                (
                    rx_addr,
                    frame_of(&pool, &payload(i, sizes[i % sizes.len()])),
                )
            })
            .collect();
        let mut sent = 0;
        while sent < msgs.len() {
            let n = mmsg::send_batch(&tx, &msgs[sent..]).expect("send_batch");
            assert!(n > 0, "kernel accepted nothing");
            sent += n;
        }
        let got = recv_all(&rx, &pool, batch);
        assert_eq!(got.len(), batch);
        // Loopback preserves order from one sender socket.
        for (i, d) in got.iter().enumerate() {
            let want = payload(i, sizes[i % sizes.len()]);
            assert_eq!(d.frame.len(), want.len(), "length of message {i}");
            assert_eq!(&d.frame[..], &want[..], "payload of message {i}");
            assert_eq!(d.from, tx_addr, "source address of message {i}");
            assert!(!d.truncated, "message {i} fit its frame");
        }
    }
}

#[test]
fn truncation_is_flagged_and_length_clamped() {
    let (tx, rx) = pair();
    let rx_addr = rx.local_addr().unwrap();
    // Frames with room for 128 bytes; datagrams of 300 must be cut and
    // flagged.
    let small_pool = FramePool::new(128, 8);
    let big_pool = FramePool::new(65_536, 8);
    let want = payload(1, 300);
    mmsg::send_batch(&tx, &[(rx_addr, frame_of(&big_pool, &want))]).expect("send");
    let got = recv_all(&rx, &small_pool, 1);
    assert!(got[0].truncated, "kernel truncation must be surfaced");
    assert_eq!(got[0].frame.len(), 128, "clamped to frame capacity");
    assert_eq!(&got[0].frame[..], &want[..128], "prefix preserved");
}

#[test]
fn oversized_batches_chunk_and_resubmit_through_udp_io() {
    let (tx, rx) = pair();
    let rx_addr = rx.local_addr().unwrap();
    let pool = FramePool::new(2048, 4 * MAX_BATCH);
    let counters = Arc::new(IoWorker::default());
    let io_tx = UdpIo::with_backend(tx, UdpBackend::Mmsg, Arc::clone(&counters));

    // More than one VLEN's worth in one call: UdpIo must chunk it into
    // several syscalls and deliver every message.
    let total = 2 * MAX_BATCH + 5;
    let msgs: Vec<(std::net::SocketAddr, Frame)> = (0..total)
        .map(|i| (rx_addr, frame_of(&pool, &payload(i, 100 + i))))
        .collect();
    let sent = io_tx.send_batch(&msgs).expect("send_batch");
    assert_eq!(sent, total);

    let got = recv_all(&rx, &pool, total);
    for (i, d) in got.iter().enumerate() {
        assert_eq!(&d.frame[..], &payload(i, 100 + i)[..], "message {i}");
    }
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(counters.datagrams_out.load(Relaxed), total as u64);
    assert!(
        counters.send_calls.load(Relaxed) >= 3,
        "chunking needs at least ceil(total/VLEN) syscalls"
    );
}
