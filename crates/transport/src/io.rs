//! Runtime-selected batched UDP I/O backends.
//!
//! Mirrors `alpha_crypto::backend`: a process-wide backend resolved
//! once — `ALPHA_UDP_BACKEND` if set (`uring`, `mmsg`, `fallback`,
//! `auto`), otherwise auto-detection — behind [`active`], with
//! [`force`] for benches and tests that compare tiers in one process.
//! All backends move byte-identical datagrams; selection only changes
//! how many syscalls that takes:
//!
//! - [`UdpBackend::Uring`] — Linux io_uring completion mode via the
//!   hand-declared FFI in [`crate::uring`]: the engine worker loop
//!   runs a per-worker ring (multishot `RECVMSG` into provided
//!   buffers, batched `SENDMSG`, doorbells/timer folded in) where one
//!   `io_uring_enter` replaces the whole wait+recv+send syscall
//!   train. Probed end-to-end at startup; detection falls back to
//!   mmsg on kernels without it. Plain [`UdpIo`] endpoints (clients,
//!   benches, the engine's control handle) have no ring attached and
//!   use the mmsg syscall path below — the ring is a worker-loop
//!   runtime, not a per-socket mode.
//! - [`UdpBackend::Mmsg`] — Linux `recvmmsg`/`sendmmsg` via the
//!   hand-declared FFI in [`crate::mmsg`]: up to [`MAX_BATCH`]
//!   datagrams per syscall, received straight into pooled frames.
//! - [`UdpBackend::Fallback`] — portable `recv_from`/`send_to`, one
//!   datagram per syscall, into a reused scratch buffer then one copy
//!   into a pooled frame (no per-datagram allocation either way).
//!
//! Every [`UdpIo`] feeds a per-worker counter block
//! ([`alpha_engine::IoWorker`]) so `engine stats` reports syscalls,
//! datagrams-per-syscall, EAGAIN wakeups and partial sends per worker.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use alpha_engine::IoWorker;
use alpha_wire::{Frame, FramePool};

/// Largest UDP datagram we size receive buffers for.
pub const MAX_DATAGRAM: usize = 65_536;

/// Most datagrams one batched syscall moves (the fallback backend still
/// honors it as its per-call cap of 1..).
#[cfg(target_os = "linux")]
pub const MAX_BATCH: usize = crate::mmsg::VLEN;
/// Most datagrams one batched syscall moves.
#[cfg(not(target_os = "linux"))]
pub const MAX_BATCH: usize = 32;

/// Identifies one of the compiled-in UDP I/O backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UdpBackend {
    /// Linux io_uring completion mode (see [`crate::uring`]); engine
    /// workers run rings, plain endpoints use the mmsg syscall path.
    Uring,
    /// Linux `recvmmsg`/`sendmmsg` batching (see [`crate::mmsg`]).
    Mmsg,
    /// Portable one-datagram-per-syscall loop; always available, the
    /// behavioural reference the batched backend must match.
    Fallback,
}

impl UdpBackend {
    /// Stable lowercase name, as accepted by `ALPHA_UDP_BACKEND` and
    /// reported in `engine stats` / BENCH_*.json outputs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            UdpBackend::Uring => "uring",
            UdpBackend::Mmsg => "mmsg",
            UdpBackend::Fallback => "fallback",
        }
    }

    /// Parse a backend name (the inverse of [`UdpBackend::name`]).
    #[must_use]
    pub fn parse(name: &str) -> Option<UdpBackend> {
        match name {
            "uring" => Some(UdpBackend::Uring),
            "mmsg" => Some(UdpBackend::Mmsg),
            "fallback" => Some(UdpBackend::Fallback),
            _ => None,
        }
    }

    /// Whether this backend can run on the current platform.
    #[must_use]
    pub fn is_supported(self) -> bool {
        match self {
            UdpBackend::Fallback => true,
            UdpBackend::Mmsg => cfg!(target_os = "linux"),
            // A live probe, not a cfg: io_uring needs kernel support
            // for multishot RECVMSG + provided-buffer rings (>= 6.0).
            #[cfg(target_os = "linux")]
            UdpBackend::Uring => crate::uring::supported(),
            #[cfg(not(target_os = "linux"))]
            UdpBackend::Uring => false,
        }
    }
}

impl std::fmt::Display for UdpBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Backends usable on this platform, in increasing preference order.
#[must_use]
pub fn available() -> Vec<UdpBackend> {
    let mut v = vec![UdpBackend::Fallback];
    if UdpBackend::Mmsg.is_supported() {
        v.push(UdpBackend::Mmsg);
    }
    if UdpBackend::Uring.is_supported() {
        v.push(UdpBackend::Uring);
    }
    v
}

/// What auto-detection picks on this platform (ignoring the override).
#[must_use]
pub fn detect() -> UdpBackend {
    if UdpBackend::Uring.is_supported() {
        UdpBackend::Uring
    } else if UdpBackend::Mmsg.is_supported() {
        UdpBackend::Mmsg
    } else {
        UdpBackend::Fallback
    }
}

// 0 = not yet resolved; otherwise backend code below.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn code(kind: UdpBackend) -> u8 {
    match kind {
        UdpBackend::Mmsg => 1,
        UdpBackend::Fallback => 2,
        UdpBackend::Uring => 3,
    }
}

/// The UDP backend in effect for this process.
///
/// Resolved once on first use: `ALPHA_UDP_BACKEND` if set and valid,
/// otherwise [`detect`]. Subsequent calls are one relaxed atomic load.
#[must_use]
pub fn active() -> UdpBackend {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => UdpBackend::Mmsg,
        2 => UdpBackend::Fallback,
        3 => UdpBackend::Uring,
        _ => {
            let kind = resolve();
            ACTIVE.store(code(kind), Ordering::Relaxed);
            kind
        }
    }
}

fn resolve() -> UdpBackend {
    match std::env::var("ALPHA_UDP_BACKEND") {
        Ok(raw) => {
            let name = raw.trim().to_ascii_lowercase();
            if name.is_empty() || name == "auto" {
                return detect();
            }
            match UdpBackend::parse(&name) {
                Some(kind) if kind.is_supported() => kind,
                Some(kind) => {
                    eprintln!(
                        "alpha-transport: ALPHA_UDP_BACKEND={} not supported on this \
                         platform/kernel; falling back to {}",
                        kind.name(),
                        detect().name()
                    );
                    detect()
                }
                None => {
                    eprintln!(
                        "alpha-transport: unknown ALPHA_UDP_BACKEND={raw:?} \
                         (expected uring|mmsg|fallback|auto); falling back to {}",
                        detect().name()
                    );
                    detect()
                }
            }
        }
        Err(_) => detect(),
    }
}

/// Error returned by [`force`] for a backend this platform lacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedBackend(
    /// The backend that was requested.
    pub UdpBackend,
);

impl std::fmt::Display for UnsupportedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "udp backend {} not supported on this platform", self.0)
    }
}

impl std::error::Error for UnsupportedBackend {}

/// Force the process-wide backend. Intended for benches and tests that
/// compare backends in one process; both backends move identical bytes,
/// so switching mid-flight only changes which syscalls run.
pub fn force(kind: UdpBackend) -> Result<(), UnsupportedBackend> {
    if !kind.is_supported() {
        return Err(UnsupportedBackend(kind));
    }
    ACTIVE.store(code(kind), Ordering::Relaxed);
    Ok(())
}

/// One received datagram: its source, its pooled frame, and whether the
/// kernel had to cut it to fit the frame.
#[derive(Debug)]
pub struct RxDatagram {
    /// Source address.
    pub from: SocketAddr,
    /// The payload, in a frame on loan from the receive pool.
    pub frame: Frame,
    /// The datagram was longer than the frame and lost its tail.
    pub truncated: bool,
    /// When the receive syscall returned it (one stamp per batch on the
    /// batched backend). Cross-worker handoff latency is measured from
    /// here to ring drain.
    pub received: std::time::Instant,
}

/// A socket plus the backend that moves datagrams through it and the
/// per-worker counters it reports into.
pub struct UdpIo {
    socket: UdpSocket,
    backend: UdpBackend,
    counters: Arc<IoWorker>,
    /// Fallback receive staging: one reused buffer instead of a fresh
    /// allocation per datagram.
    scratch: Vec<u8>,
    /// Batched-receive staging: checked-out frames kept across calls so
    /// an idle poll costs no pool churn (see [`crate::mmsg::recv_batch`]).
    rx_frames: Vec<Frame>,
}

impl UdpIo {
    /// Wrap `socket` with the process-wide [`active`] backend.
    #[must_use]
    pub fn new(socket: UdpSocket, counters: Arc<IoWorker>) -> UdpIo {
        UdpIo::with_backend(socket, active(), counters)
    }

    /// Wrap `socket` with an explicit backend (downgraded to
    /// [`UdpBackend::Fallback`] if unsupported here).
    #[must_use]
    pub fn with_backend(socket: UdpSocket, backend: UdpBackend, counters: Arc<IoWorker>) -> UdpIo {
        let backend = if backend.is_supported() {
            backend
        } else {
            UdpBackend::Fallback
        };
        UdpIo {
            socket,
            backend,
            counters,
            scratch: Vec::new(),
            rx_frames: Vec::new(),
        }
    }

    /// The wrapped socket (timeouts, local address, direct sends).
    #[must_use]
    pub fn socket(&self) -> &UdpSocket {
        &self.socket
    }

    /// The backend in effect for this socket.
    #[must_use]
    pub fn backend(&self) -> UdpBackend {
        self.backend
    }

    /// This endpoint's counter block.
    #[must_use]
    pub fn counters(&self) -> &Arc<IoWorker> {
        &self.counters
    }

    /// Receive up to `max` datagrams into pooled frames appended to
    /// `out`, blocking for the first one up to the socket's read
    /// timeout. Returns how many arrived; `Ok(0)` on timeout. The
    /// batched backend drains whatever else is queued in the same
    /// syscall; the fallback moves exactly one datagram per call.
    pub fn recv_batch(
        &mut self,
        pool: &FramePool,
        out: &mut Vec<RxDatagram>,
        max: usize,
    ) -> io::Result<usize> {
        match self.backend {
            // A plain endpoint under the uring backend has no ring
            // attached (rings live in the engine worker loop); it uses
            // the batched syscall path.
            #[cfg(target_os = "linux")]
            UdpBackend::Mmsg | UdpBackend::Uring => {
                self.counters.recv_calls.fetch_add(1, Ordering::Relaxed);
                match crate::mmsg::recv_batch(&self.socket, pool, &mut self.rx_frames, out, max) {
                    Ok(0) => {
                        self.counters.eagain.fetch_add(1, Ordering::Relaxed);
                        Ok(0)
                    }
                    Ok(n) => {
                        self.counters
                            .datagrams_in
                            .fetch_add(n as u64, Ordering::Relaxed);
                        Ok(n)
                    }
                    Err(e) if recoverable(&e) => {
                        self.counters.eagain.fetch_add(1, Ordering::Relaxed);
                        Ok(0)
                    }
                    Err(e) => Err(e),
                }
            }
            #[cfg(not(target_os = "linux"))]
            UdpBackend::Mmsg | UdpBackend::Uring => {
                unreachable!("batched backend rejected at construction")
            }
            UdpBackend::Fallback => {
                let _ = max;
                if self.scratch.is_empty() {
                    self.scratch.resize(MAX_DATAGRAM, 0);
                }
                self.counters.recv_calls.fetch_add(1, Ordering::Relaxed);
                match self.socket.recv_from(&mut self.scratch) {
                    Ok((n, from)) => {
                        self.counters.datagrams_in.fetch_add(1, Ordering::Relaxed);
                        let mut frame = pool.checkout();
                        frame.buf_mut().extend_from_slice(&self.scratch[..n]);
                        out.push(RxDatagram {
                            from,
                            frame,
                            // recv_from cannot distinguish a datagram of
                            // exactly scratch size from a truncated one.
                            truncated: n == self.scratch.len(),
                            received: std::time::Instant::now(),
                        });
                        Ok(1)
                    }
                    Err(e) if recoverable(&e) => {
                        self.counters.eagain.fetch_add(1, Ordering::Relaxed);
                        Ok(0)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }

    /// Send every datagram in `msgs`, gathering up to [`MAX_BATCH`] per
    /// syscall on the batched backend and resubmitting any tail a
    /// partial `sendmmsg` leaves behind. Returns the count sent.
    pub fn send_batch(&self, msgs: &[(SocketAddr, Frame)]) -> io::Result<usize> {
        match self.backend {
            #[cfg(target_os = "linux")]
            UdpBackend::Mmsg | UdpBackend::Uring => {
                let mut sent = 0usize;
                while sent < msgs.len() {
                    let chunk = (msgs.len() - sent).min(MAX_BATCH);
                    match crate::mmsg::send_batch(&self.socket, &msgs[sent..sent + chunk]) {
                        Ok(0) => {
                            // The kernel accepted nothing but reported
                            // success: treat as an error rather than spin.
                            return Err(io::Error::other("sendmmsg accepted 0 datagrams"));
                        }
                        Ok(n) => {
                            self.counters.send_calls.fetch_add(1, Ordering::Relaxed);
                            self.counters
                                .datagrams_out
                                .fetch_add(n as u64, Ordering::Relaxed);
                            if n < chunk {
                                self.counters.partial_sends.fetch_add(1, Ordering::Relaxed);
                            }
                            sent += n;
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                            // Resubmitted below; was a silent spin
                            // before send_retries existed.
                            self.counters.send_retries.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(sent)
            }
            #[cfg(not(target_os = "linux"))]
            UdpBackend::Mmsg | UdpBackend::Uring => {
                unreachable!("batched backend rejected at construction")
            }
            UdpBackend::Fallback => {
                for (dst, frame) in msgs {
                    loop {
                        self.counters.send_calls.fetch_add(1, Ordering::Relaxed);
                        match self.socket.send_to(frame, *dst) {
                            Ok(_) => break,
                            Err(e) if recoverable(&e) => {
                                // Transient backpressure: resubmit the
                                // same datagram, visibly.
                                self.counters.send_retries.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    self.counters.datagrams_out.fetch_add(1, Ordering::Relaxed);
                }
                Ok(msgs.len())
            }
        }
    }
}

fn recoverable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for kind in [UdpBackend::Uring, UdpBackend::Mmsg, UdpBackend::Fallback] {
            assert_eq!(UdpBackend::parse(kind.name()), Some(kind));
        }
        assert_eq!(UdpBackend::parse("carrier-pigeon"), None);
    }

    #[test]
    fn available_always_has_fallback() {
        let avail = available();
        assert!(avail.contains(&UdpBackend::Fallback));
        assert!(avail.contains(&detect()));
    }
}
