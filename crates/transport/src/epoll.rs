//! Raw Linux readiness FFI: `epoll`, `eventfd` doorbells and `timerfd`
//! microsecond timers. One of two FFI modules in the crate containing
//! `unsafe` (the other is [`crate::mmsg`], whose style this module
//! mirrors).
//!
//! No crates.io access means no `libc`: the ABI is declared by hand —
//! `epoll_event` and `itimerspec` as `#[repr(C)]` types matching the
//! x86_64 / aarch64 Linux layouts (`epoll_event` is packed on x86_64
//! only, a historical quirk of the 32/64-bit compat layer), and the
//! calls as plain `extern "C"` glibc imports. The layouts and semantics
//! are locked down by the property tests in `tests/epoll_props.rs`:
//! struct sizes, doorbell ring/drain round trips, timer precision and
//! socket readiness over a real loopback pair.
//!
//! Safety argument, once for the whole module: every `unsafe` block
//! here is one of exactly two shapes.
//!
//! 1. A call to an imported C function whose pointer arguments (if any)
//!    are derived from live Rust allocations (stack arrays or locals)
//!    that outlive the call, with lengths taken from the same
//!    allocation. The kernel reads/writes only within those bounds.
//! 2. `OwnedFd::from_raw_fd` on a file descriptor this module just
//!    created and exclusively owns, transferring ownership to the
//!    returned handle (which closes it on drop).
//!
//! Wiring (one instance of everything per worker, see
//! `crate::server`): an [`Epoll`] set watches the worker's socket, one
//! [`EventFd`] doorbell per inbound handoff ring, and one [`TimerFd`]
//! armed from the engine's per-worker cached min-deadline. The
//! doorbell protocol is ring-after-push: the sender pushes onto the
//! SPSC handoff ring (a release store) *then* writes the eventfd, so
//! by the time the owner's `epoll_wait` reports the doorbell the
//! datagram is already visible in the ring. Draining the ring first
//! and the doorbell after is therefore also safe — a bell with an
//! empty ring is a harmless spurious wake, never a lost datagram.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint, c_void};
use std::time::Duration;

/// Most readiness events drained per `epoll_wait` call: the socket,
/// the timer, and every doorbell of a wide worker pool fit with room
/// to spare.
pub const MAX_EVENTS: usize = 64;

// ---------------------------------------------------------------------------
// ABI constants (x86_64 / aarch64 Linux values).
// ---------------------------------------------------------------------------

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
/// Readable (level-triggered, the default).
const EPOLLIN: u32 = 0x001;
/// Wake only one of the epoll instances watching this fd — the
/// SO_REUSEPORT-less shared-socket case, where every worker's set
/// holds the same underlying socket.
const EPOLLEXCLUSIVE: u32 = 1 << 28;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const CLOCK_MONOTONIC: c_int = 1;
const TFD_CLOEXEC: c_int = 0o2000000;
const TFD_NONBLOCK: c_int = 0o4000;

// ---------------------------------------------------------------------------
// ABI types.
// ---------------------------------------------------------------------------

/// `struct epoll_event`. Packed on x86_64 (12 bytes) so the 64-bit
/// kernel shares one layout with 32-bit userspace; naturally aligned
/// (16 bytes) everywhere else.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN` et al.).
    pub events: u32,
    /// Caller-chosen cookie, returned verbatim; the worker loop stores
    /// its token here.
    pub data: u64,
}

/// `struct timespec` (x86_64/aarch64: both fields are 64-bit).
#[repr(C)]
#[derive(Clone, Copy)]
struct TimeSpec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// `struct itimerspec`: interval (zero = one-shot) + initial expiry.
#[repr(C)]
#[derive(Clone, Copy)]
struct ITimerSpec {
    it_interval: TimeSpec,
    it_value: TimeSpec,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn timerfd_create(clockid: c_int, flags: c_int) -> c_int;
    fn timerfd_settime(
        fd: c_int,
        flags: c_int,
        new_value: *const ITimerSpec,
        old_value: *mut ITimerSpec,
    ) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

// ---------------------------------------------------------------------------
// Epoll.
// ---------------------------------------------------------------------------

/// One readiness set (`epoll_create1` instance). Closed on drop.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// A fresh, empty readiness set.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: shape 1 — no pointers; returns a fresh fd or -1.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: shape 2 — `fd` was just created above and nothing
        // else holds it.
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// Watch `fd` for readability, tagging events with `token`.
    /// `exclusive` requests `EPOLLEXCLUSIVE` — use it when several
    /// workers' sets watch one shared socket so the kernel wakes only
    /// one of them per datagram instead of thundering the whole herd.
    pub fn add(&self, fd: RawFd, token: u64, exclusive: bool) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: EPOLLIN | if exclusive { EPOLLEXCLUSIVE } else { 0 },
            data: token,
        };
        // SAFETY: shape 1 — `ev` is a live stack value; the kernel
        // copies it during the call and keeps no pointer to it.
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_ADD, fd, &mut ev) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Block up to `timeout_ms` for readiness (negative = forever),
    /// appending the token of every ready fd to `tokens`. Returns how
    /// many fired; `Ok(0)` on timeout. `EINTR` is treated as a timeout
    /// (the worker loop re-checks shutdown either way).
    pub fn wait(&self, timeout_ms: i32, tokens: &mut Vec<u64>) -> io::Result<usize> {
        let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        // SAFETY: shape 1 — `events` is a live stack array of
        // MAX_EVENTS entries and the length passed matches; the kernel
        // writes at most that many entries.
        let rc = unsafe {
            epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                MAX_EVENTS as c_int,
                timeout_ms as c_int,
            )
        };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        let n = (rc as usize).min(MAX_EVENTS);
        for ev in &events[..n] {
            // Copy out of the (possibly packed) struct by value; no
            // reference to a packed field is ever formed.
            let token = ev.data;
            tokens.push(token);
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// EventFd doorbell.
// ---------------------------------------------------------------------------

/// A nonblocking `eventfd` used as a wake-up doorbell: writers add to a
/// kernel counter, the owner's `epoll_wait` reports it readable while
/// the counter is nonzero, and [`EventFd::drain`] zeroes it again.
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// A fresh doorbell with a zero counter.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: shape 1 — no pointers; returns a fresh fd or -1.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: shape 2 — `fd` was just created above and nothing
        // else holds it.
        Ok(EventFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// Ring the doorbell (add 1 to the counter). Infallible by design:
    /// `EAGAIN` means the counter is already saturated — the owner is
    /// guaranteed a pending wake, which is all a doorbell promises.
    pub fn ring(&self) {
        let one: u64 = 1;
        // SAFETY: shape 1 — `one` is a live stack u64 and the length
        // matches its size; the kernel only reads those 8 bytes.
        let _ = unsafe {
            write(
                self.fd.as_raw_fd(),
                (&one as *const u64).cast::<c_void>(),
                8,
            )
        };
    }

    /// Reset the counter; returns how many rings had accumulated
    /// (0 when the bell was silent).
    pub fn drain(&self) -> u64 {
        let mut count: u64 = 0;
        // SAFETY: shape 1 — `count` is a live stack u64 and the length
        // matches its size; the kernel writes exactly 8 bytes on
        // success.
        let rc = unsafe {
            read(
                self.fd.as_raw_fd(),
                (&mut count as *mut u64).cast::<c_void>(),
                8,
            )
        };
        if rc == 8 {
            count
        } else {
            0
        }
    }
}

impl AsRawFd for EventFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }
}

// ---------------------------------------------------------------------------
// TimerFd.
// ---------------------------------------------------------------------------

/// A nonblocking one-shot `timerfd` on the monotonic clock: armed with
/// a relative delay at nanosecond ABI precision (the worker loop feeds
/// it microseconds), readable once expired, silent after
/// [`TimerFd::disarm`].
pub struct TimerFd {
    fd: OwnedFd,
}

impl TimerFd {
    /// A fresh, disarmed timer.
    pub fn new() -> io::Result<TimerFd> {
        // SAFETY: shape 1 — no pointers; returns a fresh fd or -1.
        let fd = unsafe { timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: shape 2 — `fd` was just created above and nothing
        // else holds it.
        Ok(TimerFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn settime(&self, value: TimeSpec) -> io::Result<()> {
        let spec = ITimerSpec {
            it_interval: TimeSpec {
                tv_sec: 0,
                tv_nsec: 0,
            },
            it_value: value,
        };
        // SAFETY: shape 1 — `spec` is a live stack value the kernel
        // copies during the call; the old-value pointer is null.
        let rc = unsafe { timerfd_settime(self.fd.as_raw_fd(), 0, &spec, std::ptr::null_mut()) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Arm (or re-arm) the timer to fire once, `delay` from now. A zero
    /// delay is clamped to 1 ns — an all-zero `itimerspec` means
    /// *disarm*, and an already-due deadline must still fire.
    pub fn arm_in(&self, delay: Duration) -> io::Result<()> {
        let mut secs = delay.as_secs() as i64;
        let mut nanos = i64::from(delay.subsec_nanos());
        if secs == 0 && nanos == 0 {
            nanos = 1;
        }
        if secs < 0 {
            secs = i64::MAX;
        }
        self.settime(TimeSpec {
            tv_sec: secs,
            tv_nsec: nanos,
        })
    }

    /// Cancel any pending expiry.
    pub fn disarm(&self) -> io::Result<()> {
        self.settime(TimeSpec {
            tv_sec: 0,
            tv_nsec: 0,
        })
    }

    /// Acknowledge an expiry so the fd reads as quiet again; returns
    /// the kernel's expiration count (0 when the timer had not fired).
    pub fn drain(&self) -> u64 {
        let mut count: u64 = 0;
        // SAFETY: shape 1 — `count` is a live stack u64 and the length
        // matches its size; the kernel writes exactly 8 bytes on
        // success.
        let rc = unsafe {
            read(
                self.fd.as_raw_fd(),
                (&mut count as *mut u64).cast::<c_void>(),
                8,
            )
        };
        if rc == 8 {
            count
        } else {
            0
        }
    }
}

impl AsRawFd for TimerFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }
}
