//! Saturation load generator for a live engine over real sockets.
//!
//! Every scaling number the benches publish by default comes from the
//! share-nothing *makespan model* (workers timed sequentially); this
//! module is the live counterpart. It binds a real multi-worker
//! [`Engine`] on loopback, stands up N sender threads each driving F
//! concurrent flows through full ALPHA exchanges (S1 → A1 → S2) over
//! their own UDP sockets, and measures the server's verified-S2
//! throughput with all threads actually running concurrently — kernel
//! RSS, SO_REUSEPORT, handoff rings, timer wheels and all.
//!
//! The measurement window opens only after every flow has completed its
//! handshake, so the number reported is steady-state verify throughput,
//! not handshake throughput. `host_cores` rides along in the report:
//! on a single-core host the live number is a scheduling exercise, and
//! consumers (ci.sh, BENCH_engine_scaling.json) must not read a
//! speedup off it.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use alpha_core::{Config, Mode, Timestamp};
use alpha_crypto::Algorithm;
use alpha_engine::{EngineConfig, EngineCore, IoTotals};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::io::MAX_DATAGRAM;
use crate::server::Engine;

/// Load-generator run parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server worker threads (each with its own SO_REUSEPORT socket
    /// when the mmsg backend is active).
    pub workers: usize,
    /// Sender threads, each with its own socket and client engine.
    pub senders: usize,
    /// Concurrent flows per sender thread.
    pub flows_per_sender: usize,
    /// Payload bytes per exchange.
    pub payload: usize,
    /// Measurement window (after all handshakes complete).
    pub duration: Duration,
    /// Server flow-table shards.
    pub shards: usize,
    /// Hash-chain length for every association.
    pub chain_len: u64,
    /// Cross-worker handoff ring capacity.
    pub handoff_ring: usize,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            workers: 4,
            senders: 4,
            flows_per_sender: 16,
            payload: 256,
            duration: Duration::from_secs(2),
            shards: 64,
            chain_len: 1024,
            handoff_ring: 1024,
        }
    }
}

impl LoadgenConfig {
    /// The ci.sh smoke preset: small, sub-second, still end-to-end.
    #[must_use]
    pub fn quick() -> LoadgenConfig {
        LoadgenConfig {
            workers: 2,
            senders: 2,
            flows_per_sender: 8,
            duration: Duration::from_millis(500),
            ..LoadgenConfig::default()
        }
    }

    /// Total concurrent flows across all senders.
    #[must_use]
    pub fn total_flows(&self) -> usize {
        self.senders * self.flows_per_sender
    }
}

/// What a load-generator run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// The configuration that produced this report.
    pub workers: usize,
    /// Sender threads.
    pub senders: usize,
    /// Total flows driven.
    pub flows: usize,
    /// Cores the host actually has (`host_cores < 2` means the live
    /// number cannot demonstrate parallel speedup).
    pub host_cores: usize,
    /// Measurement window actually elapsed.
    pub elapsed: Duration,
    /// Verified S2 exchanges inside the window.
    pub s2_verified: u64,
    /// Verified S2 exchanges per second (the headline number).
    pub s2_per_sec: f64,
    /// Server-side I/O totals over the whole run (includes handshakes).
    pub io: IoTotals,
    /// Contended shard-lock acquisitions on the server over the whole
    /// run (handshakes + claims included; steady state contributes
    /// zero by construction).
    pub lock_contended: u64,
    /// Whether workers got their own SO_REUSEPORT sockets.
    pub reuseport: bool,
    /// Active UDP backend name.
    pub udp_backend: &'static str,
    /// Wait backend the server's workers actually ran (from the
    /// engine's metrics, so a doorbell-setup fallback is reported
    /// truthfully).
    pub wait_backend: &'static str,
    /// Worker wakeups per second measured with the engine bound but no
    /// client traffic — the wasted-CPU number the readiness backend
    /// collapses (fallback: ~`1s / RECV_TIMEOUT` per worker).
    pub idle_wakeups_per_sec: f64,
    /// Cross-worker handed-off datagrams measured during the run.
    pub handoff_samples: u64,
    /// Median ring-wait of a handed-off datagram (µs, bucket upper
    /// bound; 0 when no handoffs occurred).
    pub handoff_p50_us: u64,
    /// 99th-percentile ring-wait (µs, bucket upper bound).
    pub handoff_p99_us: u64,
    /// Client-side signing errors (chain exhaustion etc.; should be 0).
    pub sign_errors: u64,
}

impl LoadgenReport {
    /// Hand-rolled JSON rendering (same dialect as the BENCH emitters).
    #[must_use]
    pub fn json(&self) -> String {
        format!(
            concat!(
                "{{\"runtime_mode\":\"live\",\"host_cores\":{},\"workers\":{},",
                "\"senders\":{},\"flows\":{},\"elapsed_sec\":{:.3},",
                "\"s2_verified\":{},\"s2_per_sec\":{:.1},",
                "\"handoff_in\":{},\"handoff_out\":{},\"handoff_overflow\":{},",
                "\"lock_contended\":{},\"reuseport\":{},\"udp_backend\":\"{}\",",
                "\"wait_backend\":\"{}\",\"idle_wakeups_per_sec\":{:.1},",
                "\"send_retries\":{},\"syscalls_per_datagram\":{:.4},",
                "\"handoff_samples\":{},\"handoff_wait_p50_us\":{},",
                "\"handoff_wait_p99_us\":{},",
                "\"sign_errors\":{}}}"
            ),
            self.host_cores,
            self.workers,
            self.senders,
            self.flows,
            self.elapsed.as_secs_f64(),
            self.s2_verified,
            self.s2_per_sec,
            self.io.handoff_in,
            self.io.handoff_out,
            self.io.handoff_overflow,
            self.lock_contended,
            self.reuseport,
            self.udp_backend,
            self.wait_backend,
            self.idle_wakeups_per_sec,
            self.io.send_retries,
            self.io.syscalls_per_datagram(),
            self.handoff_samples,
            self.handoff_p50_us,
            self.handoff_p99_us,
            self.sign_errors,
        )
    }
}

/// Number of cores this host can actually run in parallel.
#[must_use]
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn proto(chain_len: u64) -> Config {
    Config::new(Algorithm::Sha1).with_chain_len(chain_len)
}

/// Drive a live engine at saturation and report verified-S2 throughput.
///
/// Binds the server on an ephemeral loopback port, spawns the senders,
/// waits for every flow to finish its handshake, then opens the
/// measurement window.
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let engine_cfg = EngineConfig::new(proto(cfg.chain_len))
        .with_shards(cfg.shards)
        .with_handoff_ring(cfg.handoff_ring);
    let server = Engine::bind("127.0.0.1:0", EngineCore::new(engine_cfg), cfg.workers)?;
    let server_addr = server.local_addr()?;

    // Idle section: the engine is up, no client traffic yet, no timers
    // armed. The wakeup rate with nothing to do is pure overhead — the
    // number the readiness backend collapses from `workers / 5ms` to a
    // few backstop ticks per second.
    let idle_window = cfg
        .duration
        .clamp(Duration::from_millis(100), Duration::from_millis(400));
    let idle_before = server.core().metrics().io.totals().wakeups;
    std::thread::sleep(idle_window);
    let idle_wakeups = server
        .core()
        .metrics()
        .io
        .totals()
        .wakeups
        .saturating_sub(idle_before);
    let idle_wakeups_per_sec = idle_wakeups as f64 / idle_window.as_secs_f64();

    let stop = Arc::new(AtomicBool::new(false));
    let connected = Arc::new(AtomicUsize::new(0));
    let sign_errors = Arc::new(AtomicU64::new(0));
    let mut senders = Vec::with_capacity(cfg.senders);
    for s in 0..cfg.senders {
        let cfg = cfg.clone();
        let stop = Arc::clone(&stop);
        let connected = Arc::clone(&connected);
        let sign_errors = Arc::clone(&sign_errors);
        senders.push(std::thread::spawn(move || {
            sender_thread(s, server_addr, &cfg, &stop, &connected, &sign_errors)
        }));
    }

    // Handshake barrier: the window opens when every flow is up.
    let total = cfg.total_flows();
    let deadline = Instant::now() + Duration::from_secs(30);
    while connected.load(Ordering::Relaxed) < total {
        if Instant::now() >= deadline {
            stop.store(true, Ordering::Relaxed);
            for t in senders {
                let _ = t.join();
            }
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "only {}/{} flows connected within 30s",
                    connected.load(Ordering::Relaxed),
                    total
                ),
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let metrics = server.core().metrics();
    let s2_before = metrics.s2_verified.load(Ordering::Relaxed);
    let window = Instant::now();
    std::thread::sleep(cfg.duration);
    let elapsed = window.elapsed();
    let s2_after = metrics.s2_verified.load(Ordering::Relaxed);

    stop.store(true, Ordering::Relaxed);
    for t in senders {
        let _ = t.join();
    }

    let s2_verified = s2_after.saturating_sub(s2_before);
    let io_totals = metrics.io.totals();
    let handoffs = &metrics.io.handoff_wait_us;
    let report = LoadgenReport {
        workers: cfg.workers,
        senders: cfg.senders,
        flows: total,
        host_cores: host_cores(),
        elapsed,
        s2_verified,
        s2_per_sec: s2_verified as f64 / elapsed.as_secs_f64(),
        io: io_totals,
        lock_contended: server.core().lock_contended(),
        reuseport: server.per_worker_sockets(),
        udp_backend: crate::io::active().name(),
        wait_backend: metrics.io.wait_backend_name(),
        idle_wakeups_per_sec,
        handoff_samples: handoffs.count(),
        handoff_p50_us: handoffs.quantile_us(0.50),
        handoff_p99_us: handoffs.quantile_us(0.99),
        sign_errors: sign_errors.load(Ordering::Relaxed),
    };
    server.shutdown();
    Ok(report)
}

/// One sender: its own socket, its own client engine, F flows pumped
/// as hard as they will go — every idle flow immediately signs the
/// next exchange.
fn sender_thread(
    index: usize,
    server_addr: SocketAddr,
    cfg: &LoadgenConfig,
    stop: &AtomicBool,
    connected: &AtomicUsize,
    sign_errors: &AtomicU64,
) -> u64 {
    let core = EngineCore::new(EngineConfig::new(proto(cfg.chain_len)));
    let socket = UdpSocket::bind("127.0.0.1:0").expect("sender bind");
    socket
        .set_read_timeout(Some(Duration::from_millis(1)))
        .expect("sender timeout");
    let start = Instant::now();
    let now = |s: Instant| Timestamp::from_micros(s.elapsed().as_micros() as u64);
    let mut rng = StdRng::seed_from_u64(0xA1FA_0000 + index as u64);
    let payload = vec![0x5A_u8; cfg.payload];

    let mut keys = Vec::with_capacity(cfg.flows_per_sender);
    let mut up = std::collections::HashSet::new();
    let send_out = |socket: &UdpSocket, datagrams: &[(SocketAddr, alpha_wire::Frame)]| {
        for (dst, bytes) in datagrams {
            let _ = socket.send_to(bytes, *dst);
        }
    };
    for f in 0..cfg.flows_per_sender {
        let assoc = (index * 100_000 + f) as u64 + 1;
        let (key, out) = core.connect(server_addr, assoc, now(start), &mut rng);
        send_out(&socket, &out.datagrams);
        keys.push(key);
    }

    let mut exchanges = 0u64;
    let mut buf = vec![0u8; MAX_DATAGRAM];
    while !stop.load(Ordering::Relaxed) {
        let t = now(start);
        // Timers: connect resends, renewals, protocol polls.
        let out = core.poll(t, &mut rng);
        send_out(&socket, &out.datagrams);
        for key in &out.completed {
            if up.insert(*key) {
                connected.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Drain a burst of responses.
        for _ in 0..64 {
            match socket.recv_from(&mut buf) {
                Ok((n, from)) => {
                    let out = core.handle_datagram(from, &buf[..n], t, &mut rng);
                    send_out(&socket, &out.datagrams);
                    for key in &out.completed {
                        if up.insert(*key) {
                            connected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Err(_) => break, // timeout: go sign / poll timers
            }
        }
        // Saturation: every idle established flow starts its next
        // exchange immediately.
        for key in &keys {
            if up.contains(key) && core.flow_is_idle(*key) {
                match core.sign_batch(*key, &[&payload[..]], Mode::Base, t) {
                    Ok(out) => {
                        exchanges += 1;
                        send_out(&socket, &out.datagrams);
                    }
                    Err(_) => {
                        sign_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
    exchanges
}

/// What [`probe_handoff`] measured: the wake-to-verify path of
/// cross-worker datagrams on a lightly-loaded engine.
#[derive(Debug, Clone)]
pub struct HandoffProbe {
    /// Handed-off datagrams observed. Zero when the single-socket UDP
    /// backend is active — without SO_REUSEPORT every datagram lands on
    /// the shared socket and there is no cross-worker path to measure.
    pub samples: u64,
    /// Median push-to-drain ring wait (µs, bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile ring wait (µs, bucket upper bound).
    pub p99_us: u64,
    /// Mean ring wait in µs.
    pub mean_us: f64,
    /// Whether workers had their own SO_REUSEPORT sockets.
    pub reuseport: bool,
    /// Wait backend the server's workers actually ran.
    pub wait_backend: &'static str,
}

/// Measure cross-worker handoff latency on a lightly-loaded 2-worker
/// engine.
///
/// With `preclaim`, worker 0 claims every shard before any client
/// connects, so any datagram the kernel steers to worker 1's socket
/// *must* cross a handoff ring — the regression-test configuration.
/// The client side is paced (one exchange per idle flow per ~2 ms
/// round), so the ring wait measures the receiving worker's wakeup
/// path, not queueing under saturation: under the epoll backend the
/// doorbell wakes the owner in microseconds; under the fallback the
/// datagram sits until the owner's next timeout expiry.
pub fn probe_handoff(duration: Duration, preclaim: bool) -> io::Result<HandoffProbe> {
    const SHARDS: usize = 4;
    const CLIENTS: usize = 16;
    const CHAIN_LEN: u64 = 4096;

    let engine_cfg = EngineConfig::new(proto(CHAIN_LEN)).with_shards(SHARDS);
    let server = Engine::bind("127.0.0.1:0", EngineCore::new(engine_cfg), 2)?;
    let server_addr = server.local_addr()?;
    if preclaim {
        for s in 0..server.core().shard_count() {
            server.core().claim_shard(s, 0);
        }
    }

    struct Client {
        core: EngineCore,
        socket: UdpSocket,
        key: alpha_engine::FlowKey,
        up: bool,
    }

    let start = Instant::now();
    let now = |s: Instant| Timestamp::from_micros(s.elapsed().as_micros() as u64);
    let mut rng = StdRng::seed_from_u64(0xA1FA_D00B);
    let payload = [0x5A_u8; 64];
    let send_out = |socket: &UdpSocket, datagrams: &[(SocketAddr, alpha_wire::Frame)]| {
        for (dst, bytes) in datagrams {
            let _ = socket.send_to(bytes, *dst);
        }
    };

    // One core + socket per flow: distinct source ports make the kernel
    // RSS hash spread the flows across both workers' sockets.
    let mut clients = Vec::with_capacity(CLIENTS);
    for c in 0..CLIENTS {
        let core = EngineCore::new(EngineConfig::new(proto(CHAIN_LEN)));
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_nonblocking(true)?;
        let (key, out) = core.connect(server_addr, c as u64 + 1, now(start), &mut rng);
        send_out(&socket, &out.datagrams);
        clients.push(Client {
            core,
            socket,
            key,
            up: false,
        });
    }

    // Drive all clients from this thread; the server side is what we
    // are measuring.
    let mut buf = vec![0u8; MAX_DATAGRAM];
    let handshake_deadline = Instant::now() + Duration::from_secs(10);
    let mut window_open: Option<Instant> = None;
    loop {
        let t = now(start);
        let mut all_up = true;
        for cl in &mut clients {
            let out = cl.core.poll(t, &mut rng);
            send_out(&cl.socket, &out.datagrams);
            cl.up |= !out.completed.is_empty();
            while let Ok((n, from)) = cl.socket.recv_from(&mut buf) {
                let out = cl.core.handle_datagram(from, &buf[..n], t, &mut rng);
                send_out(&cl.socket, &out.datagrams);
                cl.up |= !out.completed.is_empty();
            }
            all_up &= cl.up;
            if window_open.is_some() && cl.up && cl.core.flow_is_idle(cl.key) {
                if let Ok(out) = cl.core.sign_batch(cl.key, &[&payload[..]], Mode::Base, t) {
                    send_out(&cl.socket, &out.datagrams);
                }
            }
        }
        match window_open {
            None if all_up => window_open = Some(Instant::now()),
            None if Instant::now() >= handshake_deadline => {
                server.shutdown();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "handoff probe: flows did not connect within 10s",
                ));
            }
            Some(opened) if opened.elapsed() >= duration => break,
            _ => {}
        }
        // Pacing: the probe measures wakeup latency, not throughput.
        std::thread::sleep(Duration::from_millis(2));
    }

    let metrics = server.core().metrics();
    let waits = &metrics.io.handoff_wait_us;
    let probe = HandoffProbe {
        samples: waits.count(),
        p50_us: waits.quantile_us(0.50),
        p99_us: waits.quantile_us(0.99),
        mean_us: waits.mean_us(),
        reuseport: server.per_worker_sockets(),
        wait_backend: metrics.io.wait_backend_name(),
    };
    server.shutdown();
    Ok(probe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_verifies_exchanges_live() {
        let mut cfg = LoadgenConfig::quick();
        cfg.duration = Duration::from_millis(300);
        let report = run(&cfg).expect("loadgen run");
        assert!(
            report.s2_verified > 0,
            "live engine verified no S2 exchanges: {report:?}"
        );
        assert!(report.s2_per_sec > 0.0);
        assert_eq!(report.flows, cfg.total_flows());
        assert_eq!(report.sign_errors, 0);
        // The readiness fields carry the backend the workers ran.
        assert_eq!(report.wait_backend, crate::wait::active().name());
        assert!(report.idle_wakeups_per_sec >= 0.0);
        // The JSON render carries the honesty fields.
        let json = report.json();
        assert!(json.contains("\"runtime_mode\":\"live\""));
        assert!(json.contains("\"host_cores\":"));
        assert!(json.contains("\"wait_backend\":"));
        assert!(json.contains("\"idle_wakeups_per_sec\":"));
        assert!(json.contains("\"send_retries\":"));
        assert!(json.contains("\"syscalls_per_datagram\":"));
        assert!(json.contains("\"handoff_wait_p99_us\":"));
        let v: serde::Value = serde_json::from_str(&json).expect("valid json");
        assert_eq!(
            v.get("workers").and_then(serde::Value::as_u64),
            Some(cfg.workers as u64)
        );
        assert_eq!(
            v.get("wait_backend").and_then(serde::Value::as_str),
            Some(report.wait_backend)
        );
    }
}
