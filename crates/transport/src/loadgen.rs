//! Saturation load generator for a live engine over real sockets.
//!
//! Every scaling number the benches publish by default comes from the
//! share-nothing *makespan model* (workers timed sequentially); this
//! module is the live counterpart. It binds a real multi-worker
//! [`Engine`] on loopback, stands up N sender threads each driving F
//! concurrent flows through full ALPHA exchanges (S1 → A1 → S2) over
//! their own UDP sockets, and measures the server's verified-S2
//! throughput with all threads actually running concurrently — kernel
//! RSS, SO_REUSEPORT, handoff rings, timer wheels and all.
//!
//! The measurement window opens only after every flow has completed its
//! handshake, so the number reported is steady-state verify throughput,
//! not handshake throughput. `host_cores` rides along in the report:
//! on a single-core host the live number is a scheduling exercise, and
//! consumers (ci.sh, BENCH_engine_scaling.json) must not read a
//! speedup off it.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use alpha_core::{Config, Mode, Timestamp};
use alpha_crypto::Algorithm;
use alpha_engine::{EngineConfig, EngineCore, IoTotals};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::io::MAX_DATAGRAM;
use crate::server::Engine;

/// Load-generator run parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server worker threads (each with its own SO_REUSEPORT socket
    /// when the mmsg backend is active).
    pub workers: usize,
    /// Sender threads, each with its own socket and client engine.
    pub senders: usize,
    /// Concurrent flows per sender thread.
    pub flows_per_sender: usize,
    /// Payload bytes per exchange.
    pub payload: usize,
    /// Measurement window (after all handshakes complete).
    pub duration: Duration,
    /// Server flow-table shards.
    pub shards: usize,
    /// Hash-chain length for every association.
    pub chain_len: u64,
    /// Cross-worker handoff ring capacity.
    pub handoff_ring: usize,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            workers: 4,
            senders: 4,
            flows_per_sender: 16,
            payload: 256,
            duration: Duration::from_secs(2),
            shards: 64,
            chain_len: 1024,
            handoff_ring: 1024,
        }
    }
}

impl LoadgenConfig {
    /// The ci.sh smoke preset: small, sub-second, still end-to-end.
    #[must_use]
    pub fn quick() -> LoadgenConfig {
        LoadgenConfig {
            workers: 2,
            senders: 2,
            flows_per_sender: 8,
            duration: Duration::from_millis(500),
            ..LoadgenConfig::default()
        }
    }

    /// Total concurrent flows across all senders.
    #[must_use]
    pub fn total_flows(&self) -> usize {
        self.senders * self.flows_per_sender
    }
}

/// What a load-generator run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// The configuration that produced this report.
    pub workers: usize,
    /// Sender threads.
    pub senders: usize,
    /// Total flows driven.
    pub flows: usize,
    /// Cores the host actually has (`host_cores < 2` means the live
    /// number cannot demonstrate parallel speedup).
    pub host_cores: usize,
    /// Measurement window actually elapsed.
    pub elapsed: Duration,
    /// Verified S2 exchanges inside the window.
    pub s2_verified: u64,
    /// Verified S2 exchanges per second (the headline number).
    pub s2_per_sec: f64,
    /// Server-side I/O totals over the whole run (includes handshakes).
    pub io: IoTotals,
    /// Contended shard-lock acquisitions on the server over the whole
    /// run (handshakes + claims included; steady state contributes
    /// zero by construction).
    pub lock_contended: u64,
    /// Whether workers got their own SO_REUSEPORT sockets.
    pub reuseport: bool,
    /// Active UDP backend name.
    pub udp_backend: &'static str,
    /// Client-side signing errors (chain exhaustion etc.; should be 0).
    pub sign_errors: u64,
}

impl LoadgenReport {
    /// Hand-rolled JSON rendering (same dialect as the BENCH emitters).
    #[must_use]
    pub fn json(&self) -> String {
        format!(
            concat!(
                "{{\"runtime_mode\":\"live\",\"host_cores\":{},\"workers\":{},",
                "\"senders\":{},\"flows\":{},\"elapsed_sec\":{:.3},",
                "\"s2_verified\":{},\"s2_per_sec\":{:.1},",
                "\"handoff_in\":{},\"handoff_out\":{},\"handoff_overflow\":{},",
                "\"lock_contended\":{},\"reuseport\":{},\"udp_backend\":\"{}\",",
                "\"sign_errors\":{}}}"
            ),
            self.host_cores,
            self.workers,
            self.senders,
            self.flows,
            self.elapsed.as_secs_f64(),
            self.s2_verified,
            self.s2_per_sec,
            self.io.handoff_in,
            self.io.handoff_out,
            self.io.handoff_overflow,
            self.lock_contended,
            self.reuseport,
            self.udp_backend,
            self.sign_errors,
        )
    }
}

/// Number of cores this host can actually run in parallel.
#[must_use]
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn proto(chain_len: u64) -> Config {
    Config::new(Algorithm::Sha1).with_chain_len(chain_len)
}

/// Drive a live engine at saturation and report verified-S2 throughput.
///
/// Binds the server on an ephemeral loopback port, spawns the senders,
/// waits for every flow to finish its handshake, then opens the
/// measurement window.
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let engine_cfg = EngineConfig::new(proto(cfg.chain_len))
        .with_shards(cfg.shards)
        .with_handoff_ring(cfg.handoff_ring);
    let server = Engine::bind("127.0.0.1:0", EngineCore::new(engine_cfg), cfg.workers)?;
    let server_addr = server.local_addr()?;

    let stop = Arc::new(AtomicBool::new(false));
    let connected = Arc::new(AtomicUsize::new(0));
    let sign_errors = Arc::new(AtomicU64::new(0));
    let mut senders = Vec::with_capacity(cfg.senders);
    for s in 0..cfg.senders {
        let cfg = cfg.clone();
        let stop = Arc::clone(&stop);
        let connected = Arc::clone(&connected);
        let sign_errors = Arc::clone(&sign_errors);
        senders.push(std::thread::spawn(move || {
            sender_thread(s, server_addr, &cfg, &stop, &connected, &sign_errors)
        }));
    }

    // Handshake barrier: the window opens when every flow is up.
    let total = cfg.total_flows();
    let deadline = Instant::now() + Duration::from_secs(30);
    while connected.load(Ordering::Relaxed) < total {
        if Instant::now() >= deadline {
            stop.store(true, Ordering::Relaxed);
            for t in senders {
                let _ = t.join();
            }
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "only {}/{} flows connected within 30s",
                    connected.load(Ordering::Relaxed),
                    total
                ),
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let metrics = server.core().metrics();
    let s2_before = metrics.s2_verified.load(Ordering::Relaxed);
    let window = Instant::now();
    std::thread::sleep(cfg.duration);
    let elapsed = window.elapsed();
    let s2_after = metrics.s2_verified.load(Ordering::Relaxed);

    stop.store(true, Ordering::Relaxed);
    for t in senders {
        let _ = t.join();
    }

    let s2_verified = s2_after.saturating_sub(s2_before);
    let io_totals = metrics.io.totals();
    let report = LoadgenReport {
        workers: cfg.workers,
        senders: cfg.senders,
        flows: total,
        host_cores: host_cores(),
        elapsed,
        s2_verified,
        s2_per_sec: s2_verified as f64 / elapsed.as_secs_f64(),
        io: io_totals,
        lock_contended: server.core().lock_contended(),
        reuseport: server.per_worker_sockets(),
        udp_backend: crate::io::active().name(),
        sign_errors: sign_errors.load(Ordering::Relaxed),
    };
    server.shutdown();
    Ok(report)
}

/// One sender: its own socket, its own client engine, F flows pumped
/// as hard as they will go — every idle flow immediately signs the
/// next exchange.
fn sender_thread(
    index: usize,
    server_addr: SocketAddr,
    cfg: &LoadgenConfig,
    stop: &AtomicBool,
    connected: &AtomicUsize,
    sign_errors: &AtomicU64,
) -> u64 {
    let core = EngineCore::new(EngineConfig::new(proto(cfg.chain_len)));
    let socket = UdpSocket::bind("127.0.0.1:0").expect("sender bind");
    socket
        .set_read_timeout(Some(Duration::from_millis(1)))
        .expect("sender timeout");
    let start = Instant::now();
    let now = |s: Instant| Timestamp::from_micros(s.elapsed().as_micros() as u64);
    let mut rng = StdRng::seed_from_u64(0xA1FA_0000 + index as u64);
    let payload = vec![0x5A_u8; cfg.payload];

    let mut keys = Vec::with_capacity(cfg.flows_per_sender);
    let mut up = std::collections::HashSet::new();
    let send_out = |socket: &UdpSocket, datagrams: &[(SocketAddr, alpha_wire::Frame)]| {
        for (dst, bytes) in datagrams {
            let _ = socket.send_to(bytes, *dst);
        }
    };
    for f in 0..cfg.flows_per_sender {
        let assoc = (index * 100_000 + f) as u64 + 1;
        let (key, out) = core.connect(server_addr, assoc, now(start), &mut rng);
        send_out(&socket, &out.datagrams);
        keys.push(key);
    }

    let mut exchanges = 0u64;
    let mut buf = vec![0u8; MAX_DATAGRAM];
    while !stop.load(Ordering::Relaxed) {
        let t = now(start);
        // Timers: connect resends, renewals, protocol polls.
        let out = core.poll(t, &mut rng);
        send_out(&socket, &out.datagrams);
        for key in &out.completed {
            if up.insert(*key) {
                connected.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Drain a burst of responses.
        for _ in 0..64 {
            match socket.recv_from(&mut buf) {
                Ok((n, from)) => {
                    let out = core.handle_datagram(from, &buf[..n], t, &mut rng);
                    send_out(&socket, &out.datagrams);
                    for key in &out.completed {
                        if up.insert(*key) {
                            connected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Err(_) => break, // timeout: go sign / poll timers
            }
        }
        // Saturation: every idle established flow starts its next
        // exchange immediately.
        for key in &keys {
            if up.contains(key) && core.flow_is_idle(*key) {
                match core.sign_batch(*key, &[&payload[..]], Mode::Base, t) {
                    Ok(out) => {
                        exchanges += 1;
                        send_out(&socket, &out.datagrams);
                    }
                    Err(_) => {
                        sign_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
    exchanges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_verifies_exchanges_live() {
        let mut cfg = LoadgenConfig::quick();
        cfg.duration = Duration::from_millis(300);
        let report = run(&cfg).expect("loadgen run");
        assert!(
            report.s2_verified > 0,
            "live engine verified no S2 exchanges: {report:?}"
        );
        assert!(report.s2_per_sec > 0.0);
        assert_eq!(report.flows, cfg.total_flows());
        assert_eq!(report.sign_errors, 0);
        // The JSON render carries the honesty fields.
        let json = report.json();
        assert!(json.contains("\"runtime_mode\":\"live\""));
        assert!(json.contains("\"host_cores\":"));
        let v: serde::Value = serde_json::from_str(&json).expect("valid json");
        assert_eq!(
            v.get("workers").and_then(serde::Value::as_u64),
            Some(cfg.workers as u64)
        );
    }
}
