//! Raw Linux `io_uring` FFI: completion-mode datagram I/O. The third
//! and last `unsafe` FFI module in the crate, in the same hand-declared
//! style as [`crate::mmsg`] and [`crate::epoll`] — no crates.io access
//! means no `libc` and no `liburing`, so the ABI is written out here:
//! `io_uring_setup` / `io_uring_enter` / `io_uring_register` as raw
//! syscalls through glibc's variadic `syscall(2)` wrapper (the only
//! entry points — glibc exports no io_uring functions), the shared
//! rings as `#[repr(C)]` types over `mmap`'d kernel memory, and the
//! submission/completion protocol as explicit atomic loads and stores
//! on the ring head/tail words. Layouts and semantics are locked down
//! by `tests/uring_props.rs`: struct sizes, NOP submit/complete round
//! trips, provided-buffer recycling and the end-to-end feature probe.
//!
//! What runs on top of the raw [`Ring`]: [`UringIo`], one per engine
//! worker, which replaces the readiness loop's whole
//! `epoll_wait` + `recvmmsg` + `sendmmsg` syscall train with a single
//! `io_uring_enter` per wake —
//!
//! - **RX** is one *multishot* `RECVMSG` submission that stays armed
//!   across completions: the kernel picks a buffer from a registered
//!   provided-buffer ring ([`BufRing`]) for each datagram and posts a
//!   CQE, no per-datagram syscall. The buffers are checked-out
//!   [`FramePool`] frames; each completion hands its frame to the
//!   engine and provides a replacement under the same buffer id. When
//!   the kernel clears `IORING_CQE_F_MORE` (buffer exhaustion, CQ
//!   overflow), the multishot is re-armed on the next wait.
//! - **TX** gathers each engine output burst into `SENDMSG`
//!   submissions over a fixed pool of address-stable slots (msghdr,
//!   iovec and sockaddr live in the slot; the frame is owned by the
//!   slot until its CQE) and flushes them with one `io_uring_enter`.
//! - **Waiting** folds the wait backend into the same ring: the
//!   worker's handoff-ring eventfd doorbells and its deadline timerfd
//!   are registered as *multishot* `POLL_ADD` entries, so one
//!   `io_uring_enter(GETEVENTS)` with an `EXT_ARG` timeout is the only
//!   blocking point.
//!
//! Safety argument, once for the whole module: every `unsafe` block
//! here is one of exactly four shapes.
//!
//! 1. A raw syscall through glibc `syscall(2)` whose pointer arguments
//!    (if any) are derived from live Rust allocations that outlive the
//!    call, with lengths taken from the same allocation.
//! 2. A dereference of a pointer into one of this ring's `mmap`
//!    regions, at an offset the kernel published in `io_uring_params`,
//!    within the mapped length, on a mapping that lives until `Drop`.
//!    Head/tail words are accessed through `AtomicU32`/`AtomicU16`
//!    (acquire on kernel-written words, release on ours), the ordering
//!    contract io_uring documents.
//! 3. A write into the spare capacity of a `Vec<u8>` the kernel was
//!    handed as a provided buffer, followed by `set_len` to a value
//!    bounded by that capacity — only after the CQE proved the kernel
//!    is done with the buffer.
//! 4. `std::mem::forget` of buffers the kernel may still write (the
//!    abandon path): if a cancel-and-quiesce drain times out at
//!    shutdown, the memory is leaked rather than freed under a
//!    potentially in-flight kernel write.
//!
//! The lifetime rule that makes 3 and 4 necessary: from submission
//! until the matching CQE is reaped, the kernel owns every buffer a
//! submission references (provided frames, TX slots, the persistent
//! recvmsg header). [`UringIo::drop`] therefore cancels everything and
//! drains to quiescence before any of those allocations are freed.

#![cfg(target_os = "linux")]

use std::io;
use std::net::SocketAddr;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_long, c_void};
use std::sync::atomic::{AtomicU16, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use alpha_engine::IoWorker;
use alpha_wire::{Frame, FramePool};

use crate::io::RxDatagram;
use crate::mmsg::{decode_addr, encode_addr, IoVec, MsgHdr, SockaddrStorage, MSG_TRUNC};

// ---------------------------------------------------------------------------
// ABI constants (x86_64 / aarch64 Linux values; the three syscall
// numbers are identical on both).
// ---------------------------------------------------------------------------

const SYS_IO_URING_SETUP: c_long = 425;
const SYS_IO_URING_ENTER: c_long = 426;
const SYS_IO_URING_REGISTER: c_long = 427;

const PROT_READ: c_int = 0x1;
const PROT_WRITE: c_int = 0x2;
const MAP_SHARED: c_int = 0x01;
const MAP_PRIVATE: c_int = 0x02;
const MAP_ANONYMOUS: c_int = 0x20;
const MAP_POPULATE: c_int = 0x8000;

/// `mmap` offsets selecting which ring a mapping addresses.
const IORING_OFF_SQ_RING: i64 = 0;
const IORING_OFF_CQ_RING: i64 = 0x0800_0000;
const IORING_OFF_SQES: i64 = 0x1000_0000;

/// Setup flag: honor `io_uring_params.cq_entries` (we size the CQ for
/// multishot receive bursts, well past the 2x-SQ default).
const IORING_SETUP_CQSIZE: u32 = 1 << 3;
/// Setup flag: clamp oversized ring requests instead of failing.
const IORING_SETUP_CLAMP: u32 = 1 << 4;
/// Setup flag: kick completion task-work without an inter-processor
/// signal (kernel >= 5.19) — the work runs at the task's next kernel
/// transition instead of interrupting userspace with `TWA_SIGNAL`.
/// This was the decisive task-work mode here: bare `TWA_SIGNAL` kicks
/// cost ~1 ms of wake latency per sleep/wake cycle when a saturating
/// sender shares the core (0.64x the mmsg relay rate), and the
/// heavier `SINGLE_ISSUER|DEFER_TASKRUN` pair (kernel >= 6.1) was
/// also measurably worse — its waiter resumes at the *first*
/// completion, shrinking each cycle's reaped batch (~15% more enters
/// per datagram and a lower relay rate than this flag alone).
const IORING_SETUP_COOP_TASKRUN: u32 = 1 << 8;

/// SQ and CQ share one mapping (kernel >= 5.4 advertises this).
const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;
/// `io_uring_enter` accepts `io_uring_getevents_arg` (timeout without
/// a timeout SQE; kernel >= 5.11).
const IORING_FEAT_EXT_ARG: u32 = 1 << 8;

const IORING_ENTER_GETEVENTS: u32 = 1 << 0;
const IORING_ENTER_EXT_ARG: u32 = 1 << 3;

const IORING_OP_NOP: u8 = 0;
const IORING_OP_POLL_ADD: u8 = 6;
const IORING_OP_SENDMSG: u8 = 9;
const IORING_OP_RECVMSG: u8 = 10;
const IORING_OP_ASYNC_CANCEL: u8 = 14;

/// SQE flag: let the kernel pick the RX buffer from the group named by
/// `buf_group` (the provided-buffer ring).
const IOSQE_BUFFER_SELECT: u8 = 1 << 5;
/// `ioprio` flag on RECVMSG: stay armed and post one CQE per datagram.
const IORING_RECV_MULTISHOT: u16 = 1 << 1;
/// `len` flag on POLL_ADD: stay armed and post one CQE per readiness
/// edge.
const IORING_POLL_ADD_MULTI: u32 = 1 << 0;
/// `op_flags` (cancel flags) on ASYNC_CANCEL: cancel every pending
/// request on the ring, not a specific `user_data`.
const IORING_ASYNC_CANCEL_ANY: u32 = 1 << 2;
const POLLIN: u32 = 0x001;

/// CQE flag: the upper 16 bits of `flags` carry the provided-buffer id
/// the kernel consumed.
const IORING_CQE_F_BUFFER: u32 = 1 << 0;
/// CQE flag: this multishot submission remains armed.
const IORING_CQE_F_MORE: u32 = 1 << 1;
const IORING_CQE_BUFFER_SHIFT: u32 = 16;

const IORING_REGISTER_PBUF_RING: u32 = 22;
const IORING_UNREGISTER_PBUF_RING: u32 = 23;

const EINTR: i32 = 4;
const EAGAIN: i32 = 11;
const ENOBUFS: i32 = 105;
const ETIME: i32 = 62;

// ---------------------------------------------------------------------------
// ABI types.
// ---------------------------------------------------------------------------

/// `struct io_sqring_offsets`: where in the SQ ring mapping each shared
/// word lives.
#[repr(C)]
#[derive(Clone, Copy, Default)]
pub struct SqringOffsets {
    /// Byte offset of the kernel-consumed head index.
    pub head: u32,
    /// Byte offset of the application-produced tail index.
    pub tail: u32,
    /// Byte offset of the ring mask word.
    pub ring_mask: u32,
    /// Byte offset of the ring size word.
    pub ring_entries: u32,
    /// Byte offset of the SQ flags word.
    pub flags: u32,
    /// Byte offset of the dropped-submissions counter.
    pub dropped: u32,
    /// Byte offset of the SQE index array.
    pub array: u32,
    /// Reserved.
    pub resv1: u32,
    /// Reserved (`user_addr` in newer kernels).
    pub user_addr: u64,
}

/// `struct io_cqring_offsets`.
#[repr(C)]
#[derive(Clone, Copy, Default)]
pub struct CqringOffsets {
    /// Byte offset of the application-consumed head index.
    pub head: u32,
    /// Byte offset of the kernel-produced tail index.
    pub tail: u32,
    /// Byte offset of the ring mask word.
    pub ring_mask: u32,
    /// Byte offset of the ring size word.
    pub ring_entries: u32,
    /// Byte offset of the overflow counter.
    pub overflow: u32,
    /// Byte offset of the CQE array.
    pub cqes: u32,
    /// Byte offset of the CQ flags word.
    pub flags: u32,
    /// Reserved.
    pub resv1: u32,
    /// Reserved (`user_addr` in newer kernels).
    pub user_addr: u64,
}

/// `struct io_uring_params` (120 bytes): setup request in, ring
/// geometry + feature bits + mmap offsets out.
#[repr(C)]
#[derive(Clone, Copy, Default)]
pub struct IoUringParams {
    /// SQ size: hint in, actual out.
    pub sq_entries: u32,
    /// CQ size: request with `IORING_SETUP_CQSIZE` in, actual out.
    pub cq_entries: u32,
    /// `IORING_SETUP_*` request bits.
    pub flags: u32,
    /// SQPOLL thread CPU (unused here).
    pub sq_thread_cpu: u32,
    /// SQPOLL idle time (unused here).
    pub sq_thread_idle: u32,
    /// `IORING_FEAT_*` bits reported by the kernel.
    pub features: u32,
    /// Shared-workqueue fd (unused here).
    pub wq_fd: u32,
    /// Reserved.
    pub resv: [u32; 3],
    /// SQ ring mmap offsets.
    pub sq_off: SqringOffsets,
    /// CQ ring mmap offsets.
    pub cq_off: CqringOffsets,
}

/// `struct io_uring_sqe` (64 bytes). Field names follow the kernel's
/// unions flattened to the one member this module uses: `off` is
/// `addr2`, `op_flags` is `msg_flags`/`poll32_events`/`cancel_flags`,
/// `buf_index` doubles as `buf_group` for `IOSQE_BUFFER_SELECT`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct Sqe {
    /// `IORING_OP_*`.
    pub opcode: u8,
    /// `IOSQE_*` bits (`BUFFER_SELECT` here).
    pub flags: u8,
    /// Priority / per-op bits (`IORING_RECV_MULTISHOT` here).
    pub ioprio: u16,
    /// Target fd (or -1).
    pub fd: i32,
    /// Offset union; unused by this module's ops.
    pub off: u64,
    /// Pointer operand (the `msghdr` for RECVMSG/SENDMSG).
    pub addr: u64,
    /// Length operand (or `IORING_POLL_ADD_MULTI`).
    pub len: u32,
    /// Per-op flags union (`msg_flags`, `poll32_events`, ...).
    pub op_flags: u32,
    /// Cookie echoed back in the CQE.
    pub user_data: u64,
    /// Buffer index / buffer group for provided buffers.
    pub buf_index: u16,
    /// Personality id (unused here).
    pub personality: u16,
    /// Splice fd union (unused here).
    pub splice_fd_in: i32,
    /// Third address operand (unused here).
    pub addr3: u64,
    /// Trailing pad keeping the struct at 64 bytes.
    pub pad2: u64,
}

impl Sqe {
    const fn zeroed() -> Sqe {
        Sqe {
            opcode: 0,
            flags: 0,
            ioprio: 0,
            fd: -1,
            off: 0,
            addr: 0,
            len: 0,
            op_flags: 0,
            user_data: 0,
            buf_index: 0,
            personality: 0,
            splice_fd_in: 0,
            addr3: 0,
            pad2: 0,
        }
    }
}

/// `struct io_uring_cqe` (16 bytes): completion cookie, result (a
/// byte count or a negated errno) and flags.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct Cqe {
    /// Cookie from the originating SQE.
    pub user_data: u64,
    /// Byte count on success, negated errno on failure.
    pub res: i32,
    /// `IORING_CQE_F_*` bits (buffer id in the high half).
    pub flags: u32,
}

/// One provided-buffer ring entry, `struct io_uring_buf` (16 bytes).
/// The shared tail word aliases bytes 14..16 of entry 0 (`resv`), so
/// entry writes must never touch `resv`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct BufRingEntry {
    /// Userspace address of the provided buffer.
    pub addr: u64,
    /// Usable length in bytes.
    pub len: u32,
    /// Buffer id echoed in CQE flags on consumption.
    pub bid: u16,
    /// Reserved; aliases the shared tail in entry 0.
    pub resv: u16,
}

/// `struct io_uring_buf_reg` (40 bytes): PBUF_RING registration.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct BufReg {
    ring_addr: u64,
    ring_entries: u32,
    bgid: u16,
    flags: u16,
    resv: [u64; 3],
}

/// `struct io_uring_getevents_arg` (24 bytes): the `EXT_ARG` payload
/// carrying the wait timeout.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct GetEventsArg {
    sigmask: u64,
    sigmask_sz: u32,
    pad: u32,
    ts: u64,
}

/// `struct __kernel_timespec`.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct KernelTimespec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// `struct io_uring_recvmsg_out` (16 bytes): the header the kernel
/// writes at the front of every multishot-RECVMSG provided buffer,
/// followed by the (space-reserved) name, control and payload regions.
#[repr(C)]
#[derive(Clone, Copy)]
struct RecvMsgOut {
    namelen: u32,
    controllen: u32,
    payloadlen: u32,
    flags: u32,
}

extern "C" {
    /// The variadic syscall trampoline: glibc ships no io_uring
    /// wrappers, so all three entry points go through here. Errors
    /// follow the glibc convention (-1 return, errno set).
    fn syscall(num: c_long, ...) -> c_long;
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
    fn close(fd: c_int) -> c_int;
}

// ---------------------------------------------------------------------------
// Mapped-region plumbing.
// ---------------------------------------------------------------------------

/// An `mmap` region unmapped on drop (unless leaked by the abandon
/// path).
struct MmapRegion {
    ptr: *mut c_void,
    len: usize,
}

// The region is plain memory; sharing discipline lives in Ring/BufRing
// (each is owned by exactly one worker thread).
unsafe impl Send for MmapRegion {}

impl MmapRegion {
    /// Map `len` bytes of ring fd `fd` at ring offset `offset`, or
    /// anonymous memory when `fd` is -1.
    fn map(fd: c_int, offset: i64, len: usize) -> io::Result<MmapRegion> {
        let (flags, fd) = if fd < 0 {
            (MAP_PRIVATE | MAP_ANONYMOUS, -1)
        } else {
            (MAP_SHARED | MAP_POPULATE, fd)
        };
        // Safety: shape 1 — no pointers in, the kernel returns a fresh
        // mapping or MAP_FAILED.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                flags,
                fd,
                offset,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(MmapRegion { ptr, len })
    }

    /// Forget the mapping (abandon path): the kernel may still write
    /// through it, so leaking beats unmapping.
    fn leak(&mut self) {
        self.len = 0;
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        if self.len > 0 {
            // Safety: shape 1 — unmapping a region this struct owns.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The ring pair.
// ---------------------------------------------------------------------------

/// An io_uring instance: the fd, both mapped rings and the SQE array,
/// with local submission bookkeeping. Single-threaded by design (one
/// per worker); no `Sync`.
pub struct Ring {
    fd: c_int,
    features: u32,
    sq_entries: u32,
    sq_mask: u32,
    /// SQ ring mapping (covers the CQ too under
    /// `IORING_FEAT_SINGLE_MMAP`).
    /// Held for its Drop (munmap); never read after setup.
    #[allow(dead_code)]
    sq_ring: MmapRegion,
    /// Separate CQ ring mapping on pre-single-mmap kernels. Held for
    /// its Drop (munmap); never read after setup.
    #[allow(dead_code)]
    cq_ring: Option<MmapRegion>,
    /// Held for its Drop (munmap); accessed through `sqes_ptr`.
    #[allow(dead_code)]
    sqes: MmapRegion,
    sq_khead: *const AtomicU32,
    sq_ktail: *const AtomicU32,
    sq_array: *mut u32,
    sqes_ptr: *mut Sqe,
    cq_khead: *const AtomicU32,
    cq_ktail: *const AtomicU32,
    cq_mask: u32,
    cqes_ptr: *const Cqe,
    /// Our unpublished SQ tail.
    sq_local_tail: u32,
    /// SQEs staged since the last `enter`.
    to_submit: u32,
}

// One worker owns the ring; moving it between threads is fine.
unsafe impl Send for Ring {}

impl Ring {
    /// Create a ring with `sq_entries` submission slots and (at least)
    /// `cq_entries` completion slots. Fails on kernels without
    /// io_uring or without `IORING_FEAT_EXT_ARG` (needed for the timed
    /// wait; anything modern enough for multishot RECVMSG has it).
    pub fn new(sq_entries: u32, cq_entries: u32) -> io::Result<Ring> {
        let base = IORING_SETUP_CQSIZE | IORING_SETUP_CLAMP;
        // Prefer signal-free task-work kicks (see the flag docs for
        // the measured latency cliff with TWA_SIGNAL). Pre-5.19
        // kernels reject the flag with EINVAL, so retry bare.
        let coop = base | IORING_SETUP_COOP_TASKRUN;
        let mut fd = -1;
        let mut p = IoUringParams::default();
        for flags in [coop, base] {
            p = IoUringParams {
                flags,
                cq_entries,
                ..IoUringParams::default()
            };
            // Safety: shape 1 — `p` is a live local the kernel fills.
            fd = unsafe {
                syscall(
                    SYS_IO_URING_SETUP,
                    sq_entries as usize,
                    std::ptr::addr_of_mut!(p) as usize,
                )
            };
            if fd >= 0 {
                break;
            }
        }
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = fd as c_int;
        let ring = Ring::from_fd(fd, &p);
        match ring {
            Ok(r) if r.features & IORING_FEAT_EXT_ARG != 0 => Ok(r),
            Ok(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "io_uring lacks IORING_FEAT_EXT_ARG",
            )),
            Err(e) => Err(e),
        }
    }

    /// Map the rings of a freshly set-up fd. Consumes (closes) `fd` on
    /// error.
    fn from_fd(fd: c_int, p: &IoUringParams) -> io::Result<Ring> {
        let close_on_err = |e: io::Error| {
            // Safety: shape 1 — fd was just created and is exclusively
            // ours.
            unsafe {
                close(fd);
            }
            e
        };
        let sq_len = p.sq_off.array as usize + p.sq_entries as usize * 4;
        let cq_len = p.cq_off.cqes as usize + p.cq_entries as usize * std::mem::size_of::<Cqe>();
        let single = p.features & IORING_FEAT_SINGLE_MMAP != 0;
        let sq_map_len = if single { sq_len.max(cq_len) } else { sq_len };
        let sq_ring = MmapRegion::map(fd, IORING_OFF_SQ_RING, sq_map_len).map_err(close_on_err)?;
        let cq_ring = if single {
            None
        } else {
            Some(MmapRegion::map(fd, IORING_OFF_CQ_RING, cq_len).map_err(close_on_err)?)
        };
        let sqes = MmapRegion::map(
            fd,
            IORING_OFF_SQES,
            p.sq_entries as usize * std::mem::size_of::<Sqe>(),
        )
        .map_err(close_on_err)?;
        let sq_base = sq_ring.ptr as *mut u8;
        let cq_base = cq_ring.as_ref().map_or(sq_base, |r| r.ptr as *mut u8);
        // Safety (all pointer math below): shape 2 — offsets published
        // by the kernel in `p`, within the mapped lengths computed from
        // the same `p`.
        let ring = unsafe {
            Ring {
                fd,
                features: p.features,
                sq_entries: p.sq_entries,
                sq_mask: *(sq_base.add(p.sq_off.ring_mask as usize) as *const u32),
                sq_khead: sq_base.add(p.sq_off.head as usize) as *const AtomicU32,
                sq_ktail: sq_base.add(p.sq_off.tail as usize) as *const AtomicU32,
                sq_array: sq_base.add(p.sq_off.array as usize) as *mut u32,
                sqes_ptr: sqes.ptr as *mut Sqe,
                cq_khead: cq_base.add(p.cq_off.head as usize) as *const AtomicU32,
                cq_ktail: cq_base.add(p.cq_off.tail as usize) as *const AtomicU32,
                cq_mask: *(cq_base.add(p.cq_off.ring_mask as usize) as *const u32),
                cqes_ptr: cq_base.add(p.cq_off.cqes as usize) as *const Cqe,
                sq_ring,
                cq_ring,
                sqes,
                sq_local_tail: 0,
                to_submit: 0,
            }
        };
        Ok(ring)
    }

    /// Feature bits the kernel advertised at setup.
    #[must_use]
    pub fn features(&self) -> u32 {
        self.features
    }

    /// Stage the next SQE, zeroed, or `None` when the SQ is full (the
    /// caller must `enter` to hand staged entries to the kernel).
    pub fn sqe(&mut self) -> Option<&mut Sqe> {
        // Safety: shape 2 — kernel-written head word.
        let head = unsafe { &*self.sq_khead }.load(Ordering::Acquire);
        if self.sq_local_tail.wrapping_sub(head) >= self.sq_entries {
            return None;
        }
        let idx = self.sq_local_tail & self.sq_mask;
        self.sq_local_tail = self.sq_local_tail.wrapping_add(1);
        self.to_submit += 1;
        // Safety: shape 2 — idx is masked into both mapped arrays.
        unsafe {
            *self.sq_array.add(idx as usize) = idx;
            let s = &mut *self.sqes_ptr.add(idx as usize);
            *s = Sqe::zeroed();
            Some(s)
        }
    }

    /// Stage a NOP (used by the property tests to exercise the
    /// submit/complete round trip without touching any fd).
    pub fn push_nop(&mut self, user_data: u64) -> bool {
        match self.sqe() {
            Some(s) => {
                s.opcode = IORING_OP_NOP;
                s.user_data = user_data;
                true
            }
            None => false,
        }
    }

    /// Publish staged SQEs and call `io_uring_enter`, waiting for
    /// `min_complete` completions (0 = submit only). `timeout` bounds
    /// the wait via `EXT_ARG`; expiry is success with nothing reaped.
    /// `EINTR` retries, so a return is either `Ok` (submissions
    /// consumed) or a real error (submissions still staged).
    pub fn enter(&mut self, min_complete: u32, timeout: Option<Duration>) -> io::Result<()> {
        // Safety: shape 2 — publishing our tail with release so the
        // kernel's acquire sees the filled SQEs.
        unsafe { &*self.sq_ktail }.store(self.sq_local_tail, Ordering::Release);
        let mut flags = 0u32;
        // GETEVENTS even when `min_complete` is 0 (which never
        // blocks): it guarantees pending completion task-work is
        // flushed before the enter returns, so a submit-only enter
        // also posts everything that completed since the last
        // crossing — the next wait can then reap straight off the CQ
        // ring, often without a syscall of its own.
        flags |= IORING_ENTER_GETEVENTS;
        let mut ts = KernelTimespec::default();
        let mut arg = GetEventsArg::default();
        let (arg_ptr, arg_sz) = match timeout {
            Some(t) if min_complete > 0 => {
                ts.tv_sec = t.as_secs() as i64;
                ts.tv_nsec = i64::from(t.subsec_nanos());
                arg.ts = std::ptr::addr_of!(ts) as u64;
                flags |= IORING_ENTER_EXT_ARG;
                (
                    std::ptr::addr_of!(arg) as usize,
                    std::mem::size_of::<GetEventsArg>(),
                )
            }
            _ => (0usize, 0usize),
        };
        loop {
            // Safety: shape 1 — `arg`/`ts` are live locals for the
            // duration of the call.
            let ret = unsafe {
                syscall(
                    SYS_IO_URING_ENTER,
                    self.fd as usize,
                    self.to_submit as usize,
                    min_complete as usize,
                    flags as usize,
                    arg_ptr,
                    arg_sz,
                )
            };
            if ret >= 0 {
                self.to_submit = 0;
                return Ok(());
            }
            let err = io::Error::last_os_error();
            match err.raw_os_error() {
                Some(EINTR) => continue,
                // Wait timed out; submissions were consumed first.
                Some(ETIME) => {
                    self.to_submit = 0;
                    return Ok(());
                }
                _ => return Err(err),
            }
        }
    }

    /// Copy out every pending CQE and advance the CQ head.
    pub fn reap(&mut self, out: &mut Vec<Cqe>) -> usize {
        // Safety: shape 2 — acquire on the kernel-written tail makes
        // the CQE contents visible; our head is stored with release.
        let tail = unsafe { &*self.cq_ktail }.load(Ordering::Acquire);
        let mut head = unsafe { &*self.cq_khead }.load(Ordering::Relaxed);
        let n = tail.wrapping_sub(head) as usize;
        while head != tail {
            let idx = (head & self.cq_mask) as usize;
            // Safety: shape 2 — masked index into the mapped CQE array.
            out.push(unsafe { *self.cqes_ptr.add(idx) });
            head = head.wrapping_add(1);
        }
        unsafe { &*self.cq_khead }.store(head, Ordering::Release);
        n
    }

    /// `io_uring_register` on this ring.
    fn register(&self, opcode: u32, arg: *const c_void, nr_args: u32) -> io::Result<()> {
        // Safety: shape 1 — `arg` points at a live caller allocation.
        let ret = unsafe {
            syscall(
                SYS_IO_URING_REGISTER,
                self.fd as usize,
                opcode as usize,
                arg as usize,
                nr_args as usize,
            )
        };
        if ret < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        // Safety: shape 1 — the fd is exclusively ours.
        unsafe {
            close(self.fd);
        }
    }
}

// ---------------------------------------------------------------------------
// Provided-buffer ring.
// ---------------------------------------------------------------------------

/// A registered provided-buffer ring (`IORING_REGISTER_PBUF_RING`):
/// the kernel pops RX buffers from it, we push replacements. Entries
/// are written in place and published by a release store of the tail
/// word (which aliases `resv` of entry 0, hence shape-2 care to never
/// write that field).
pub struct BufRing {
    mem: MmapRegion,
    mask: u16,
    bgid: u16,
    tail: u16,
    ring_fd: c_int,
    registered: bool,
}

unsafe impl Send for BufRing {}

impl BufRing {
    /// Allocate and register a ring of `entries` (a power of two)
    /// buffer slots under buffer-group id `bgid`.
    pub fn new(ring: &Ring, bgid: u16, entries: u16) -> io::Result<BufRing> {
        assert!(entries.is_power_of_two());
        let mem = MmapRegion::map(
            -1,
            0,
            entries as usize * std::mem::size_of::<BufRingEntry>(),
        )?;
        let reg = BufReg {
            ring_addr: mem.ptr as u64,
            ring_entries: u32::from(entries),
            bgid,
            ..BufReg::default()
        };
        ring.register(
            IORING_REGISTER_PBUF_RING,
            std::ptr::addr_of!(reg) as *const c_void,
            1,
        )?;
        Ok(BufRing {
            mem,
            mask: entries - 1,
            bgid,
            tail: 0,
            ring_fd: ring.fd,
            registered: true,
        })
    }

    /// The buffer-group id RECVMSG SQEs select with.
    #[must_use]
    pub fn bgid(&self) -> u16 {
        self.bgid
    }

    /// Hand buffer `bid` (at `addr`, `len` bytes) to the kernel and
    /// publish it.
    pub fn provide(&mut self, bid: u16, addr: u64, len: u32) {
        let idx = (self.tail & self.mask) as usize;
        // Safety: shape 2 — masked index into the anonymous mapping we
        // own; `resv` (bytes 14..16, aliasing the shared tail in entry
        // 0) is never written.
        unsafe {
            let e = (self.mem.ptr as *mut u8).add(idx * std::mem::size_of::<BufRingEntry>());
            (e as *mut u64).write(addr);
            (e.add(8) as *mut u32).write(len);
            (e.add(12) as *mut u16).write(bid);
        }
        self.tail = self.tail.wrapping_add(1);
        // Safety: shape 2 — the shared tail word at offset 14.
        unsafe { &*((self.mem.ptr as *const u8).add(14) as *const AtomicU16) }
            .store(self.tail, Ordering::Release);
    }

    /// Unregister without freeing the mapping (abandon path).
    fn leak(&mut self) {
        self.mem.leak();
    }
}

impl Drop for BufRing {
    fn drop(&mut self) {
        if self.registered {
            let reg = BufReg {
                bgid: self.bgid,
                ..BufReg::default()
            };
            // Errors ignored: the ring fd may already be gone, which
            // unregisters implicitly.
            // Safety: shape 1 — `reg` is a live local.
            unsafe {
                syscall(
                    SYS_IO_URING_REGISTER,
                    self.ring_fd as usize,
                    IORING_UNREGISTER_PBUF_RING as usize,
                    std::ptr::addr_of!(reg) as usize,
                    1usize,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The per-worker completion-mode runtime.
// ---------------------------------------------------------------------------

/// SQ depth: a full TX burst + re-arms + polls with headroom.
const SQ_ENTRIES: u32 = 256;
/// CQ depth: multishot RECVMSG posts one CQE per datagram, so the CQ
/// must absorb a whole RX-buffer burst plus its TX completions without
/// overflowing (overflow terminates the multishot; it re-arms, but
/// cheaper not to).
const CQ_ENTRIES: u32 = 1024;
/// Provided RX buffers in flight (power of two). Four mmsg-backend
/// `recvmmsg` batches deep: a saturating sender keeps landing
/// datagrams while a reaped batch is verified, and the buffer window
/// bounds how much of that accrual one enter can deliver. Measured
/// here, 256 is *worse* — verify phases grow and replies sit staged
/// longer, stalling window-limited senders.
const RX_BUFFERS: u16 = 128;
/// TX slots in flight; replies are at most 1:1 with a full RX reap, so
/// match `RX_BUFFERS` to flush any reap's fan-out in one enter.
const TX_SLOTS: u16 = 128;
/// Space the kernel reserves at the front of every provided buffer:
/// `io_uring_recvmsg_out` (16) + name space (`msg_namelen`, 128) +
/// control space (0). The payload starts here.
const RX_PAYLOAD_OFF: usize = 16 + RX_NAME_SPACE;
const RX_NAME_SPACE: usize = 128;
/// Abandon the shutdown quiesce after this many waits (leaking the
/// kernel-visible buffers rather than freeing them mid-write).
const QUIESCE_ROUNDS: usize = 40;
const QUIESCE_WAIT: Duration = Duration::from_millis(25);

/// `user_data` tag in the top 16 bits; the low bits carry a slot or
/// poll index.
const UD_TAG_SHIFT: u32 = 48;
const UD_RECV: u64 = 1 << UD_TAG_SHIFT;
const UD_TX: u64 = 2 << UD_TAG_SHIFT;
const UD_POLL: u64 = 3 << UD_TAG_SHIFT;
const UD_CANCEL: u64 = 4 << UD_TAG_SHIFT;

/// One in-flight SENDMSG: everything the SQE points at lives here,
/// address-stable inside the boxed slice, until the CQE frees it.
struct TxSlot {
    storage: SockaddrStorage,
    iov: IoVec,
    hdr: MsgHdr,
    frame: Option<Frame>,
    retries: u32,
}

impl TxSlot {
    fn idle() -> TxSlot {
        TxSlot {
            storage: SockaddrStorage::zeroed(),
            iov: IoVec {
                iov_base: std::ptr::null_mut(),
                iov_len: 0,
            },
            hdr: MsgHdr {
                msg_name: std::ptr::null_mut(),
                msg_namelen: 0,
                msg_iov: std::ptr::null_mut(),
                msg_iovlen: 0,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            },
            frame: None,
            retries: 0,
        }
    }
}

/// Poll registrations folded into the ring (handoff doorbells + the
/// deadline timerfd), index-addressed via `UD_POLL`.
struct PollReg {
    fd: RawFd,
    armed: bool,
}

/// The completion-mode I/O engine for one worker: a [`Ring`], its
/// provided-buffer ring backed by checked-out [`FramePool`] frames, a
/// persistent multishot RECVMSG, TX slots, and the worker's wait fds
/// as multishot polls. See the module docs for the design; see
/// `crate::server::Worker::run_uring` for the loop on top.
pub struct UringIo {
    // Declared before `ring` so the pbuf ring unregisters first.
    bufs: BufRing,
    ring: Ring,
    sock: RawFd,
    /// Provided frames, indexed by buffer id.
    rx_slots: Vec<Option<Frame>>,
    /// The persistent RECVMSG header; boxed so its address survives
    /// moves of `UringIo` while the kernel holds it.
    rx_hdr: Box<MsgHdr>,
    recv_armed: bool,
    tx: Box<[TxSlot]>,
    tx_free: Vec<u16>,
    tx_inflight: usize,
    polls: Vec<PollReg>,
    counters: Arc<IoWorker>,
    /// RX reaped while waiting for a TX slot mid-dispatch; drained by
    /// the next `wait`.
    pending_rx: Vec<RxDatagram>,
    cq_scratch: Vec<Cqe>,
    /// Set once `drop` begins: completions stop re-arming and retrying.
    shutting_down: bool,
}

// Safety: the raw pointers inside (`rx_hdr.msg_name`, the per-slot
// `IoVec`/`MsgHdr` bases) all point into heap allocations owned by
// this struct, and the runtime is owned by exactly one worker thread
// at a time — moving it to that thread is sound.
unsafe impl Send for UringIo {}

impl UringIo {
    /// Build the full runtime over `sock`: ring, provided buffers from
    /// `pool`, armed multishot RECVMSG, and one multishot POLL_ADD per
    /// `poll_fds` entry (completions report the index into that
    /// slice). Submits the initial arms before returning so setup
    /// errors surface here, not in the loop.
    pub fn new(
        sock: RawFd,
        poll_fds: &[RawFd],
        pool: &FramePool,
        counters: Arc<IoWorker>,
    ) -> io::Result<UringIo> {
        let ring = Ring::new(SQ_ENTRIES, CQ_ENTRIES)?;
        let bufs = BufRing::new(&ring, 0, RX_BUFFERS)?;
        let rx_hdr = Box::new(MsgHdr {
            msg_name: std::ptr::null_mut(),
            msg_namelen: RX_NAME_SPACE as u32,
            msg_iov: std::ptr::null_mut(),
            msg_iovlen: 0,
            msg_control: std::ptr::null_mut(),
            msg_controllen: 0,
            msg_flags: 0,
        });
        let mut io = UringIo {
            bufs,
            ring,
            sock,
            rx_slots: Vec::with_capacity(RX_BUFFERS as usize),
            rx_hdr,
            recv_armed: false,
            tx: (0..TX_SLOTS).map(|_| TxSlot::idle()).collect(),
            tx_free: (0..TX_SLOTS).rev().collect(),
            tx_inflight: 0,
            polls: poll_fds
                .iter()
                .map(|&fd| PollReg { fd, armed: false })
                .collect(),
            counters,
            pending_rx: Vec::new(),
            cq_scratch: Vec::with_capacity(CQ_ENTRIES as usize),
            shutting_down: false,
        };
        for bid in 0..RX_BUFFERS {
            let mut f = pool.checkout();
            Self::provide_frame(&mut io.bufs, bid, &mut f);
            io.rx_slots.push(Some(f));
        }
        io.arm_recv()
            .ok_or_else(|| io::Error::other("SQ full at setup"))?;
        for i in 0..io.polls.len() {
            io.arm_poll(i)
                .ok_or_else(|| io::Error::other("SQ full at setup"))?;
        }
        io.ring.enter(0, None)?;
        // The kernel rejects bad arms asynchronously (a CQE with a
        // negative res, no F_MORE); reap once so an unsupported opcode
        // (pre-multishot kernel) fails setup instead of looping.
        // Datagrams can land on `sock` between its bind and this point,
        // so the reap may also carry real completions — dispatch them
        // (received frames park in `pending_rx` for the first wait,
        // consumed buffer ids get re-provided) rather than discarding,
        // and treat only non-transient errors as rejections: -ENOBUFS
        // here just means arrivals already exhausted the provided
        // buffers, which the wait loop's re-arm recovers from.
        std::thread::yield_now();
        let mut probe = Vec::new();
        io.ring.reap(&mut probe);
        for c in &probe {
            let transient = c.res >= 0 || matches!(-c.res, ENOBUFS | EAGAIN | EINTR);
            if !transient && c.flags & IORING_CQE_F_MORE == 0 {
                return Err(io::Error::from_raw_os_error(-c.res));
            }
        }
        let stamp = Instant::now();
        let mut rx = Vec::new();
        let mut fired = Vec::new();
        for &cqe in &probe {
            io.dispatch_cqe(cqe, pool, &mut rx, &mut fired, stamp);
        }
        io.pending_rx = rx;
        // Fired poll indices are dropped: those fds stay readable until
        // drained (level-like), so the first wait re-reports them.
        Ok(io)
    }

    /// Size a frame for provided-buffer use (payload room for a full
    /// datagram behind the kernel's header+name prefix) and push it to
    /// the kernel under `bid`.
    fn provide_frame(bufs: &mut BufRing, bid: u16, f: &mut Frame) {
        let buf = f.buf_mut();
        buf.clear();
        buf.reserve(crate::io::MAX_DATAGRAM + RX_PAYLOAD_OFF);
        let addr = buf.as_mut_ptr() as u64;
        let len = buf.capacity() as u32;
        bufs.provide(bid, addr, len);
    }

    /// Stage the multishot RECVMSG. `None` when the SQ is full.
    fn arm_recv(&mut self) -> Option<()> {
        let hdr_addr = std::ptr::addr_of!(*self.rx_hdr) as u64;
        let (sock, bgid) = (self.sock, self.bufs.bgid());
        let s = self.ring.sqe()?;
        s.opcode = IORING_OP_RECVMSG;
        s.fd = sock;
        s.addr = hdr_addr;
        s.len = 1;
        s.ioprio = IORING_RECV_MULTISHOT;
        s.flags = IOSQE_BUFFER_SELECT;
        s.buf_index = bgid;
        s.user_data = UD_RECV;
        self.recv_armed = true;
        Some(())
    }

    /// Stage a multishot POLL_ADD for poll registration `idx`.
    fn arm_poll(&mut self, idx: usize) -> Option<()> {
        let fd = self.polls[idx].fd;
        let s = self.ring.sqe()?;
        s.opcode = IORING_OP_POLL_ADD;
        s.fd = fd;
        s.len = IORING_POLL_ADD_MULTI;
        s.op_flags = POLLIN;
        s.user_data = UD_POLL | idx as u64;
        self.polls[idx].armed = true;
        Some(())
    }

    /// Stage a SENDMSG for filled slot `idx`.
    fn stage_tx(&mut self, idx: u16) -> Option<()> {
        let slot = &mut self.tx[idx as usize];
        slot.hdr.msg_name = std::ptr::addr_of_mut!(slot.storage).cast();
        slot.hdr.msg_iov = std::ptr::addr_of_mut!(slot.iov);
        slot.hdr.msg_iovlen = 1;
        let hdr_addr = std::ptr::addr_of!(slot.hdr) as u64;
        let sock = self.sock;
        let s = self.ring.sqe()?;
        s.opcode = IORING_OP_SENDMSG;
        s.fd = sock;
        s.addr = hdr_addr;
        s.len = 1;
        s.user_data = UD_TX | u64::from(idx);
        Some(())
    }

    /// Queue one datagram. The frame is owned by a TX slot until its
    /// CQE; the SQE is staged now and flushed by the next
    /// [`UringIo::flush`] / [`UringIo::wait`]. When every slot is in
    /// flight this submits-and-reaps inline until one frees (RX
    /// completions reaped meanwhile are parked for the next `wait`).
    pub fn send(&mut self, to: SocketAddr, frame: Frame, pool: &FramePool) {
        let idx = loop {
            if let Some(i) = self.tx_free.pop() {
                break i;
            }
            // All slots in flight: flush staged work and wait for one
            // completion. Bounded; on persistent failure the datagram
            // is dropped and counted, like a failed sendmmsg slot.
            if self.ring.enter(1, Some(QUIESCE_WAIT)).is_err() || self.drain(pool) == 0 {
                self.counters.partial_sends.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        {
            let slot = &mut self.tx[idx as usize];
            let namelen = encode_addr(&to, &mut slot.storage);
            slot.hdr.msg_namelen = namelen;
            slot.iov = IoVec {
                iov_base: frame.as_ptr() as *mut c_void,
                iov_len: frame.len(),
            };
            slot.frame = Some(frame);
            slot.retries = 0;
        }
        if self.stage_tx(idx).is_none() {
            // SQ full: hand staged entries to the kernel, then retry
            // once; a second failure drops the datagram.
            let _ = self.ring.enter(0, None);
            self.counters.send_calls.fetch_add(1, Ordering::Relaxed);
            if self.stage_tx(idx).is_none() {
                self.tx[idx as usize].frame = None;
                self.tx_free.push(idx);
                self.counters.partial_sends.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.tx_inflight += 1;
    }

    /// Flush staged SQEs (TX batch + any re-arms) with one
    /// `io_uring_enter` *now*, without blocking. The dispatch path
    /// calls this once per ingest burst so replies leave the moment
    /// they are built — delaying them behind the next wait stalls
    /// window-limited senders. Counted as a send syscall: it is the
    /// kernel crossing that transmits the gathered batch. Because the
    /// enter runs GETEVENTS task-work (see [`Ring::enter`]), it also
    /// posts the TX completions and any datagrams already queued, so
    /// the next [`wait`]'s enter returns the moment it sees them.
    ///
    /// [`wait`]: UringIo::wait
    pub fn flush(&mut self) {
        if self.ring.to_submit == 0 {
            return;
        }
        if self.ring.enter(0, None).is_ok() {
            self.counters.send_calls.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Park in `io_uring_enter` until I/O, a doorbell/timer poll, or
    /// `timeout`; then reap everything. Received datagrams go to `rx`,
    /// indices of fired poll registrations to `fired` (dedup'd by the
    /// caller's drain). One wait syscall, counted in `wait_calls` —
    /// its task-work flush delivers *every* datagram that accrued
    /// while the previous batch was being verified, so a saturated
    /// steady-state cycle costs two kernel crossings total (this wait
    /// plus the dispatch burst's [`flush`]) for a whole batch in each
    /// direction.
    ///
    /// [`flush`]: UringIo::flush
    pub fn wait(
        &mut self,
        timeout: Duration,
        pool: &FramePool,
        rx: &mut Vec<RxDatagram>,
        fired: &mut Vec<usize>,
    ) -> io::Result<()> {
        // Re-arm anything a completion retired (buffer exhaustion,
        // poll teardown) now that buffers have been replenished.
        if !self.recv_armed {
            self.arm_recv();
        }
        for i in 0..self.polls.len() {
            if !self.polls[i].armed {
                self.arm_poll(i);
            }
        }
        // Datagrams parked by a mid-dispatch drain must not wait for
        // the next readiness edge. Note: no CQ-peek fast path here —
        // skipping the enter when CQEs are already posted *measures
        // slower*, because a posted TX completion or two can sit on
        // the CQ while the bulk of the accrued arrivals is still in
        // the task-work queue that only an enter flushes; peeking
        // reaps the crumbs and forfeits the batch.
        let timeout = if self.pending_rx.is_empty() {
            timeout
        } else {
            Duration::ZERO
        };
        rx.append(&mut self.pending_rx);
        self.ring.enter(1, Some(timeout))?;
        self.counters.wait_calls.fetch_add(1, Ordering::Relaxed);
        self.reap_into(pool, rx, fired);
        Ok(())
    }

    /// Reap into the parked queue (TX-stall path).
    fn drain(&mut self, pool: &FramePool) -> usize {
        let mut rx = std::mem::take(&mut self.pending_rx);
        let mut fired = Vec::new();
        let n = self.reap_into(pool, &mut rx, &mut fired);
        self.pending_rx = rx;
        // Poll edges observed here re-fire via level-triggered
        // readiness at the next wait (the fds stay readable until
        // drained by the worker), so dropping `fired` loses nothing.
        n
    }

    /// Process every pending CQE. Returns how many were reaped.
    fn reap_into(
        &mut self,
        pool: &FramePool,
        rx: &mut Vec<RxDatagram>,
        fired: &mut Vec<usize>,
    ) -> usize {
        let mut scratch = std::mem::take(&mut self.cq_scratch);
        scratch.clear();
        let n = self.ring.reap(&mut scratch);
        if n > 0 {
            let stamp = Instant::now();
            for &cqe in scratch.iter() {
                self.dispatch_cqe(cqe, pool, rx, fired, stamp);
            }
        }
        self.cq_scratch = scratch;
        n
    }

    /// Route one CQE to its handler by `user_data` tag.
    fn dispatch_cqe(
        &mut self,
        cqe: Cqe,
        pool: &FramePool,
        rx: &mut Vec<RxDatagram>,
        fired: &mut Vec<usize>,
        stamp: Instant,
    ) {
        match cqe.user_data >> UD_TAG_SHIFT {
            1 => self.on_recv(cqe, pool, rx, stamp),
            2 => self.on_tx(cqe),
            3 => {
                let idx = (cqe.user_data & 0xffff_ffff) as usize;
                if cqe.flags & IORING_CQE_F_MORE == 0 {
                    if let Some(p) = self.polls.get_mut(idx) {
                        p.armed = false;
                    }
                }
                if cqe.res > 0 {
                    fired.push(idx);
                }
            }
            _ => {}
        }
    }

    /// One multishot-RECVMSG completion: take the consumed frame,
    /// parse the kernel's in-buffer header (source address, payload
    /// bounds, truncation), compact the payload to offset 0 and
    /// provide a replacement buffer under the same id.
    fn on_recv(&mut self, cqe: Cqe, pool: &FramePool, rx: &mut Vec<RxDatagram>, stamp: Instant) {
        if cqe.flags & IORING_CQE_F_MORE == 0 {
            self.recv_armed = false;
        }
        if cqe.flags & IORING_CQE_F_BUFFER == 0 {
            // No buffer consumed: -ENOBUFS (ring empty) or another
            // transient; the re-arm path recovers.
            if cqe.res < 0 && cqe.res != -ENOBUFS {
                self.counters.eagain.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        let bid = (cqe.flags >> IORING_CQE_BUFFER_SHIFT) as u16;
        let Some(frame) = self.rx_slots.get_mut(bid as usize).and_then(Option::take) else {
            return;
        };
        let mut frame = Some(frame);
        if cqe.res >= RX_PAYLOAD_OFF as i32 {
            let total = cqe.res as usize;
            let buf = frame.as_mut().expect("frame taken once").buf_mut();
            let cap = buf.capacity();
            // Safety: shape 3 — the CQE proves the kernel wrote
            // `total <= cap` bytes and is done with the buffer.
            unsafe { buf.set_len(total.min(cap)) };
            let out: RecvMsgOut =
                // Safety: shape 3 — len >= RX_PAYLOAD_OFF >= 16 bytes.
                unsafe { std::ptr::read_unaligned(buf.as_ptr().cast::<RecvMsgOut>()) };
            let mut store = SockaddrStorage::zeroed();
            let namelen = (out.namelen as usize).min(RX_NAME_SPACE);
            store.bytes[..namelen].copy_from_slice(&buf[16..16 + namelen]);
            if let Some(from) = decode_addr(&store, out.namelen) {
                let avail = buf.len() - RX_PAYLOAD_OFF;
                let take = (out.payloadlen as usize).min(avail);
                let truncated =
                    out.flags as i32 & MSG_TRUNC != 0 || out.payloadlen as usize > avail;
                buf.copy_within(RX_PAYLOAD_OFF..RX_PAYLOAD_OFF + take, 0);
                buf.truncate(take);
                if !self.shutting_down {
                    self.counters.datagrams_in.fetch_add(1, Ordering::Relaxed);
                    rx.push(RxDatagram {
                        from,
                        frame: frame.take().expect("frame taken once"),
                        truncated,
                        received: stamp,
                    });
                }
            }
        }
        // Replacement buffer under the same id: a parsed frame went to
        // the engine, so check a fresh one out; otherwise recycle the
        // same frame.
        let mut repl = match frame {
            Some(f) => f,
            None => pool.checkout(),
        };
        if !self.shutting_down {
            Self::provide_frame(&mut self.bufs, bid, &mut repl);
        }
        self.rx_slots[bid as usize] = Some(repl);
    }

    /// One SENDMSG completion: retry transient failures in place
    /// (counted), otherwise settle the slot.
    fn on_tx(&mut self, cqe: Cqe) {
        let idx = (cqe.user_data & 0xffff_ffff) as u16;
        if idx >= TX_SLOTS {
            return;
        }
        let transient = cqe.res == -EAGAIN || cqe.res == -ENOBUFS || cqe.res == -EINTR;
        if transient && !self.shutting_down && self.tx[idx as usize].retries < 16 {
            self.tx[idx as usize].retries += 1;
            self.counters.send_retries.fetch_add(1, Ordering::Relaxed);
            if self.stage_tx(idx).is_some() {
                return; // still in flight
            }
        }
        self.tx_inflight = self.tx_inflight.saturating_sub(1);
        if cqe.res >= 0 {
            self.counters.datagrams_out.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.partial_sends.fetch_add(1, Ordering::Relaxed);
        }
        self.tx[idx as usize].frame = None;
        self.tx_free.push(idx);
    }

    /// Outstanding kernel references into our memory.
    fn outstanding(&self) -> usize {
        usize::from(self.recv_armed)
            + self.polls.iter().filter(|p| p.armed).count()
            + self.tx_inflight
    }
}

impl Drop for UringIo {
    /// Cancel everything and drain to quiescence so the kernel can't
    /// write into frames/slots we are about to free. If the drain
    /// times out (it shouldn't), leak the kernel-visible allocations
    /// (shape 4) instead of freeing them.
    fn drop(&mut self) {
        self.shutting_down = true;
        if self.outstanding() > 0 {
            if let Some(s) = self.ring.sqe() {
                s.opcode = IORING_OP_ASYNC_CANCEL;
                s.fd = -1;
                s.op_flags = IORING_ASYNC_CANCEL_ANY;
                s.user_data = UD_CANCEL;
            }
            let pool = FramePool::new(1, 0);
            let mut rx = Vec::new();
            let mut fired = Vec::new();
            for _ in 0..QUIESCE_ROUNDS {
                if self.outstanding() == 0 {
                    break;
                }
                if self.ring.enter(1, Some(QUIESCE_WAIT)).is_err() {
                    break;
                }
                rx.clear();
                fired.clear();
                self.reap_into(&pool, &mut rx, &mut fired);
                // A terminal recv CQE (no F_MORE) and terminal poll
                // CQEs clear their armed flags in reap_into; TX
                // settles through on_tx.
            }
        }
        if self.outstanding() > 0 {
            // Abandon: the kernel still references this memory.
            for f in self.rx_slots.drain(..).flatten() {
                std::mem::forget(f);
            }
            let tx = std::mem::take(&mut self.tx);
            std::mem::forget(tx);
            let hdr = std::mem::replace(
                &mut self.rx_hdr,
                Box::new(MsgHdr {
                    msg_name: std::ptr::null_mut(),
                    msg_namelen: 0,
                    msg_iov: std::ptr::null_mut(),
                    msg_iovlen: 0,
                    msg_control: std::ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                }),
            );
            std::mem::forget(hdr);
            self.bufs.leak();
        }
    }
}

// ---------------------------------------------------------------------------
// Startup probe.
// ---------------------------------------------------------------------------

/// Whether this kernel supports the full completion-mode runtime.
/// Probed once per process by round-tripping a real datagram through a
/// throwaway [`UringIo`] (ring setup, PBUF_RING registration,
/// multishot RECVMSG with buffer select, SENDMSG, EXT_ARG wait) over
/// loopback — a feature-bit check alone would miss opcode support.
pub fn supported() -> bool {
    use std::sync::OnceLock;
    static PROBE: OnceLock<bool> = OnceLock::new();
    *PROBE.get_or_init(|| match probe() {
        Ok(()) => true,
        Err(e) => {
            // One line, once: which rung of the probe this kernel
            // failed (mirrors the backend-fallback eprintlns).
            eprintln!("alpha-transport: io_uring probe failed: {e}");
            false
        }
    })
}

/// Run the full startup probe and return its verdict. Exposed for the
/// ABI property suite; production code goes through [`supported`].
pub fn probe() -> io::Result<()> {
    use std::os::fd::AsRawFd;

    let here = std::net::UdpSocket::bind("127.0.0.1:0")?;
    let peer = std::net::UdpSocket::bind("127.0.0.1:0")?;
    peer.set_read_timeout(Some(Duration::from_millis(500)))?;
    let here_addr = here.local_addr()?;
    let peer_addr = peer.local_addr()?;
    let pool = FramePool::new(2048, 8);
    let counters = Arc::new(IoWorker::default());
    let mut io = UringIo::new(here.as_raw_fd(), &[], &pool, counters)?;

    // RX leg: a datagram sent from outside must complete through the
    // multishot + provided-buffer path with the right source address.
    peer.send_to(b"alpha-uring-probe", here_addr)?;
    let mut rx = Vec::new();
    let mut fired = Vec::new();
    for _ in 0..10 {
        io.wait(Duration::from_millis(100), &pool, &mut rx, &mut fired)?;
        if !rx.is_empty() {
            break;
        }
    }
    let got = rx
        .first()
        .ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "no multishot completion"))?;
    if &got.frame[..] != b"alpha-uring-probe" || got.from != peer_addr {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "multishot recvmsg returned wrong payload",
        ));
    }

    // TX leg: a SENDMSG staged and flushed through the ring must
    // arrive at the peer.
    let mut f = pool.checkout();
    f.buf_mut().extend_from_slice(b"alpha-uring-pong");
    io.send(peer_addr, f, &pool);
    io.flush();
    let mut buf = [0u8; 64];
    let (n, _) = peer.recv_from(&mut buf)?;
    if &buf[..n] != b"alpha-uring-pong" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "uring sendmsg payload mismatch",
        ));
    }
    Ok(())
}
