//! Runtime-selected worker wait backends: how an engine worker blocks
//! until there is work.
//!
//! Mirrors [`crate::io`] (and `alpha_crypto::backend`): a process-wide
//! backend resolved once — `ALPHA_WAIT_BACKEND` if set (`epoll`,
//! `fallback`, `auto`), otherwise auto-detection — behind [`active`],
//! with [`force`] for benches and tests that compare backends in one
//! process. Both backends process identical datagrams and fire
//! identical timers; selection only changes *how the worker sleeps*:
//!
//! - [`WaitBackend::Epoll`] — Linux readiness loop ([`crate::epoll`]):
//!   one `epoll` set per worker watching its socket, one `eventfd`
//!   doorbell per inbound handoff ring (cross-worker datagrams are
//!   seen in microseconds, not at the next read-timeout), and a
//!   `timerfd` armed from the engine's per-worker cached min-deadline
//!   (microsecond timer precision, no per-iteration deadline scan).
//! - [`WaitBackend::Fallback`] — the portable blocking loop: whole-
//!   millisecond `SO_RCVTIMEO` read timeouts sized from the same
//!   cached deadline, handoff rings drained whenever the socket wakes
//!   the worker. Always available; the behavioural reference the
//!   readiness loop must match (`tests/wait_backend_props.rs`).
//!
//! A worker running the completion-mode socket backend
//! (`ALPHA_UDP_BACKEND=uring`, [`crate::uring`]) subsumes this choice:
//! its doorbells and deadline timer are multishot `POLL_ADD` entries
//! in the worker's own ring, so the one `io_uring_enter` *is* the
//! wait. Stats still report the resolved `wait_backend` alongside
//! `udp_backend = "uring"`, naming the loop the engine would degrade
//! to if ring setup failed on a worker.

use std::sync::atomic::{AtomicU8, Ordering};

/// Identifies one of the compiled-in worker wait backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitBackend {
    /// Linux `epoll` + `eventfd` doorbells + `timerfd` (see
    /// [`crate::epoll`]).
    Epoll,
    /// Portable blocking receive with deadline-sized read timeouts.
    Fallback,
}

impl WaitBackend {
    /// Stable lowercase name, as accepted by `ALPHA_WAIT_BACKEND` and
    /// reported in `engine stats` / BENCH_*.json outputs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WaitBackend::Epoll => "epoll",
            WaitBackend::Fallback => "fallback",
        }
    }

    /// Parse a backend name (the inverse of [`WaitBackend::name`]).
    #[must_use]
    pub fn parse(name: &str) -> Option<WaitBackend> {
        match name {
            "epoll" => Some(WaitBackend::Epoll),
            "fallback" => Some(WaitBackend::Fallback),
            _ => None,
        }
    }

    /// Whether this backend can run on the current platform.
    #[must_use]
    pub fn is_supported(self) -> bool {
        match self {
            WaitBackend::Fallback => true,
            WaitBackend::Epoll => cfg!(target_os = "linux"),
        }
    }
}

impl std::fmt::Display for WaitBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Backends usable on this platform, in increasing preference order.
#[must_use]
pub fn available() -> Vec<WaitBackend> {
    let mut v = vec![WaitBackend::Fallback];
    if WaitBackend::Epoll.is_supported() {
        v.push(WaitBackend::Epoll);
    }
    v
}

/// What auto-detection picks on this platform (ignoring the override).
#[must_use]
pub fn detect() -> WaitBackend {
    if WaitBackend::Epoll.is_supported() {
        WaitBackend::Epoll
    } else {
        WaitBackend::Fallback
    }
}

// 0 = not yet resolved; otherwise backend code below.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn code(kind: WaitBackend) -> u8 {
    match kind {
        WaitBackend::Epoll => 1,
        WaitBackend::Fallback => 2,
    }
}

/// The wait backend in effect for this process.
///
/// Resolved once on first use: `ALPHA_WAIT_BACKEND` if set and valid,
/// otherwise [`detect`]. Subsequent calls are one relaxed atomic load.
#[must_use]
pub fn active() -> WaitBackend {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => WaitBackend::Epoll,
        2 => WaitBackend::Fallback,
        _ => {
            let kind = resolve();
            ACTIVE.store(code(kind), Ordering::Relaxed);
            kind
        }
    }
}

fn resolve() -> WaitBackend {
    match std::env::var("ALPHA_WAIT_BACKEND") {
        Ok(raw) => {
            let name = raw.trim().to_ascii_lowercase();
            if name.is_empty() || name == "auto" {
                return detect();
            }
            match WaitBackend::parse(&name) {
                Some(kind) if kind.is_supported() => kind,
                Some(kind) => {
                    eprintln!(
                        "alpha-transport: ALPHA_WAIT_BACKEND={} not supported on this \
                         platform; falling back to {}",
                        kind.name(),
                        detect().name()
                    );
                    detect()
                }
                None => {
                    eprintln!(
                        "alpha-transport: unknown ALPHA_WAIT_BACKEND={raw:?} \
                         (expected epoll|fallback|auto); falling back to {}",
                        detect().name()
                    );
                    detect()
                }
            }
        }
        Err(_) => detect(),
    }
}

/// Error returned by [`force`] for a backend this platform lacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedWaitBackend(
    /// The backend that was requested.
    pub WaitBackend,
);

impl std::fmt::Display for UnsupportedWaitBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wait backend {} not supported on this platform", self.0)
    }
}

impl std::error::Error for UnsupportedWaitBackend {}

/// Force the process-wide backend. Intended for benches and tests that
/// compare backends in one process. Engines already running keep the
/// loop they started with; only subsequent binds see the change.
pub fn force(kind: WaitBackend) -> Result<(), UnsupportedWaitBackend> {
    if !kind.is_supported() {
        return Err(UnsupportedWaitBackend(kind));
    }
    ACTIVE.store(code(kind), Ordering::Relaxed);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for kind in [WaitBackend::Epoll, WaitBackend::Fallback] {
            assert_eq!(WaitBackend::parse(kind.name()), Some(kind));
        }
        assert_eq!(WaitBackend::parse("sleep-sort"), None);
    }

    #[test]
    fn available_always_has_fallback() {
        let avail = available();
        assert!(avail.contains(&WaitBackend::Fallback));
        assert!(avail.contains(&detect()));
    }
}
