//! Threaded UDP front end for [`EngineCore`].
//!
//! Each worker thread owns its *own* socket and drains it with the
//! batched I/O layer ([`crate::io`]) — there is no receiver thread and
//! no user-space demux hop:
//!
//! - On the `mmsg` and `uring` backends with more than one worker, the
//!   sockets form a `SO_REUSEPORT` group bound to one address: the kernel's 4-tuple
//!   hash pins each remote source to one member socket, so every flow's
//!   datagrams arrive on one worker, in order, spread across workers by
//!   kernel RSS. If the group bind fails (platform policy, exotic
//!   kernels) the engine falls back to one shared socket cloned per
//!   worker — same semantics, serialized syscalls.
//! - On the `fallback` backend every worker clones one shared socket
//!   and does classic one-datagram `recv_from` — the portable baseline
//!   the `udp_io` bench measures the batched path against.
//!
//! Shard ownership is share-nothing and claimed at runtime: the first
//! worker to receive a datagram for a shard claims it with one CAS
//! ([`EngineCore::claim_shard`]) — kernel RSS thereby becomes the
//! partitioner, and on the steady state the worker that owns a flow's
//! socket also owns its shard, end-to-end (datagrams *and* timers),
//! with no contended lock anywhere on the path. Residual RSS-mismatched
//! datagrams (another flow hashing into an already-claimed shard, mesh
//! reroutes) are pushed onto a bounded lock-free ring
//! ([`alpha_engine::HandoffRing`], one per ordered worker pair) and
//! drained by the owner at the top of its loop; when a ring is full the
//! receiver processes the datagram itself under the shard lock (counted
//! in `handoff_overflow`, and in `lock_contended` if the owner is in
//! the shard at that moment) — no datagram is ever dropped to a slow
//! owner and nobody blocks on a full ring. Ownership and handoff only
//! engage with per-worker sockets: on the shared-socket fallback the
//! kernel gives workers no flow affinity, so claiming would funnel
//! nearly all traffic through the rings — those workers instead process
//! whatever they receive under the shard locks, the pre-ownership
//! behaviour.
//! Unclaimed shards fall back to modulo ownership for timer polling so
//! connecting/renewing flows never starve before their first datagram.
//!
//! *How a worker waits* is a runtime-selected backend
//! ([`crate::wait`], `ALPHA_WAIT_BACKEND`) — unless the `uring` UDP
//! backend is active, which subsumes it: the worker's doorbells and
//! timerfd are registered as multishot polls in its per-worker
//! io_uring and the worker blocks in a single `io_uring_enter` that
//! also submits TX batches and reaps RX completions
//! ([`crate::uring`]). `wait_backend` in stats still names the
//! resolved epoll/fallback loop, which is the ladder a worker degrades
//! to if ring setup fails; `wait_calls` + `syscalls_per_datagram` in
//! stats show what actually ran.
//!
//! - **`epoll`** (Linux default): the worker blocks in one `epoll_wait`
//!   over its socket, one `eventfd` doorbell per inbound handoff ring,
//!   and a `timerfd` armed from the engine's per-worker min-deadline
//!   hint ([`EngineCore::worker_next_deadline`], O(1) per iteration).
//!   Senders ring the doorbell *after* the ring push, so a handed-off
//!   datagram is processed microseconds later instead of "whenever the
//!   owner's read timeout expires"; timers fire at microsecond
//!   precision; and an idle engine parks in the kernel (a long backstop
//!   timeout bounds the wakeup rate at a few per second).
//! - **`fallback`** (portable): the worker blocks in the receive
//!   syscall behind an `SO_RCVTIMEO` read timeout sized from the same
//!   deadline hint, re-scanned each iteration
//!   ([`EngineCore::refresh_worker_deadline`]) and quantized to whole
//!   milliseconds so an unchanged horizon costs no `setsockopt`. Timer
//!   lateness and handoff latency are bounded by [`RECV_TIMEOUT`].
//!
//! A stats datagram (prefix [`STATS_MAGIC`]) is answered inline by
//! whichever worker receives it, so `engine stats` works against a
//! live engine without a side channel. Mesh control datagrams ride the
//! same lane: liveness probes (`alpha_engine::mesh::PING_MAGIC`) are
//! echoed inline — so a probe round-trip measures real worker service
//! latency — and handshake replicas (`REPLICA_MAGIC`) are absorbed
//! into the engine without emitting anything.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use alpha_core::Timestamp;
use alpha_engine::mesh;
use alpha_engine::{EngineCore, EngineOutput, HandoffRing, IoWorker};
use alpha_wire::FramePool;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::io::{RxDatagram, UdpBackend, UdpIo, MAX_DATAGRAM};
use crate::wait::WaitBackend;

/// First bytes of a stats-query datagram. Starts with 0x00, which no
/// ALPHA packet type uses, so protocol traffic can never alias it.
pub const STATS_MAGIC: &[u8] = b"\x00ALPHA-ENGINE-STATS";

/// Ceiling on a worker's blocking receive window under the fallback
/// wait backend (and on timer lateness when the deadline computation
/// cannot help).
pub const RECV_TIMEOUT: Duration = Duration::from_millis(5);
const MIN_READ_TIMEOUT: Duration = Duration::from_millis(1);
/// Most datagrams drained into one worker burst before timers and
/// transmissions get a chance to run; bounds per-burst frame pinning.
const MAX_BURST: usize = 32;
/// `epoll_wait` backstop timeout: with no traffic, no doorbells and no
/// armed timer, a worker still wakes this often to re-check shutdown.
/// This is the idle-engine wakeup rate under the epoll backend (~4/s
/// per worker, vs. 200/s at [`RECV_TIMEOUT`] under the fallback).
#[cfg(target_os = "linux")]
const EPOLL_BACKSTOP_MS: i32 = 250;
/// Kernel receive-buffer request for every worker socket: deep enough
/// to absorb a traffic burst while workers are inside the engine.
/// Best-effort — without `CAP_NET_ADMIN` the kernel clamps the request
/// to `net.core.rmem_max`.
#[cfg(target_os = "linux")]
const RECV_BUFFER_BYTES: usize = 4 << 20;

/// One eventfd doorbell per ordered worker pair, mirroring the handoff
/// rings: `cells[dst][src]` is rung by worker `src` after pushing onto
/// `rings[dst][src]`. The diagonal `cells[w][w]` (no ring exists for a
/// worker-to-itself handoff) is worker `w`'s *control* bell: the
/// engine's deadline waker and [`Engine::shutdown`] ring it to knock
/// the worker out of `epoll_wait`. Built under the epoll wait backend
/// and for the uring runtime, which registers the same fds as ring
/// polls.
#[cfg(target_os = "linux")]
struct Doorbells {
    cells: Vec<Vec<crate::epoll::EventFd>>,
}

#[cfg(target_os = "linux")]
impl Doorbells {
    fn new(workers: usize) -> io::Result<Doorbells> {
        let mut cells = Vec::with_capacity(workers);
        for _ in 0..workers {
            let mut row = Vec::with_capacity(workers);
            for _ in 0..workers {
                row.push(crate::epoll::EventFd::new()?);
            }
            cells.push(row);
        }
        Ok(Doorbells { cells })
    }
}

#[cfg(target_os = "linux")]
thread_local! {
    /// Which engine worker this thread is, if any. The deadline waker
    /// skips ringing a worker's own bell: the worker re-reads its hint
    /// at the top of every loop iteration, so a self-wake would only
    /// add a spurious `epoll_wait` round trip.
    static CURRENT_WORKER: std::cell::Cell<Option<u32>> = const { std::cell::Cell::new(None) };
}

/// A running multi-flow engine: per-worker sockets (or one shared
/// socket) and a worker pool owning disjoint shard sets.
pub struct Engine {
    core: Arc<EngineCore>,
    io: UdpIo,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    start: Instant,
    reuseport: bool,
    #[cfg(target_os = "linux")]
    doorbells: Option<Arc<Doorbells>>,
}

/// What each verified delivery/extraction sink receives.
pub type DeliverySink = Box<dyn Fn(&EngineOutput) + Send + Sync>;

impl Engine {
    /// Bind `addr` and start `workers` worker threads over `core`.
    pub fn bind<A: ToSocketAddrs>(addr: A, core: EngineCore, workers: usize) -> io::Result<Engine> {
        Engine::bind_with_sink(addr, core, workers, None)
    }

    /// [`Engine::bind`] with an optional sink invoked (on worker
    /// threads) for every output carrying deliveries or extractions.
    pub fn bind_with_sink<A: ToSocketAddrs>(
        addr: A,
        core: EngineCore,
        workers: usize,
        sink: Option<DeliverySink>,
    ) -> io::Result<Engine> {
        let workers = workers.max(1);
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no bind addr"))?;
        let backend = crate::io::active();
        let (sockets, reuseport) = bind_worker_sockets(addr, workers, backend)?;
        // Deep receive queues decouple sender cadence from worker
        // cadence on every backend; applies to the shared fallback
        // socket and each reuseport member alike.
        #[cfg(target_os = "linux")]
        for s in &sockets {
            let _ = crate::mmsg::set_recv_buffer(s, RECV_BUFFER_BYTES);
        }
        let core = Arc::new(core);
        core.metrics().io.set_backend(backend.name());

        // Resolve the wait backend. Doorbell creation is all-or-nothing
        // at bind time: if any eventfd fails the whole engine degrades
        // to the fallback loop, so `wait_backend` in stats always names
        // the loop the workers actually run.
        let wait = crate::wait::active();
        #[cfg(target_os = "linux")]
        let (wait, doorbells) = {
            // Doorbells serve the epoll wait backend *and* the uring
            // runtime (which folds the same eventfds into its ring as
            // multishot polls); creation stays all-or-nothing so
            // `wait_backend` in stats always names a loop the workers
            // can actually run.
            let want = wait == WaitBackend::Epoll || backend == UdpBackend::Uring;
            if want {
                match Doorbells::new(workers) {
                    Ok(bells) => (wait, Some(Arc::new(bells))),
                    Err(e) => {
                        eprintln!(
                            "alpha-transport: eventfd doorbells unavailable ({e}); \
                             using the fallback wait backend"
                        );
                        (WaitBackend::Fallback, None)
                    }
                }
            } else {
                (WaitBackend::Fallback, None)
            }
        };
        #[cfg(not(target_os = "linux"))]
        let wait = {
            debug_assert_eq!(wait, WaitBackend::Fallback);
            WaitBackend::Fallback
        };
        core.metrics().io.set_wait_backend(wait.name());
        #[cfg(target_os = "linux")]
        let wait_epoll = wait == WaitBackend::Epoll && doorbells.is_some();

        // Per-worker min-deadline hints; under epoll the engine also
        // gets a waker that rings a worker's control bell whenever its
        // earliest deadline moves forward, so a sleeping worker re-arms
        // its timerfd instead of discovering the new timer late.
        #[cfg(target_os = "linux")]
        let waker: Option<Box<dyn Fn(u32) + Send + Sync>> = doorbells.as_ref().map(|bells| {
            let bells = Arc::clone(bells);
            Box::new(move |w: u32| {
                if CURRENT_WORKER.with(std::cell::Cell::get) != Some(w) {
                    bells.cells[w as usize][w as usize].ring();
                }
            }) as Box<dyn Fn(u32) + Send + Sync>
        });
        #[cfg(not(target_os = "linux"))]
        let waker: Option<Box<dyn Fn(u32) + Send + Sync>> = None;
        core.install_worker_hints(workers as u32, waker);

        let shutdown = Arc::new(AtomicBool::new(false));
        let ready = Arc::new(AtomicUsize::new(0));
        let start = Instant::now();
        let sink = sink.map(Arc::new);
        // RX frames are full-datagram sized (a recv must never truncate)
        // and separate from the engine's TX pool, whose frames are MTU
        // sized.
        let rx_pool = FramePool::new(MAX_DATAGRAM, workers * MAX_BURST * 2);

        let handle = sockets[0].try_clone()?;
        // One bounded lock-free ring per ordered worker pair:
        // `rings[dst][src]` carries datagrams worker `src` received for
        // shards worker `dst` owns. SPSC by construction.
        let ring_cap = core.config().handoff_ring;
        let rings: Arc<Vec<Vec<HandoffRing<RxDatagram>>>> = Arc::new(
            (0..workers)
                .map(|_| {
                    (0..workers)
                        .map(|_| HandoffRing::with_capacity(ring_cap))
                        .collect()
                })
                .collect(),
        );
        let mut threads = Vec::with_capacity(workers);
        for (w, sock) in sockets.into_iter().enumerate() {
            sock.set_read_timeout(Some(RECV_TIMEOUT))?;
            let counters = core.metrics().io.register_worker();
            let io = UdpIo::with_backend(sock, backend, Arc::clone(&counters));
            let worker = Worker {
                index: w,
                me: w as u32,
                workers,
                shards: core.shard_count(),
                io,
                counters,
                rx_pool: rx_pool.clone(),
                core: Arc::clone(&core),
                rings: Arc::clone(&rings),
                #[cfg(target_os = "linux")]
                doorbells: doorbells.clone(),
                #[cfg(target_os = "linux")]
                wait_epoll,
                #[cfg(target_os = "linux")]
                uring: None,
                per_worker_sockets: reuseport,
                shutdown: Arc::clone(&shutdown),
                ready: Arc::clone(&ready),
                announced: false,
                start,
                sink: sink.clone(),
                rng: StdRng::from_entropy(),
                rx: Vec::with_capacity(MAX_BURST),
                handed: Vec::with_capacity(MAX_BURST),
                local: Vec::with_capacity(MAX_BURST),
            };
            threads.push(std::thread::spawn(move || worker.run()));
        }
        // Wait (bounded) for every worker's wait runtime to come up, so
        // traffic sent the instant `bind` returns meets installed
        // rings/epoll sets rather than racing their setup. Setup is
        // milliseconds even on a loaded single-core host; a worker that
        // somehow never reports (thread spawn starvation) only costs
        // the bound — the engine still works, workers just finish
        // setting up under traffic.
        let patience = Instant::now();
        while ready.load(Ordering::Acquire) < workers && patience.elapsed() < Duration::from_secs(2)
        {
            std::thread::sleep(Duration::from_micros(50));
        }
        let io = UdpIo::with_backend(handle, backend, core.metrics().io.register_worker());
        Ok(Engine {
            core,
            io,
            shutdown,
            threads,
            start,
            reuseport,
            #[cfg(target_os = "linux")]
            doorbells,
        })
    }

    /// The engine core (routes, flow creation, metrics).
    #[must_use]
    pub fn core(&self) -> &Arc<EngineCore> {
        &self.core
    }

    /// Bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.io.socket().local_addr()
    }

    /// Whether the workers got their own `SO_REUSEPORT` sockets (false:
    /// one shared socket, either by backend choice or graceful
    /// fallback).
    #[must_use]
    pub fn per_worker_sockets(&self) -> bool {
        self.reuseport
    }

    /// Engine-relative protocol time (µs since bind).
    #[must_use]
    pub fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// Send pre-staged datagrams (e.g. from
    /// [`EngineCore::sign_batch`]), gathered into batched syscalls.
    pub fn transmit(&self, out: &EngineOutput) -> io::Result<()> {
        self.io.send_batch(&out.datagrams)?;
        Ok(())
    }

    /// Current stats snapshot as JSON.
    #[must_use]
    pub fn stats_json(&self) -> String {
        self.core.stats_json()
    }

    /// Knock every worker out of `epoll_wait` so a shutdown is seen
    /// now, not at the next backstop tick. No-op under the fallback
    /// wait (its read timeouts already bound the reaction time).
    fn wake_all_workers(&self) {
        #[cfg(target_os = "linux")]
        if let Some(bells) = &self.doorbells {
            for w in 0..bells.cells.len() {
                bells.cells[w][w].ring();
            }
        }
    }

    /// Signal shutdown and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.wake_all_workers();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.wake_all_workers();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// One socket per worker (a `SO_REUSEPORT` group) when the batched
/// backend can use them; otherwise one socket cloned per worker.
fn bind_worker_sockets(
    addr: SocketAddr,
    workers: usize,
    backend: UdpBackend,
) -> io::Result<(Vec<UdpSocket>, bool)> {
    #[cfg(target_os = "linux")]
    if matches!(backend, UdpBackend::Mmsg | UdpBackend::Uring) && workers > 1 {
        // Graceful fallback: any failure here (policy, odd kernels)
        // just means a shared socket below.
        if let Ok(group) = crate::mmsg::bind_reuseport_group(addr, workers) {
            return Ok((group, true));
        }
    }
    let _ = backend;
    let first = UdpSocket::bind(addr)?;
    let mut sockets = Vec::with_capacity(workers);
    for _ in 1..workers {
        sockets.push(first.try_clone()?);
    }
    sockets.insert(0, first);
    Ok((sockets, false))
}

/// Everything one worker thread owns, including its reusable scratch
/// buffers — nothing on the steady-state path allocates per iteration.
struct Worker {
    index: usize,
    me: u32,
    workers: usize,
    shards: usize,
    io: UdpIo,
    counters: Arc<IoWorker>,
    rx_pool: FramePool,
    core: Arc<EngineCore>,
    /// `rings[dst][src]`: this worker pushes to `rings[owner][index]`
    /// and drains `rings[index][*]`.
    rings: Arc<Vec<Vec<HandoffRing<RxDatagram>>>>,
    /// Present iff the engine runs the epoll wait backend or the
    /// uring UDP backend (both need the eventfd mesh).
    #[cfg(target_os = "linux")]
    doorbells: Option<Arc<Doorbells>>,
    /// Whether the resolved wait backend is epoll (the uring runtime
    /// builds doorbells even under the fallback wait, so doorbell
    /// presence alone no longer implies the epoll loop).
    #[cfg(target_os = "linux")]
    wait_epoll: bool,
    /// The completion-mode runtime, installed by
    /// [`Worker::run_uring`]; when present, dispatch routes TX through
    /// the ring instead of `send_batch`.
    #[cfg(target_os = "linux")]
    uring: Option<crate::uring::UringIo>,
    /// Whether each worker owns its own `SO_REUSEPORT` socket. Shard
    /// ownership and handoff only make sense when the kernel pins a
    /// flow to one worker's socket; on a shared socket every worker
    /// receives for every shard, so claiming/handing-off would funnel
    /// almost all traffic through the rings for nothing — those
    /// workers process what they receive under the shard locks.
    per_worker_sockets: bool,
    shutdown: Arc<AtomicBool>,
    /// Count of workers whose wait runtime is installed;
    /// [`Engine::bind`] blocks (bounded) until it reaches `workers` so
    /// callers never race ring/epoll setup with live traffic.
    ready: Arc<AtomicUsize>,
    /// Whether this worker already bumped `ready` (a degrade from
    /// uring to the readiness ladder must not count twice).
    announced: bool,
    start: Instant,
    sink: Option<Arc<DeliverySink>>,
    rng: StdRng,
    /// Receive burst scratch, reused across iterations.
    rx: Vec<RxDatagram>,
    /// Handoff-drain scratch, reused across iterations.
    handed: Vec<RxDatagram>,
    /// Locally-processed subset of a receive burst, reused across
    /// iterations.
    local: Vec<RxDatagram>,
}

/// Where a worker's dispatch transmits: the syscall I/O layer, or the
/// uring runtime (which takes ownership of TX frames until their
/// completions settle).
enum Tx<'a> {
    Io(&'a UdpIo),
    #[cfg(target_os = "linux")]
    Ring(&'a mut crate::uring::UringIo, &'a FramePool),
}

/// Build a [`Tx`] from disjoint `Worker` field borrows. A method
/// returning it would borrow all of `self` mutably and conflict with
/// the sibling borrows (`core`, `rng`, scratch) the call sites need.
macro_rules! worker_tx {
    ($w:expr) => {{
        #[cfg(target_os = "linux")]
        let tx = match $w.uring.as_mut() {
            Some(ring) => Tx::Ring(ring, &$w.rx_pool),
            None => Tx::Io(&$w.io),
        };
        #[cfg(not(target_os = "linux"))]
        let tx = Tx::Io(&$w.io);
        tx
    }};
}

/// Feed one burst to the engine and dispatch its output, building the
/// borrow batch in a stack array: the `(addr, &bytes)` views borrow
/// `burst`, so a heap batch could not be hoisted across iterations —
/// a fixed-size array sized to the burst cap avoids the per-burst
/// allocation instead.
fn feed(
    core: &EngineCore,
    tx: &mut Tx<'_>,
    sink: Option<&DeliverySink>,
    rng: &mut StdRng,
    burst: &[RxDatagram],
    now: Timestamp,
) {
    const EMPTY: &[u8] = &[];
    let nowhere: SocketAddr = SocketAddr::from(([0, 0, 0, 0], 0));
    for chunk in burst.chunks(MAX_BURST) {
        let mut batch: [(SocketAddr, &[u8]); MAX_BURST] = [(nowhere, EMPTY); MAX_BURST];
        for (slot, d) in batch.iter_mut().zip(chunk) {
            *slot = (d.from, &d.frame[..]);
        }
        let mut out = core.handle_datagrams(&batch[..chunk.len()], now, rng);
        dispatch(tx, &mut out, sink);
    }
}

impl Worker {
    fn run(mut self) {
        #[cfg(target_os = "linux")]
        {
            if self.io.backend() == UdpBackend::Uring {
                if let Some(bells) = self.doorbells.clone() {
                    CURRENT_WORKER.with(|c| c.set(Some(self.me)));
                    match self.run_uring(&bells) {
                        Ok(()) => return,
                        Err(e) => {
                            // Ring setup failed on this worker alone
                            // (fd pressure, memlock limits): degrade
                            // one rung down the ladder.
                            eprintln!(
                                "alpha-transport: worker {} io_uring setup failed ({e}); \
                                 degrading to the readiness ladder",
                                self.index
                            );
                        }
                    }
                }
            }
            if self.wait_epoll {
                if let Some(bells) = self.doorbells.clone() {
                    CURRENT_WORKER.with(|c| c.set(Some(self.me)));
                    match self.run_epoll(&bells) {
                        Ok(()) => return,
                        Err(e) => {
                            // Per-worker epoll/timerfd setup failed; this
                            // worker alone degrades to the blocking loop. Its
                            // doorbells go unrung-drained but an eventfd
                            // counter saturating is harmless.
                            eprintln!(
                                "alpha-transport: worker {} readiness setup failed ({e}); \
                                 using blocking waits",
                                self.index
                            );
                        }
                    }
                }
            }
        }
        self.run_blocking();
    }

    fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// Drain the handoff rings — datagrams other workers received for
    /// shards this worker owns — bounded at one burst so timers and
    /// the socket still get their turn. Returns whether the burst cap
    /// was hit (rings may still carry backlog).
    fn drain_handoffs(&mut self, now: Timestamp) -> bool {
        self.handed.clear();
        let waits = &self.core.metrics().io.handoff_wait_us;
        'drain: for src in &self.rings[self.index] {
            while let Some(d) = src.pop() {
                waits.record(d.received.elapsed().as_micros() as u64);
                self.handed.push(d);
                if self.handed.len() >= MAX_BURST {
                    break 'drain;
                }
            }
        }
        let full = self.handed.len() >= MAX_BURST;
        if !self.handed.is_empty() {
            self.counters
                .handoff_in
                .fetch_add(self.handed.len() as u64, Ordering::Relaxed);
            let mut tx = worker_tx!(self);
            feed(
                &self.core,
                &mut tx,
                self.sink.as_deref(),
                &mut self.rng,
                &self.handed,
                now,
            );
        }
        full
    }

    /// Advance the timers of every shard this worker polls.
    fn poll_timers(&mut self, now: Timestamp) {
        let mut out = EngineOutput::default();
        for s in 0..self.shards {
            if self.core.polls_shard(s, self.me, self.workers as u32) {
                self.core.poll_shard(s, now, &mut self.rng, &mut out);
            }
        }
        let mut tx = worker_tx!(self);
        dispatch(&mut tx, &mut out, self.sink.as_deref());
    }

    /// Sort a received burst: answer control datagrams inline, hand
    /// RSS-mismatched datagrams to their owning worker, process the
    /// rest here.
    fn ingest(&mut self, now: Timestamp) {
        let mut rx = std::mem::take(&mut self.rx);
        self.local.clear();
        for d in rx.drain(..) {
            if d.frame.starts_with(STATS_MAGIC) {
                let _ = self
                    .io
                    .socket()
                    .send_to(self.core.stats_json().as_bytes(), d.from);
                continue;
            }
            if let Some(nonce) = mesh::parse_ping(&d.frame) {
                // Mesh liveness probe: echoed inline like stats, so
                // a peer's health check measures this worker's real
                // service latency, not a side channel's.
                let _ = self.io.socket().send_to(&mesh::encode_pong(nonce), d.from);
                continue;
            }
            if let Some(inner) = mesh::parse_replica(&d.frame) {
                // Handshake replica from an upstream relay toward a
                // standby: learn the association, emit nothing.
                self.core.absorb_replica(d.from, inner, now, &mut self.rng);
                continue;
            }
            if self.workers == 1 || !self.per_worker_sockets {
                // Sole worker, or a shared socket (no kernel flow
                // affinity to preserve): process in place under the
                // shard locks; shards stay unclaimed and timers
                // stay on modulo polling.
                self.local.push(d);
                continue;
            }
            // First receiver wins: claim the shard, or learn who
            // owns it and hand the datagram over lock-free.
            let shard = self.core.shard_of_source(d.from);
            let owner = self.core.claim_shard(shard, self.me);
            if owner == self.me {
                self.local.push(d);
            } else {
                match self.rings[owner as usize][self.index].push(d) {
                    Ok(()) => {
                        self.counters.handoff_out.fetch_add(1, Ordering::Relaxed);
                        // Ring-after-push: the datagram is already
                        // visible in the ring when the owner's
                        // epoll_wait reports this bell.
                        #[cfg(target_os = "linux")]
                        if let Some(bells) = &self.doorbells {
                            bells.cells[owner as usize][self.index].ring();
                        }
                    }
                    Err(d) => {
                        // Ring full: process it here under the shard
                        // lock (contended path) rather than drop it —
                        // the owner is behind, but the datagram must
                        // not be lost.
                        self.counters
                            .handoff_overflow
                            .fetch_add(1, Ordering::Relaxed);
                        self.local.push(d);
                    }
                }
            }
        }
        self.rx = rx;
        if !self.local.is_empty() {
            // The whole burst goes to the engine in one call, so its
            // relay path can batch-verify and the responses leave in
            // one gathered send.
            let mut tx = worker_tx!(self);
            feed(
                &self.core,
                &mut tx,
                self.sink.as_deref(),
                &mut self.rng,
                &self.local,
                now,
            );
        }
    }

    /// Report this worker's wait runtime as installed (once — a
    /// degrade from uring down the ladder re-enters a loop but must
    /// not count twice). [`Engine::bind`] blocks on the tally.
    fn mark_ready(&mut self) {
        if !self.announced {
            self.announced = true;
            self.ready.fetch_add(1, Ordering::Release);
        }
    }

    /// The portable wait: block in the receive syscall behind a
    /// deadline-sized read timeout.
    fn run_blocking(&mut self) {
        self.mark_ready();
        // (Re-)establish the baseline timeout — this loop may be
        // entered after a failed readiness setup left the socket with
        // a microsecond timeout.
        let mut read_timeout = RECV_TIMEOUT;
        if self
            .io
            .socket()
            .set_read_timeout(Some(read_timeout))
            .is_err()
        {
            self.counters
                .read_timeout_errors
                .fetch_add(1, Ordering::Relaxed);
        }
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let now = self.now();
            let drained_full = self.drain_handoffs(now);
            self.poll_timers(now);
            if drained_full {
                // The rings still carry backlog; skip the blocking
                // receive and keep draining at full speed.
                continue;
            }
            // Rescan this worker's shards for the earliest deadline
            // (the one operation allowed to raise the hint) and size
            // the blocking window from it.
            let wait = self
                .core
                .refresh_worker_deadline(self.me)
                .map_or(RECV_TIMEOUT, |d| Duration::from_micros(d.since(now)))
                .clamp(MIN_READ_TIMEOUT, RECV_TIMEOUT);
            // Quantize to whole milliseconds so an unchanged deadline
            // horizon costs no setsockopt on the hot path.
            let wait = Duration::from_millis((wait.as_micros() as u64).div_ceil(1000).max(1));
            if wait != read_timeout {
                // A failed setsockopt means the previous window is
                // still in effect — timers run late but nothing
                // breaks; make it visible instead of ignoring it.
                if self.io.socket().set_read_timeout(Some(wait)).is_err() {
                    self.counters
                        .read_timeout_errors
                        .fetch_add(1, Ordering::Relaxed);
                } else {
                    read_timeout = wait;
                }
            }
            self.rx.clear();
            let got = self.io.recv_batch(&self.rx_pool, &mut self.rx, MAX_BURST);
            // One wakeup per blocking-receive return, fruitful or not:
            // the idle rate of this counter is what the epoll backend
            // collapses.
            self.counters.wakeups.fetch_add(1, Ordering::Relaxed);
            match got {
                Ok(n) if n > 0 => {}
                _ => continue, // timeout (re-check shutdown) or transient error
            }
            let now = self.now();
            self.ingest(now);
        }
    }

    /// The readiness wait: park in `epoll_wait` over the socket, the
    /// handoff doorbells and a min-deadline `timerfd`. An `Err` means
    /// setup failed (the loop itself only returns on shutdown); the
    /// caller falls back to [`Worker::run_blocking`].
    #[cfg(target_os = "linux")]
    fn run_epoll(&mut self, bells: &Arc<Doorbells>) -> io::Result<()> {
        use std::os::fd::AsRawFd;

        use crate::epoll::{Epoll, TimerFd, MAX_EVENTS};

        // Doorbell tokens are the source worker index; these two sit
        // above any plausible worker count.
        const TOKEN_SOCKET: u64 = u64::MAX;
        const TOKEN_TIMER: u64 = u64::MAX - 1;

        let ep = Epoll::new()?;
        // On a shared socket every worker's set watches the same fd;
        // EPOLLEXCLUSIVE wakes one worker per datagram instead of the
        // whole herd.
        ep.add(
            self.io.socket().as_raw_fd(),
            TOKEN_SOCKET,
            !self.per_worker_sockets,
        )?;
        let timer = TimerFd::new()?;
        ep.add(timer.as_raw_fd(), TOKEN_TIMER, false)?;
        for (src, bell) in bells.cells[self.index].iter().enumerate() {
            ep.add(bell.as_raw_fd(), src as u64, false)?;
        }
        // Readiness decides when to receive, so the socket keeps a
        // token timeout only as a guard: if a spurious wake (or a
        // shared-socket race) finds the queue empty, the receive
        // blocks one jiffy instead of [`RECV_TIMEOUT`]. Sends stay
        // blocking — under saturation the kernel applies backpressure
        // instead of dropping.
        self.io
            .socket()
            .set_read_timeout(Some(Duration::from_micros(1)))?;
        self.mark_ready();

        let mut tokens: Vec<u64> = Vec::with_capacity(MAX_EVENTS);
        // Deadline (µs) the timerfd is currently armed for; u64::MAX =
        // disarmed. Re-arming only on change keeps timerfd_settime off
        // the steady-state path.
        let mut armed = u64::MAX;
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return Ok(());
            }
            let hint = self
                .core
                .worker_next_deadline(self.me)
                .map_or(u64::MAX, |t| t.micros());
            if hint != armed {
                let res = if hint == u64::MAX {
                    timer.disarm()
                } else {
                    let now_us = self.now().micros();
                    timer.arm_in(Duration::from_micros(hint.saturating_sub(now_us)))
                };
                if res.is_err() {
                    // The previously-armed expiry (or the backstop)
                    // still bounds lateness; count it, don't hide it.
                    self.counters
                        .read_timeout_errors
                        .fetch_add(1, Ordering::Relaxed);
                }
                armed = hint;
            }
            tokens.clear();
            match ep.wait(EPOLL_BACKSTOP_MS, &mut tokens) {
                Ok(_) => {}
                Err(_) => {
                    // Unexpected post-setup failure: pace the loop so
                    // a persistent error cannot spin a core.
                    self.counters
                        .read_timeout_errors
                        .fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(MIN_READ_TIMEOUT);
                    continue;
                }
            }
            self.counters.wakeups.fetch_add(1, Ordering::Relaxed);
            self.counters.wait_calls.fetch_add(1, Ordering::Relaxed);
            if self.shutdown.load(Ordering::Relaxed) {
                return Ok(());
            }
            let mut socket_ready = false;
            let mut timer_fired = false;
            for &t in &tokens {
                match t {
                    TOKEN_SOCKET => socket_ready = true,
                    TOKEN_TIMER => timer_fired = true,
                    src => {
                        // Quiet the bell; the rings are drained below
                        // regardless (ring-after-push makes bell-then-
                        // ring-drain ordering safe, see crate::epoll).
                        bells.cells[self.index][src as usize].drain();
                    }
                }
            }
            if timer_fired {
                timer.drain();
                // Force a re-arm from the post-poll hint even if the
                // deadline value happens to recur.
                armed = u64::MAX;
            }
            let mut now = self.now();
            // Drain rings until below the burst cap: doorbells are
            // edge-like (drained above), so backlog must not wait for
            // the next ring.
            while self.drain_handoffs(now) {
                now = self.now();
            }
            self.poll_timers(now);
            if timer_fired {
                // Timers fired and were consumed; rescan to raise the
                // hint past them (fetch_min alone can never raise it).
                self.core.refresh_worker_deadline(self.me);
            }
            if socket_ready {
                self.rx.clear();
                // One receive per wake: level-triggered epoll
                // re-reports whatever the burst cap left queued.
                if let Ok(n) = self.io.recv_batch(&self.rx_pool, &mut self.rx, MAX_BURST) {
                    if n > 0 {
                        let now = self.now();
                        self.ingest(now);
                    }
                }
            }
        }
    }

    /// The completion-mode loop: install a per-worker io_uring that
    /// carries the socket (multishot `RECVMSG` into provided
    /// [`FramePool`] buffers, batched `SENDMSG`), the doorbell
    /// eventfds, and a timerfd as multishot polls, then block on one
    /// `io_uring_enter` per wake. Setup errors return `Err` so
    /// [`Worker::run`] degrades to the readiness ladder; post-setup
    /// errors pace the loop exactly like [`Worker::run_epoll`].
    #[cfg(target_os = "linux")]
    fn run_uring(&mut self, bells: &Arc<Doorbells>) -> io::Result<()> {
        use std::os::fd::AsRawFd;

        use crate::epoll::TimerFd;

        let timer = TimerFd::new()?;
        let mut poll_fds: Vec<std::os::fd::RawFd> = bells.cells[self.index]
            .iter()
            .map(|b| b.as_raw_fd())
            .collect();
        let timer_idx = poll_fds.len();
        poll_fds.push(timer.as_raw_fd());
        self.uring = Some(crate::uring::UringIo::new(
            self.io.socket().as_raw_fd(),
            &poll_fds,
            &self.rx_pool,
            Arc::clone(&self.counters),
        )?);
        self.mark_ready();

        let backstop = Duration::from_millis(EPOLL_BACKSTOP_MS as u64);
        let mut fired: Vec<usize> = Vec::new();
        // Deadline (µs) the timerfd is currently armed for; u64::MAX =
        // disarmed (same protocol as the epoll loop).
        let mut armed = u64::MAX;
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                // Drop the runtime on this thread so its cancel +
                // quiesce drain runs before the socket closes.
                self.uring = None;
                return Ok(());
            }
            let hint = self
                .core
                .worker_next_deadline(self.me)
                .map_or(u64::MAX, |t| t.micros());
            if hint != armed {
                let res = if hint == u64::MAX {
                    timer.disarm()
                } else {
                    let now_us = self.now().micros();
                    timer.arm_in(Duration::from_micros(hint.saturating_sub(now_us)))
                };
                if res.is_err() {
                    // The previously-armed expiry (or the backstop)
                    // still bounds lateness; count it, don't hide it.
                    self.counters
                        .read_timeout_errors
                        .fetch_add(1, Ordering::Relaxed);
                }
                armed = hint;
            }
            fired.clear();
            let mut rx = std::mem::take(&mut self.rx);
            rx.clear();
            let res = self.uring.as_mut().expect("installed above").wait(
                backstop,
                &self.rx_pool,
                &mut rx,
                &mut fired,
            );
            self.rx = rx;
            if res.is_err() {
                // Unexpected post-setup failure: pace the loop so a
                // persistent error cannot spin a core.
                self.counters
                    .read_timeout_errors
                    .fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(MIN_READ_TIMEOUT);
                continue;
            }
            self.counters.wakeups.fetch_add(1, Ordering::Relaxed);
            if self.shutdown.load(Ordering::Relaxed) {
                self.uring = None;
                return Ok(());
            }
            let mut timer_fired = false;
            for &idx in &fired {
                if idx == timer_idx {
                    timer_fired = true;
                } else if let Some(bell) = bells.cells[self.index].get(idx) {
                    // Quiet the bell; the rings are drained below
                    // regardless (multishot POLL_ADD is level-like
                    // here: an undrained eventfd re-fires).
                    bell.drain();
                }
            }
            if timer_fired {
                timer.drain();
                // Force a re-arm from the post-poll hint even if the
                // deadline value happens to recur.
                armed = u64::MAX;
            }
            let mut now = self.now();
            // Drain rings until below the burst cap: doorbells are
            // edge-like (drained above), so backlog must not wait for
            // the next ring.
            while self.drain_handoffs(now) {
                now = self.now();
            }
            self.poll_timers(now);
            if timer_fired {
                // Timers fired and were consumed; rescan to raise the
                // hint past them (fetch_min alone can never raise it).
                self.core.refresh_worker_deadline(self.me);
            }
            if !self.rx.is_empty() {
                let now = self.now();
                self.ingest(now);
            }
        }
    }
}

/// Route an engine output burst to the wire: one gathered
/// `send_batch` on the syscall backends; staged `SENDMSG` SQEs
/// flushed with one `io_uring_enter` on the uring runtime. The flush
/// happens *here*, per burst, so replies leave before the worker goes
/// back to its wait — and because that enter also posts accrued
/// completions (GETEVENTS task-work), the next wait usually reaps
/// them straight off the CQ ring without a syscall: one kernel
/// crossing per steady-state relay cycle.
fn dispatch(tx: &mut Tx<'_>, out: &mut EngineOutput, sink: Option<&DeliverySink>) {
    match tx {
        Tx::Io(io) => {
            let _ = io.send_batch(&out.datagrams);
        }
        #[cfg(target_os = "linux")]
        Tx::Ring(ring, pool) => {
            for (to, frame) in out.datagrams.drain(..) {
                ring.send(to, frame, pool);
            }
            ring.flush();
        }
    }
    if let Some(sink) = sink {
        if !out.delivered.is_empty() || !out.extracted.is_empty() || !out.completed.is_empty() {
            sink(out);
        }
    }
}

/// Query a running engine's stats over UDP (the `engine stats` CLI).
pub fn query_stats(addr: SocketAddr, timeout: Duration) -> io::Result<String> {
    let socket = UdpSocket::bind(match addr {
        SocketAddr::V4(_) => "0.0.0.0:0",
        SocketAddr::V6(_) => "[::]:0",
    })?;
    socket.set_read_timeout(Some(timeout))?;
    socket.send_to(STATS_MAGIC, addr)?;
    let mut buf = vec![0u8; MAX_DATAGRAM];
    let (n, _) = socket.recv_from(&mut buf)?;
    Ok(String::from_utf8_lossy(&buf[..n]).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_core::{Config, Mode};
    use alpha_crypto::Algorithm;
    use alpha_engine::EngineConfig;

    fn engine_cfg() -> EngineConfig {
        EngineConfig::new(Config::new(Algorithm::Sha1).with_chain_len(64))
    }

    /// A single-flow client driven by its own `EngineCore` over a raw
    /// socket: handshake, send one message, wait for the exchange to
    /// finish.
    fn run_client(server_addr: SocketAddr, assoc_id: u64, payload: &[u8]) {
        let core = EngineCore::new(engine_cfg());
        let socket = UdpSocket::bind("127.0.0.1:0").expect("client bind");
        socket
            .set_read_timeout(Some(Duration::from_millis(5)))
            .unwrap();
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(assoc_id);
        let now = |s: Instant| Timestamp::from_micros(s.elapsed().as_micros() as u64);

        let (key, out) = core.connect(server_addr, assoc_id, now(start), &mut rng);
        for (dst, bytes) in &out.datagrams {
            socket.send_to(bytes, *dst).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut buf = vec![0u8; MAX_DATAGRAM];
        let mut connected = false;
        let mut sent = false;
        while Instant::now() < deadline {
            let mut out = core.poll(now(start), &mut rng);
            if let Ok((n, from)) = socket.recv_from(&mut buf) {
                out.absorb(core.handle_datagram(from, &buf[..n], now(start), &mut rng));
            }
            for (dst, bytes) in &out.datagrams {
                socket.send_to(bytes, *dst).unwrap();
            }
            connected |= out.completed.contains(&key);
            if connected && !sent {
                let out = core
                    .sign_batch(key, &[payload], Mode::Base, now(start))
                    .expect("sign");
                for (dst, bytes) in &out.datagrams {
                    socket.send_to(bytes, *dst).unwrap();
                }
                sent = true;
            }
            if sent && core.flow_is_idle(key) {
                return;
            }
        }
        panic!("client {assoc_id} did not finish its exchange in time");
    }

    #[test]
    fn serve_multiple_clients_and_answer_stats() {
        let server = Engine::bind("127.0.0.1:0", EngineCore::new(engine_cfg()), 2).expect("bind");
        let server_addr = server.local_addr().unwrap();

        let mut handles = Vec::new();
        for i in 0..4u64 {
            handles.push(std::thread::spawn(move || {
                run_client(server_addr, 100 + i, format!("client {i}").as_bytes());
            }));
        }
        for h in handles {
            h.join().expect("client");
        }
        // A client is done once its own signer goes idle, which can be a
        // moment before the server worker has processed the final S2 —
        // poll the live stats endpoint until the counters converge.
        let deadline = Instant::now() + Duration::from_secs(10);
        let v = loop {
            let stats = query_stats(server_addr, Duration::from_secs(5)).expect("stats");
            let v: serde::Value = serde_json::from_str(&stats).expect("stats json");
            let verified = v
                .get("metrics")
                .and_then(|m| m.get("s2_verified"))
                .and_then(serde::Value::as_u64);
            if verified == Some(4) || Instant::now() >= deadline {
                break v;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        let m = v.get("metrics").unwrap();
        assert_eq!(m.get("handshakes").unwrap().as_u64(), Some(4));
        assert_eq!(m.get("s2_verified").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("flows").unwrap().as_u64(), Some(4));
        // The front end stamped its backends and every worker's I/O
        // counters into the same snapshot.
        let backend = v.get("udp_backend").and_then(serde::Value::as_str);
        assert_eq!(backend, Some(crate::io::active().name()));
        let wait = v.get("wait_backend").and_then(serde::Value::as_str);
        assert_eq!(wait, Some(crate::wait::active().name()));
        let io = m.get("io").expect("io metrics");
        assert!(
            io.get("datagrams_in")
                .and_then(serde::Value::as_u64)
                .unwrap_or(0)
                > 0,
            "workers counted received datagrams"
        );
        assert!(
            io.get("wakeups")
                .and_then(serde::Value::as_u64)
                .unwrap_or(0)
                > 0,
            "workers counted their wait returns"
        );
        server.shutdown();
    }

    #[test]
    fn answers_mesh_probes_and_absorbs_replicas() {
        let server = Engine::bind("127.0.0.1:0", EngineCore::new(engine_cfg()), 1).expect("bind");
        let addr = server.local_addr().unwrap();
        let sock = UdpSocket::bind("127.0.0.1:0").expect("probe socket");
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Probe round-trip: the worker echoes the nonce inline.
        sock.send_to(&mesh::encode_ping(0xDEAD_BEEF), addr).unwrap();
        let mut buf = [0u8; 64];
        let (n, from) = sock.recv_from(&mut buf).expect("pong");
        assert_eq!(from, addr);
        assert_eq!(mesh::parse_pong(&buf[..n]), Some(0xDEAD_BEEF));
        // A replica datagram is absorbed silently (learn-only).
        sock.send_to(&mesh::encode_replica(b"not a handshake"), addr)
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server
            .core()
            .metrics()
            .mesh
            .replicas_absorbed
            .load(Ordering::Relaxed)
            == 0
        {
            assert!(Instant::now() < deadline, "replica never absorbed");
            std::thread::sleep(Duration::from_millis(5));
        }
        sock.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        assert!(
            sock.recv_from(&mut buf).is_err(),
            "replicas must not generate a response"
        );
        server.shutdown();
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn reuseport_group_binds_and_serves() {
        // Force per-worker sockets regardless of the session backend.
        let group = crate::mmsg::bind_reuseport_group("127.0.0.1:0".parse().unwrap(), 4)
            .expect("reuseport group");
        let addr = group[0].local_addr().unwrap();
        for s in &group {
            assert_eq!(s.local_addr().unwrap(), addr, "one address, many sockets");
        }
        drop(group);
        // And the engine front end picks them up when the backend is mmsg.
        if crate::io::active() == UdpBackend::Mmsg {
            let engine =
                Engine::bind("127.0.0.1:0", EngineCore::new(engine_cfg()), 4).expect("bind");
            assert!(engine.per_worker_sockets());
            engine.shutdown();
        }
    }
}
