//! Threaded UDP front end for [`EngineCore`].
//!
//! Each worker thread owns its *own* socket and drains it with the
//! batched I/O layer ([`crate::io`]) — there is no receiver thread and
//! no user-space demux hop:
//!
//! - On the `mmsg` backend with more than one worker, the sockets form
//!   a `SO_REUSEPORT` group bound to one address: the kernel's 4-tuple
//!   hash pins each remote source to one member socket, so every flow's
//!   datagrams arrive on one worker, in order, spread across workers by
//!   kernel RSS. If the group bind fails (platform policy, exotic
//!   kernels) the engine falls back to one shared socket cloned per
//!   worker — same semantics, serialized syscalls.
//! - On the `fallback` backend every worker clones one shared socket
//!   and does classic one-datagram `recv_from` — the portable baseline
//!   the `udp_io` bench measures the batched path against.
//!
//! Shard ownership is share-nothing and claimed at runtime: the first
//! worker to receive a datagram for a shard claims it with one CAS
//! ([`EngineCore::claim_shard`]) — kernel RSS thereby becomes the
//! partitioner, and on the steady state the worker that owns a flow's
//! socket also owns its shard, end-to-end (datagrams *and* timers),
//! with no contended lock anywhere on the path. Residual RSS-mismatched
//! datagrams (another flow hashing into an already-claimed shard, mesh
//! reroutes) are pushed onto a bounded lock-free ring
//! ([`alpha_engine::HandoffRing`], one per ordered worker pair) and
//! drained by the owner at the top of its loop; when a ring is full the
//! receiver processes the datagram itself under the shard lock (counted
//! in `handoff_overflow`, and in `lock_contended` if the owner is in
//! the shard at that moment) — no datagram is ever dropped to a slow
//! owner and nobody blocks on a full ring. Ownership and handoff only
//! engage with per-worker sockets: on the shared-socket fallback the
//! kernel gives workers no flow affinity, so claiming would funnel
//! nearly all traffic through the rings — those workers instead process
//! whatever they receive under the shard locks, the pre-ownership
//! behaviour.
//! Unclaimed shards fall back to modulo ownership for timer polling so
//! connecting/renewing flows never starve before their first datagram.
//! Read timeouts are deadline-aware: each worker sizes its blocking
//! window from its own shards' next timer deadline (with a shared
//! socket the coarsest window wins, bounding timer lateness at
//! [`RECV_TIMEOUT`], exactly the old fixed behaviour). Handoff latency
//! is bounded the same way: an owner blocked in `recv` wakes within
//! [`RECV_TIMEOUT`] and drains its rings first.
//!
//! A stats datagram (prefix [`STATS_MAGIC`]) is answered inline by
//! whichever worker receives it, so `engine stats` works against a
//! live engine without a side channel. Mesh control datagrams ride the
//! same lane: liveness probes (`alpha_engine::mesh::PING_MAGIC`) are
//! echoed inline — so a probe round-trip measures real worker service
//! latency — and handshake replicas (`REPLICA_MAGIC`) are absorbed
//! into the engine without emitting anything.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use alpha_core::Timestamp;
use alpha_engine::mesh;
use alpha_engine::{EngineCore, EngineOutput, HandoffRing, IoWorker};
use alpha_wire::FramePool;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::io::{RxDatagram, UdpBackend, UdpIo, MAX_DATAGRAM};

/// First bytes of a stats-query datagram. Starts with 0x00, which no
/// ALPHA packet type uses, so protocol traffic can never alias it.
pub const STATS_MAGIC: &[u8] = b"\x00ALPHA-ENGINE-STATS";

/// Ceiling on a worker's blocking receive window (and on timer
/// lateness when the deadline computation cannot help).
pub const RECV_TIMEOUT: Duration = Duration::from_millis(5);
const MIN_READ_TIMEOUT: Duration = Duration::from_millis(1);
/// Most datagrams drained into one worker burst before timers and
/// transmissions get a chance to run; bounds per-burst frame pinning.
const MAX_BURST: usize = 32;
/// Kernel receive-buffer request for every worker socket: deep enough
/// to absorb a traffic burst while workers are inside the engine.
/// Best-effort — without `CAP_NET_ADMIN` the kernel clamps the request
/// to `net.core.rmem_max`.
#[cfg(target_os = "linux")]
const RECV_BUFFER_BYTES: usize = 4 << 20;

/// A running multi-flow engine: per-worker sockets (or one shared
/// socket) and a worker pool owning disjoint shard sets.
pub struct Engine {
    core: Arc<EngineCore>,
    io: UdpIo,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    start: Instant,
    reuseport: bool,
}

/// What each verified delivery/extraction sink receives.
pub type DeliverySink = Box<dyn Fn(&EngineOutput) + Send + Sync>;

impl Engine {
    /// Bind `addr` and start `workers` worker threads over `core`.
    pub fn bind<A: ToSocketAddrs>(addr: A, core: EngineCore, workers: usize) -> io::Result<Engine> {
        Engine::bind_with_sink(addr, core, workers, None)
    }

    /// [`Engine::bind`] with an optional sink invoked (on worker
    /// threads) for every output carrying deliveries or extractions.
    pub fn bind_with_sink<A: ToSocketAddrs>(
        addr: A,
        core: EngineCore,
        workers: usize,
        sink: Option<DeliverySink>,
    ) -> io::Result<Engine> {
        let workers = workers.max(1);
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no bind addr"))?;
        let backend = crate::io::active();
        let (sockets, reuseport) = bind_worker_sockets(addr, workers, backend)?;
        // Deep receive queues decouple sender cadence from worker
        // cadence on every backend; applies to the shared fallback
        // socket and each reuseport member alike.
        #[cfg(target_os = "linux")]
        for s in &sockets {
            let _ = crate::mmsg::set_recv_buffer(s, RECV_BUFFER_BYTES);
        }
        let core = Arc::new(core);
        core.metrics().io.set_backend(backend.name());
        let shutdown = Arc::new(AtomicBool::new(false));
        let start = Instant::now();
        let sink = sink.map(Arc::new);
        // RX frames are full-datagram sized (a recv must never truncate)
        // and separate from the engine's TX pool, whose frames are MTU
        // sized.
        let rx_pool = FramePool::new(MAX_DATAGRAM, workers * MAX_BURST * 2);

        let handle = sockets[0].try_clone()?;
        // One bounded lock-free ring per ordered worker pair:
        // `rings[dst][src]` carries datagrams worker `src` received for
        // shards worker `dst` owns. SPSC by construction.
        let ring_cap = core.config().handoff_ring;
        let rings: Arc<Vec<Vec<HandoffRing<RxDatagram>>>> = Arc::new(
            (0..workers)
                .map(|_| {
                    (0..workers)
                        .map(|_| HandoffRing::with_capacity(ring_cap))
                        .collect()
                })
                .collect(),
        );
        let mut threads = Vec::with_capacity(workers);
        for (w, sock) in sockets.into_iter().enumerate() {
            sock.set_read_timeout(Some(RECV_TIMEOUT))?;
            let counters = core.metrics().io.register_worker();
            let io = UdpIo::with_backend(sock, backend, Arc::clone(&counters));
            threads.push(spawn_worker(WorkerCtx {
                index: w,
                workers,
                io,
                counters,
                rx_pool: rx_pool.clone(),
                core: Arc::clone(&core),
                rings: Arc::clone(&rings),
                per_worker_sockets: reuseport,
                shutdown: Arc::clone(&shutdown),
                start,
                sink: sink.clone(),
            }));
        }
        let io = UdpIo::with_backend(handle, backend, core.metrics().io.register_worker());
        Ok(Engine {
            core,
            io,
            shutdown,
            threads,
            start,
            reuseport,
        })
    }

    /// The engine core (routes, flow creation, metrics).
    #[must_use]
    pub fn core(&self) -> &Arc<EngineCore> {
        &self.core
    }

    /// Bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.io.socket().local_addr()
    }

    /// Whether the workers got their own `SO_REUSEPORT` sockets (false:
    /// one shared socket, either by backend choice or graceful
    /// fallback).
    #[must_use]
    pub fn per_worker_sockets(&self) -> bool {
        self.reuseport
    }

    /// Engine-relative protocol time (µs since bind).
    #[must_use]
    pub fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// Send pre-staged datagrams (e.g. from
    /// [`EngineCore::sign_batch`]), gathered into batched syscalls.
    pub fn transmit(&self, out: &EngineOutput) -> io::Result<()> {
        self.io.send_batch(&out.datagrams)?;
        Ok(())
    }

    /// Current stats snapshot as JSON.
    #[must_use]
    pub fn stats_json(&self) -> String {
        self.core.stats_json()
    }

    /// Signal shutdown and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// One socket per worker (a `SO_REUSEPORT` group) when the batched
/// backend can use them; otherwise one socket cloned per worker.
fn bind_worker_sockets(
    addr: SocketAddr,
    workers: usize,
    backend: UdpBackend,
) -> io::Result<(Vec<UdpSocket>, bool)> {
    #[cfg(target_os = "linux")]
    if backend == UdpBackend::Mmsg && workers > 1 {
        // Graceful fallback: any failure here (policy, odd kernels)
        // just means a shared socket below.
        if let Ok(group) = crate::mmsg::bind_reuseport_group(addr, workers) {
            return Ok((group, true));
        }
    }
    let _ = backend;
    let first = UdpSocket::bind(addr)?;
    let mut sockets = Vec::with_capacity(workers);
    for _ in 1..workers {
        sockets.push(first.try_clone()?);
    }
    sockets.insert(0, first);
    Ok((sockets, false))
}

/// Everything one worker thread owns, bundled so the spawn stays
/// readable.
struct WorkerCtx {
    index: usize,
    workers: usize,
    io: UdpIo,
    counters: Arc<IoWorker>,
    rx_pool: FramePool,
    core: Arc<EngineCore>,
    /// `rings[dst][src]`: this worker pushes to `rings[owner][index]`
    /// and drains `rings[index][*]`.
    rings: Arc<Vec<Vec<HandoffRing<RxDatagram>>>>,
    /// Whether each worker owns its own `SO_REUSEPORT` socket. Shard
    /// ownership and handoff only make sense when the kernel pins a
    /// flow to one worker's socket; on a shared socket every worker
    /// receives for every shard, so claiming/handing-off would funnel
    /// almost all traffic through the rings for nothing — those
    /// workers process what they receive under the shard locks.
    per_worker_sockets: bool,
    shutdown: Arc<AtomicBool>,
    start: Instant,
    sink: Option<Arc<DeliverySink>>,
}

fn spawn_worker(ctx: WorkerCtx) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let WorkerCtx {
            index,
            workers,
            mut io,
            counters,
            rx_pool,
            core,
            rings,
            per_worker_sockets,
            shutdown,
            start,
            sink,
        } = ctx;
        let mut rng = StdRng::from_entropy();
        let me = index as u32;
        let shards = core.shard_count();
        // This worker polls the timers of shards it has claimed, plus —
        // so flows never starve before their first datagram arrives —
        // unclaimed shards that fall to it by modulo.
        let polls = |core: &EngineCore, s: usize| match core.shard_owner(s) {
            Some(w) => w == me,
            None => s % workers == index,
        };
        let mut rx: Vec<RxDatagram> = Vec::with_capacity(MAX_BURST);
        let mut handed: Vec<RxDatagram> = Vec::with_capacity(MAX_BURST);
        let mut read_timeout = RECV_TIMEOUT;
        loop {
            if shutdown.load(Ordering::Relaxed) {
                return;
            }
            let now = Timestamp::from_micros(start.elapsed().as_micros() as u64);
            // Drain the handoff rings first: datagrams other workers
            // received for shards this worker owns. Bounded at one
            // burst so timers and the socket still get their turn.
            handed.clear();
            'drain: for src in &rings[index] {
                while let Some(d) = src.pop() {
                    handed.push(d);
                    if handed.len() >= MAX_BURST {
                        break 'drain;
                    }
                }
            }
            let drained_full = handed.len() >= MAX_BURST;
            if !handed.is_empty() {
                counters
                    .handoff_in
                    .fetch_add(handed.len() as u64, Ordering::Relaxed);
                let batch: Vec<(SocketAddr, &[u8])> =
                    handed.iter().map(|d| (d.from, &d.frame[..])).collect();
                let out = core.handle_datagrams(&batch, now, &mut rng);
                drop(batch);
                dispatch(&io, &out, sink.as_deref());
            }
            // Drive this worker's shards' timers, then block on the
            // socket until the next deadline-ish tick.
            let mut out = EngineOutput::default();
            for s in 0..shards {
                if polls(&core, s) {
                    core.poll_shard(s, now, &mut rng, &mut out);
                }
            }
            dispatch(&io, &out, sink.as_deref());
            if drained_full {
                // The rings still carry backlog; skip the blocking
                // receive and keep draining at full speed.
                continue;
            }
            let wait = (0..shards)
                .filter(|&s| polls(&core, s))
                .filter_map(|s| core.shard_next_deadline(s))
                .min()
                .map_or(RECV_TIMEOUT, |d| Duration::from_micros(d.since(now)))
                .clamp(MIN_READ_TIMEOUT, RECV_TIMEOUT);
            // Quantize to whole milliseconds so an unchanged deadline
            // horizon costs no setsockopt on the hot path.
            let wait = Duration::from_millis((wait.as_micros() as u64).div_ceil(1000).max(1));
            if wait != read_timeout {
                let _ = io.socket().set_read_timeout(Some(wait));
                read_timeout = wait;
            }
            rx.clear();
            match io.recv_batch(&rx_pool, &mut rx, MAX_BURST) {
                Ok(n) if n > 0 => {}
                _ => continue, // timeout (re-check shutdown) or transient error
            }
            let now = Timestamp::from_micros(start.elapsed().as_micros() as u64);
            let mut local: Vec<RxDatagram> = Vec::with_capacity(rx.len());
            for d in rx.drain(..) {
                if d.frame.starts_with(STATS_MAGIC) {
                    let _ = io.socket().send_to(core.stats_json().as_bytes(), d.from);
                    continue;
                }
                if let Some(nonce) = mesh::parse_ping(&d.frame) {
                    // Mesh liveness probe: echoed inline like stats, so
                    // a peer's health check measures this worker's real
                    // service latency, not a side channel's.
                    let _ = io.socket().send_to(&mesh::encode_pong(nonce), d.from);
                    continue;
                }
                if let Some(inner) = mesh::parse_replica(&d.frame) {
                    // Handshake replica from an upstream relay toward a
                    // standby: learn the association, emit nothing.
                    core.absorb_replica(d.from, inner, now, &mut rng);
                    continue;
                }
                if workers == 1 || !per_worker_sockets {
                    // Sole worker, or a shared socket (no kernel flow
                    // affinity to preserve): process in place under the
                    // shard locks; shards stay unclaimed and timers
                    // stay on modulo polling.
                    local.push(d);
                    continue;
                }
                // First receiver wins: claim the shard, or learn who
                // owns it and hand the datagram over lock-free.
                let shard = core.shard_of_source(d.from);
                let owner = core.claim_shard(shard, me);
                if owner == me {
                    local.push(d);
                } else {
                    match rings[owner as usize][index].push(d) {
                        Ok(()) => {
                            counters.handoff_out.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(d) => {
                            // Ring full: process it here under the shard
                            // lock (contended path) rather than drop it —
                            // the owner is behind, but the datagram must
                            // not be lost.
                            counters.handoff_overflow.fetch_add(1, Ordering::Relaxed);
                            local.push(d);
                        }
                    }
                }
            }
            if local.is_empty() {
                continue;
            }
            // The whole burst goes to the engine in one call, so its
            // relay path can batch-verify and the responses leave in
            // one gathered send below.
            let batch: Vec<(SocketAddr, &[u8])> =
                local.iter().map(|d| (d.from, &d.frame[..])).collect();
            let out = core.handle_datagrams(&batch, now, &mut rng);
            drop(batch);
            dispatch(&io, &out, sink.as_deref());
        }
    })
}

fn dispatch(io: &UdpIo, out: &EngineOutput, sink: Option<&DeliverySink>) {
    let _ = io.send_batch(&out.datagrams);
    if let Some(sink) = sink {
        if !out.delivered.is_empty() || !out.extracted.is_empty() || !out.completed.is_empty() {
            sink(out);
        }
    }
}

/// Query a running engine's stats over UDP (the `engine stats` CLI).
pub fn query_stats(addr: SocketAddr, timeout: Duration) -> io::Result<String> {
    let socket = UdpSocket::bind(match addr {
        SocketAddr::V4(_) => "0.0.0.0:0",
        SocketAddr::V6(_) => "[::]:0",
    })?;
    socket.set_read_timeout(Some(timeout))?;
    socket.send_to(STATS_MAGIC, addr)?;
    let mut buf = vec![0u8; MAX_DATAGRAM];
    let (n, _) = socket.recv_from(&mut buf)?;
    Ok(String::from_utf8_lossy(&buf[..n]).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_core::{Config, Mode};
    use alpha_crypto::Algorithm;
    use alpha_engine::EngineConfig;

    fn engine_cfg() -> EngineConfig {
        EngineConfig::new(Config::new(Algorithm::Sha1).with_chain_len(64))
    }

    /// A single-flow client driven by its own `EngineCore` over a raw
    /// socket: handshake, send one message, wait for the exchange to
    /// finish.
    fn run_client(server_addr: SocketAddr, assoc_id: u64, payload: &[u8]) {
        let core = EngineCore::new(engine_cfg());
        let socket = UdpSocket::bind("127.0.0.1:0").expect("client bind");
        socket
            .set_read_timeout(Some(Duration::from_millis(5)))
            .unwrap();
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(assoc_id);
        let now = |s: Instant| Timestamp::from_micros(s.elapsed().as_micros() as u64);

        let (key, out) = core.connect(server_addr, assoc_id, now(start), &mut rng);
        for (dst, bytes) in &out.datagrams {
            socket.send_to(bytes, *dst).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut buf = vec![0u8; MAX_DATAGRAM];
        let mut connected = false;
        let mut sent = false;
        while Instant::now() < deadline {
            let mut out = core.poll(now(start), &mut rng);
            if let Ok((n, from)) = socket.recv_from(&mut buf) {
                out.absorb(core.handle_datagram(from, &buf[..n], now(start), &mut rng));
            }
            for (dst, bytes) in &out.datagrams {
                socket.send_to(bytes, *dst).unwrap();
            }
            connected |= out.completed.contains(&key);
            if connected && !sent {
                let out = core
                    .sign_batch(key, &[payload], Mode::Base, now(start))
                    .expect("sign");
                for (dst, bytes) in &out.datagrams {
                    socket.send_to(bytes, *dst).unwrap();
                }
                sent = true;
            }
            if sent && core.flow_is_idle(key) {
                return;
            }
        }
        panic!("client {assoc_id} did not finish its exchange in time");
    }

    #[test]
    fn serve_multiple_clients_and_answer_stats() {
        let server = Engine::bind("127.0.0.1:0", EngineCore::new(engine_cfg()), 2).expect("bind");
        let server_addr = server.local_addr().unwrap();

        let mut handles = Vec::new();
        for i in 0..4u64 {
            handles.push(std::thread::spawn(move || {
                run_client(server_addr, 100 + i, format!("client {i}").as_bytes());
            }));
        }
        for h in handles {
            h.join().expect("client");
        }
        // A client is done once its own signer goes idle, which can be a
        // moment before the server worker has processed the final S2 —
        // poll the live stats endpoint until the counters converge.
        let deadline = Instant::now() + Duration::from_secs(10);
        let v = loop {
            let stats = query_stats(server_addr, Duration::from_secs(5)).expect("stats");
            let v: serde::Value = serde_json::from_str(&stats).expect("stats json");
            let verified = v
                .get("metrics")
                .and_then(|m| m.get("s2_verified"))
                .and_then(serde::Value::as_u64);
            if verified == Some(4) || Instant::now() >= deadline {
                break v;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        let m = v.get("metrics").unwrap();
        assert_eq!(m.get("handshakes").unwrap().as_u64(), Some(4));
        assert_eq!(m.get("s2_verified").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("flows").unwrap().as_u64(), Some(4));
        // The front end stamped its backend and every worker's I/O
        // counters into the same snapshot.
        let backend = v.get("udp_backend").and_then(serde::Value::as_str);
        assert_eq!(backend, Some(crate::io::active().name()));
        let io = m.get("io").expect("io metrics");
        assert!(
            io.get("datagrams_in")
                .and_then(serde::Value::as_u64)
                .unwrap_or(0)
                > 0,
            "workers counted received datagrams"
        );
        server.shutdown();
    }

    #[test]
    fn answers_mesh_probes_and_absorbs_replicas() {
        let server = Engine::bind("127.0.0.1:0", EngineCore::new(engine_cfg()), 1).expect("bind");
        let addr = server.local_addr().unwrap();
        let sock = UdpSocket::bind("127.0.0.1:0").expect("probe socket");
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Probe round-trip: the worker echoes the nonce inline.
        sock.send_to(&mesh::encode_ping(0xDEAD_BEEF), addr).unwrap();
        let mut buf = [0u8; 64];
        let (n, from) = sock.recv_from(&mut buf).expect("pong");
        assert_eq!(from, addr);
        assert_eq!(mesh::parse_pong(&buf[..n]), Some(0xDEAD_BEEF));
        // A replica datagram is absorbed silently (learn-only).
        sock.send_to(&mesh::encode_replica(b"not a handshake"), addr)
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server
            .core()
            .metrics()
            .mesh
            .replicas_absorbed
            .load(Ordering::Relaxed)
            == 0
        {
            assert!(Instant::now() < deadline, "replica never absorbed");
            std::thread::sleep(Duration::from_millis(5));
        }
        sock.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        assert!(
            sock.recv_from(&mut buf).is_err(),
            "replicas must not generate a response"
        );
        server.shutdown();
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn reuseport_group_binds_and_serves() {
        // Force per-worker sockets regardless of the session backend.
        let group = crate::mmsg::bind_reuseport_group("127.0.0.1:0".parse().unwrap(), 4)
            .expect("reuseport group");
        let addr = group[0].local_addr().unwrap();
        for s in &group {
            assert_eq!(s.local_addr().unwrap(), addr, "one address, many sockets");
        }
        drop(group);
        // And the engine front end picks them up when the backend is mmsg.
        if crate::io::active() == UdpBackend::Mmsg {
            let engine =
                Engine::bind("127.0.0.1:0", EngineCore::new(engine_cfg()), 4).expect("bind");
            assert!(engine.per_worker_sockets());
            engine.shutdown();
        }
    }
}
