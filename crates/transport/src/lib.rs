#![warn(missing_docs)]

//! UDP transport for ALPHA: drives the sans-io protocol core over real
//! sockets.
//!
//! The simulator (`alpha-sim`) exercises the protocol under controlled
//! loss and timing; this crate shows the same state machines working over
//! an actual OS network stack:
//!
//! - [`UdpHost`] — an end host: blocking handshake, batch send with
//!   retransmission driven by the core's timers, and a serve loop for the
//!   receiving side.
//! - [`UdpRelay`] — an on-path middlebox that forwards datagrams between
//!   two hosts while running [`alpha_core::Relay`] verification, dropping
//!   forged or unsolicited traffic before it wastes downstream bandwidth.
//!
//! Blocking sockets with short read timeouts keep the implementation
//! dependency-light (no async runtime is on the approved crate list); the
//! sans-io core means the protocol logic is byte-for-byte the same one
//! the simulator and benches run.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::{Duration, Instant};

use alpha_core::bootstrap::{self, AuthRequirement};
use alpha_core::{Association, Config, Mode, Relay, RelayConfig, RelayDecision, Timestamp};
use alpha_pk::{PublicKey, Signer};
use alpha_wire::Packet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Transport errors.
#[derive(Debug)]
pub enum TransportError {
    /// Socket-level failure.
    Io(io::Error),
    /// The protocol rejected a packet or operation.
    Protocol(alpha_core::ProtocolError),
    /// The operation did not complete before its deadline.
    Timeout,
}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> TransportError {
        TransportError::Io(e)
    }
}

impl From<alpha_core::ProtocolError> for TransportError {
    fn from(e: alpha_core::ProtocolError) -> TransportError {
        TransportError::Protocol(e)
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Protocol(e) => write!(f, "protocol error: {e}"),
            TransportError::Timeout => write!(f, "operation timed out"),
        }
    }
}

impl std::error::Error for TransportError {}

const READ_TIMEOUT: Duration = Duration::from_millis(20);
const MAX_DATAGRAM: usize = 65_536;

/// An ALPHA end host over UDP.
pub struct UdpHost {
    socket: UdpSocket,
    peer: SocketAddr,
    assoc: Association,
    start: Instant,
    rng: StdRng,
    peer_key: Option<PublicKey>,
}

/// How a [`UdpHost`] authenticates its handshake (§3.4).
#[derive(Default)]
pub struct HandshakeAuth<'a> {
    /// Sign our half of the handshake with this identity.
    pub identity: Option<&'a dyn Signer>,
    /// Demand a valid signature from the peer (trust-on-first-use; the
    /// verified key is surfaced via [`UdpHost::peer_key`]).
    pub require_peer: bool,
}

impl UdpHost {
    /// Initiate: bind `bind`, handshake with `peer`, block until HS2 (or
    /// `timeout`). Unprotected bootstrap; see [`UdpHost::connect_with`].
    pub fn connect<A: ToSocketAddrs, B: ToSocketAddrs>(
        cfg: Config,
        assoc_id: u64,
        bind: A,
        peer: B,
        timeout: Duration,
    ) -> Result<UdpHost, TransportError> {
        Self::connect_with(cfg, assoc_id, bind, peer, timeout, HandshakeAuth::default())
    }

    /// [`UdpHost::connect`] with optional protected bootstrapping.
    pub fn connect_with<A: ToSocketAddrs, B: ToSocketAddrs>(
        cfg: Config,
        assoc_id: u64,
        bind: A,
        peer: B,
        timeout: Duration,
        auth: HandshakeAuth<'_>,
    ) -> Result<UdpHost, TransportError> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(READ_TIMEOUT))?;
        let peer = peer
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no peer addr"))?;
        let mut rng = StdRng::from_entropy();
        let (hs, init_pkt) = bootstrap::initiate(cfg, assoc_id, auth.identity, &mut rng);
        let require = if auth.require_peer {
            AuthRequirement::AnyKey
        } else {
            AuthRequirement::None
        };
        let deadline = Instant::now() + timeout;
        let init_bytes = init_pkt.emit();
        socket.send_to(&init_bytes, peer)?;
        let mut buf = vec![0u8; MAX_DATAGRAM];
        let mut last_resend = Instant::now();
        loop {
            if Instant::now() > deadline {
                return Err(TransportError::Timeout);
            }
            if last_resend.elapsed() > Duration::from_millis(200) {
                socket.send_to(&init_bytes, peer)?;
                last_resend = Instant::now();
            }
            let Ok((n, _from)) = socket.recv_from(&mut buf) else {
                continue;
            };
            let Ok(pkt) = Packet::parse(&buf[..n]) else {
                continue;
            };
            match hs.complete(&pkt, require) {
                Ok((assoc, peer_key)) => {
                    return Ok(UdpHost {
                        socket,
                        peer,
                        assoc,
                        start: Instant::now(),
                        rng,
                        peer_key,
                    });
                }
                Err(e) => return Err(TransportError::Protocol(e)),
            }
        }
    }

    /// Accept: bind `bind`, wait for an HS1 (up to `timeout`), reply.
    /// Unprotected bootstrap; see [`UdpHost::accept_with`].
    pub fn accept<A: ToSocketAddrs>(
        cfg: Config,
        bind: A,
        timeout: Duration,
    ) -> Result<UdpHost, TransportError> {
        Self::accept_with(cfg, bind, timeout, HandshakeAuth::default())
    }

    /// [`UdpHost::accept`] with optional protected bootstrapping.
    pub fn accept_with<A: ToSocketAddrs>(
        cfg: Config,
        bind: A,
        timeout: Duration,
        auth: HandshakeAuth<'_>,
    ) -> Result<UdpHost, TransportError> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(READ_TIMEOUT))?;
        let require = if auth.require_peer {
            AuthRequirement::AnyKey
        } else {
            AuthRequirement::None
        };
        let deadline = Instant::now() + timeout;
        let mut buf = vec![0u8; MAX_DATAGRAM];
        let mut rng = StdRng::from_entropy();
        loop {
            if Instant::now() > deadline {
                return Err(TransportError::Timeout);
            }
            let Ok((n, from)) = socket.recv_from(&mut buf) else {
                continue;
            };
            let Ok(pkt) = Packet::parse(&buf[..n]) else {
                continue;
            };
            match bootstrap::respond(cfg, &pkt, auth.identity, require, &mut rng) {
                Ok((assoc, reply, peer_key)) => {
                    socket.send_to(&reply.emit(), from)?;
                    return Ok(UdpHost {
                        socket,
                        peer: from,
                        assoc,
                        start: Instant::now(),
                        rng,
                        peer_key,
                    });
                }
                Err(_) => continue, // stray or unauthorized handshake
            }
        }
    }

    /// The peer's verified public key, when the handshake was protected.
    #[must_use]
    pub fn peer_key(&self) -> Option<&PublicKey> {
        self.peer_key.as_ref()
    }

    /// Local address (useful with port 0 binds).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Protocol-time now.
    fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// Access the association (e.g. for buffer statistics).
    #[must_use]
    pub fn association(&self) -> &Association {
        &self.assoc
    }

    /// Send one batch through a full signature exchange, driving
    /// retransmissions until the exchange completes, is abandoned, or
    /// `timeout` passes. Returns payloads that were *delivered to us* by
    /// the peer while we waited (full duplex).
    pub fn send_batch(
        &mut self,
        messages: &[&[u8]],
        mode: Mode,
        timeout: Duration,
    ) -> Result<Vec<Vec<u8>>, TransportError> {
        let now = self.now();
        let s1 = self.assoc.sign_batch(messages, mode, now)?;
        self.socket.send_to(&s1.emit(), self.peer)?;
        let deadline = Instant::now() + timeout;
        let mut inbound = Vec::new();
        let mut buf = vec![0u8; MAX_DATAGRAM];
        while !self.assoc.signer().is_idle() {
            if Instant::now() > deadline {
                return Err(TransportError::Timeout);
            }
            // Timers.
            let out = self.assoc.poll(self.now());
            self.send_packets(&out.packets)?;
            // Network (frames may be piggyback bundles).
            let Ok((n, _)) = self.socket.recv_from(&mut buf) else {
                continue;
            };
            let Ok(pkts) = alpha_wire::bundle::parse(&buf[..n]) else {
                continue;
            };
            for pkt in pkts {
                let now = self.now();
                if let Ok(resp) = self.assoc.handle(&pkt, now, &mut self.rng) {
                    self.send_packets(&resp.packets)?;
                    inbound.extend(resp.deliveries.into_iter().map(|(_, p)| p));
                }
            }
        }
        Ok(inbound)
    }

    /// Transmit packets, piggybacking multi-packet responses into bundle
    /// frames (§3.2.1) chunked at the wire limit.
    fn send_packets(&self, packets: &[Packet]) -> Result<(), TransportError> {
        match packets {
            [] => {}
            [one] => {
                self.socket.send_to(&one.emit(), self.peer)?;
            }
            many => {
                for chunk in many.chunks(alpha_wire::limits::MAX_BUNDLE) {
                    self.socket.send_to(&alpha_wire::bundle::emit(chunk), self.peer)?;
                }
            }
        }
        Ok(())
    }

    /// Serve the receiving side for `duration`, answering protocol packets
    /// and collecting verified deliveries.
    pub fn serve(&mut self, duration: Duration) -> Result<Vec<Vec<u8>>, TransportError> {
        let deadline = Instant::now() + duration;
        let mut delivered = Vec::new();
        let mut buf = vec![0u8; MAX_DATAGRAM];
        while Instant::now() < deadline {
            let out = self.assoc.poll(self.now());
            self.send_packets(&out.packets)?;
            let Ok((n, _)) = self.socket.recv_from(&mut buf) else {
                continue;
            };
            let Ok(pkts) = alpha_wire::bundle::parse(&buf[..n]) else {
                continue;
            };
            for pkt in pkts {
                let now = self.now();
                if let Ok(resp) = self.assoc.handle(&pkt, now, &mut self.rng) {
                    self.send_packets(&resp.packets)?;
                    delivered.extend(resp.deliveries.into_iter().map(|(_, p)| p));
                }
            }
        }
        Ok(delivered)
    }
}

/// An on-path UDP middlebox: forwards datagrams between two sides while
/// verifying them with an [`alpha_core::Relay`].
pub struct UdpRelay {
    socket: UdpSocket,
    left: SocketAddr,
    right: SocketAddr,
    relay: Relay,
    start: Instant,
    /// Verified payloads extracted in transit.
    pub extracted: Vec<Vec<u8>>,
    /// Packets dropped, by reason.
    pub dropped: u64,
    /// Packets forwarded.
    pub forwarded: u64,
}

impl UdpRelay {
    /// Bind `bind`; traffic from `left` forwards to `right` and back.
    pub fn new<A: ToSocketAddrs>(
        bind: A,
        left: SocketAddr,
        right: SocketAddr,
        cfg: RelayConfig,
    ) -> Result<UdpRelay, TransportError> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(READ_TIMEOUT))?;
        Ok(UdpRelay {
            socket,
            left,
            right,
            relay: Relay::new(cfg),
            start: Instant::now(),
            extracted: Vec::new(),
            dropped: 0,
            forwarded: 0,
        })
    }

    /// Local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Forward and verify for `duration`.
    pub fn run_for(&mut self, duration: Duration) -> Result<(), TransportError> {
        let deadline = Instant::now() + duration;
        let mut buf = vec![0u8; MAX_DATAGRAM];
        while Instant::now() < deadline {
            let Ok((n, from)) = self.socket.recv_from(&mut buf) else {
                continue;
            };
            let dst = if from == self.left { self.right } else { self.left };
            let Ok(pkts) = alpha_wire::bundle::parse(&buf[..n]) else {
                self.dropped += 1;
                continue;
            };
            let now = Timestamp::from_micros(self.start.elapsed().as_micros() as u64);
            let mut pass = Vec::with_capacity(pkts.len());
            for pkt in pkts {
                let (decision, events) = self.relay.observe(&pkt, now);
                for ev in events {
                    if let alpha_core::RelayEvent::VerifiedPayload { payload, .. } = ev {
                        self.extracted.push(payload);
                    }
                }
                match decision {
                    RelayDecision::Forward => pass.push(pkt),
                    RelayDecision::Drop(_) => self.dropped += 1,
                }
            }
            if !pass.is_empty() {
                self.forwarded += 1;
                let bytes = if pass.len() == 1 {
                    pass[0].emit()
                } else {
                    alpha_wire::bundle::emit(&pass)
                };
                self.socket.send_to(&bytes, dst)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_crypto::Algorithm;

    fn cfg() -> Config {
        Config::new(Algorithm::Sha1).with_chain_len(64)
    }

    #[test]
    fn udp_roundtrip_direct() {
        let c = cfg();
        let (tx, rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let socket_probe = UdpSocket::bind("127.0.0.1:0").unwrap();
            let addr = socket_probe.local_addr().unwrap();
            drop(socket_probe);
            tx.send(addr).unwrap();
            let mut host =
                UdpHost::accept(c, addr, Duration::from_secs(10)).expect("accept");
            host.serve(Duration::from_millis(1500)).expect("serve")
        });
        let addr = rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let mut client = UdpHost::connect(c, 7, "127.0.0.1:0", addr, Duration::from_secs(10))
            .expect("connect");
        client
            .send_batch(&[b"over real udp"], Mode::Base, Duration::from_secs(5))
            .expect("send");
        let delivered = server.join().expect("server thread");
        assert_eq!(delivered, vec![b"over real udp".to_vec()]);
    }

    #[test]
    fn udp_batch_through_relay() {
        let c = cfg();
        // Server.
        let (tx, rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
            let addr = probe.local_addr().unwrap();
            drop(probe);
            tx.send(addr).unwrap();
            let mut host = UdpHost::accept(c, addr, Duration::from_secs(10)).expect("accept");
            host.serve(Duration::from_millis(2500)).expect("serve")
        });
        let server_addr = rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));

        // Client binds first so the relay knows both sides.
        let client_sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let client_addr = client_sock.local_addr().unwrap();
        drop(client_sock);

        let (rtx, rrx) = std::sync::mpsc::channel();
        let relay_thread = std::thread::spawn(move || {
            let mut relay = UdpRelay::new(
                "127.0.0.1:0",
                client_addr,
                server_addr,
                RelayConfig::default(),
            )
            .expect("relay");
            rtx.send(relay.local_addr().unwrap()).unwrap();
            relay.run_for(Duration::from_millis(2500)).expect("relay run");
            (relay.forwarded, relay.dropped, relay.extracted)
        });
        let relay_addr = rrx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));

        let mut client = UdpHost::connect(c, 7, client_addr, relay_addr, Duration::from_secs(10))
            .expect("connect");
        client
            .send_batch(
                &[b"first".as_slice(), b"second".as_slice(), b"third".as_slice()],
                Mode::Cumulative,
                Duration::from_secs(5),
            )
            .expect("send");
        let delivered = server.join().expect("server");
        let (forwarded, _dropped, extracted) = relay_thread.join().expect("relay");
        assert_eq!(delivered.len(), 3);
        assert!(forwarded >= 5, "handshake + exchange forwarded");
        assert_eq!(extracted.len(), 3, "relay verified every payload");
    }
}

#[cfg(test)]
mod protected_tests {
    use super::*;
    use alpha_crypto::Algorithm;

    #[test]
    fn protected_udp_handshake_verifies_identities() {
        let cfg = Config::new(Algorithm::Sha1).with_chain_len(64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let server_key = alpha_pk::ecdsa::EcdsaPrivateKey::generate(&mut rng);
        let client_key = alpha_pk::ecdsa::EcdsaPrivateKey::generate(&mut rng);

        let (tx, rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
            let addr = probe.local_addr().unwrap();
            drop(probe);
            tx.send(addr).unwrap();
            let auth = HandshakeAuth { identity: Some(&server_key), require_peer: true };
            let mut host = UdpHost::accept_with(cfg, addr, Duration::from_secs(10), auth)
                .expect("accept");
            assert!(host.peer_key().is_some(), "client identity verified");
            host.serve(Duration::from_millis(1200)).expect("serve")
        });
        let addr = rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let auth = HandshakeAuth { identity: Some(&client_key), require_peer: true };
        let mut client = UdpHost::connect_with(
            cfg,
            5,
            "127.0.0.1:0",
            addr,
            Duration::from_secs(10),
            auth,
        )
        .expect("connect");
        assert!(client.peer_key().is_some(), "server identity verified");
        client
            .send_batch(&[b"authenticated hello"], Mode::Base, Duration::from_secs(5))
            .expect("send");
        let delivered = server.join().expect("server");
        assert_eq!(delivered, vec![b"authenticated hello".to_vec()]);
    }

    #[test]
    fn unauthenticated_client_rejected_when_auth_required() {
        let cfg = Config::new(Algorithm::Sha1).with_chain_len(64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let server_key = alpha_pk::ecdsa::EcdsaPrivateKey::generate(&mut rng);
        let (tx, rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
            let addr = probe.local_addr().unwrap();
            drop(probe);
            tx.send(addr).unwrap();
            let auth = HandshakeAuth { identity: Some(&server_key), require_peer: true };
            // The anonymous client below never completes a handshake, so
            // accept times out.
            UdpHost::accept_with(cfg, addr, Duration::from_millis(1500), auth).is_ok()
        });
        let addr = rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let res = UdpHost::connect(cfg, 5, "127.0.0.1:0", addr, Duration::from_millis(1200));
        assert!(res.is_err(), "anonymous client cannot associate");
        assert!(!server.join().unwrap(), "server refused the handshake");
    }
}
