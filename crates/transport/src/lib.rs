#![warn(missing_docs)]

//! UDP transport for ALPHA: drives the sans-io protocol core over real
//! sockets.
//!
//! The simulator (`alpha-sim`) exercises the protocol under controlled
//! loss and timing; this crate shows the same state machines working over
//! an actual OS network stack:
//!
//! - [`UdpHost`] — an end host: blocking handshake with jittered
//!   exponential-backoff resends, batch send with retransmission driven
//!   by the engine's timer wheel, and a serve loop for the receiving
//!   side.
//! - [`UdpRelay`] — an on-path middlebox that forwards datagrams between
//!   two hosts while running [`alpha_core::Relay`] verification, dropping
//!   forged or unsolicited traffic before it wastes downstream bandwidth.
//!
//! Both endpoints are thin shells around [`alpha_engine::EngineCore`]:
//! the transport owns the socket and the clock, the engine owns flow
//! state, timers, admission and metrics. A multi-flow deployment uses
//! [`alpha_engine::Engine`] (or `alpha engine serve`) directly; these
//! types keep the simple one-association API on the same machinery.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::{Duration, Instant};

use alpha_core::bootstrap::{self, AuthRequirement};
use alpha_core::{Association, Config, Mode, RelayConfig, Timestamp};
use alpha_engine::{Backoff, EngineConfig, EngineCore, EngineError, EngineOutput, FlowKey};
use alpha_pk::{PublicKey, Signer};
use alpha_wire::Packet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Transport errors.
#[derive(Debug)]
pub enum TransportError {
    /// Socket-level failure.
    Io(io::Error),
    /// The protocol rejected a packet or operation.
    Protocol(alpha_core::ProtocolError),
    /// The operation did not complete before its deadline. `attempts`
    /// counts the transmissions made (first try + resends), so callers
    /// can distinguish "peer unreachable despite retries" from "gave up
    /// early".
    Timeout {
        /// Transmissions attempted before the deadline passed.
        attempts: u32,
    },
}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> TransportError {
        TransportError::Io(e)
    }
}

impl From<alpha_core::ProtocolError> for TransportError {
    fn from(e: alpha_core::ProtocolError) -> TransportError {
        TransportError::Protocol(e)
    }
}

impl From<EngineError> for TransportError {
    fn from(e: EngineError) -> TransportError {
        match e {
            EngineError::Protocol(p) => TransportError::Protocol(p),
            other => TransportError::Io(io::Error::other(other.to_string())),
        }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Protocol(e) => write!(f, "protocol error: {e}"),
            TransportError::Timeout { attempts } => {
                write!(f, "operation timed out after {attempts} attempt(s)")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Floor for the dynamic read timeout: short enough to notice deadline
/// expiry promptly, long enough not to spin.
const MIN_READ_TIMEOUT: Duration = Duration::from_millis(1);
/// Ceiling for the dynamic read timeout, used when no timer is armed.
const MAX_READ_TIMEOUT: Duration = Duration::from_millis(50);
const MAX_DATAGRAM: usize = 65_536;

/// An ALPHA end host over UDP: one association, served by an engine.
pub struct UdpHost {
    socket: UdpSocket,
    core: EngineCore,
    key: FlowKey,
    start: Instant,
    rng: StdRng,
    peer_key: Option<PublicKey>,
}

/// How a [`UdpHost`] authenticates its handshake (§3.4).
#[derive(Default)]
pub struct HandshakeAuth<'a> {
    /// Sign our half of the handshake with this identity.
    pub identity: Option<&'a dyn Signer>,
    /// Demand a valid signature from the peer (trust-on-first-use; the
    /// verified key is surfaced via [`UdpHost::peer_key`]).
    pub require_peer: bool,
}

fn single_flow_engine(cfg: Config) -> EngineCore {
    // A UdpHost serves exactly the association it handshook; stray HS1s
    // from other parties are dropped, as the pre-engine transport did.
    let mut ecfg = EngineConfig::new(cfg);
    ecfg.accept_handshakes = false;
    EngineCore::new(ecfg)
}

impl UdpHost {
    /// Initiate: bind `bind`, handshake with `peer`, block until HS2 (or
    /// `timeout`). Unprotected bootstrap; see [`UdpHost::connect_with`].
    pub fn connect<A: ToSocketAddrs, B: ToSocketAddrs>(
        cfg: Config,
        assoc_id: u64,
        bind: A,
        peer: B,
        timeout: Duration,
    ) -> Result<UdpHost, TransportError> {
        Self::connect_with(cfg, assoc_id, bind, peer, timeout, HandshakeAuth::default())
    }

    /// [`UdpHost::connect`] with optional protected bootstrapping.
    ///
    /// The HS1 is resent on a full-jitter exponential backoff schedule
    /// (~100 ms doubling to 1.6 s) instead of a fixed interval, so a
    /// thundering herd of connecting hosts decorrelates; on timeout the
    /// attempt count is reported in [`TransportError::Timeout`].
    pub fn connect_with<A: ToSocketAddrs, B: ToSocketAddrs>(
        cfg: Config,
        assoc_id: u64,
        bind: A,
        peer: B,
        timeout: Duration,
        auth: HandshakeAuth<'_>,
    ) -> Result<UdpHost, TransportError> {
        let socket = UdpSocket::bind(bind)?;
        let peer = peer
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no peer addr"))?;
        let mut rng = StdRng::from_entropy();
        let (hs, init_pkt) = bootstrap::initiate(cfg, assoc_id, auth.identity, &mut rng);
        let require = if auth.require_peer {
            AuthRequirement::AnyKey
        } else {
            AuthRequirement::None
        };
        let deadline = Instant::now() + timeout;
        let init_bytes = init_pkt.emit();
        let mut backoff = Backoff::handshake();
        socket.send_to(&init_bytes, peer)?;
        let mut next_resend = Instant::now() + backoff.next_delay(&mut rng);
        let mut buf = vec![0u8; MAX_DATAGRAM];
        loop {
            let now = Instant::now();
            if now > deadline {
                return Err(TransportError::Timeout {
                    attempts: backoff.attempts(),
                });
            }
            if now >= next_resend {
                socket.send_to(&init_bytes, peer)?;
                next_resend = now + backoff.next_delay(&mut rng);
            }
            let wait = next_resend
                .saturating_duration_since(now)
                .clamp(MIN_READ_TIMEOUT, MAX_READ_TIMEOUT);
            socket.set_read_timeout(Some(wait))?;
            let Ok((n, _from)) = socket.recv_from(&mut buf) else {
                continue;
            };
            let Ok(pkt) = Packet::parse(&buf[..n]) else {
                continue;
            };
            match hs.complete(&pkt, require) {
                Ok((assoc, peer_key)) => {
                    return Ok(UdpHost::from_parts(socket, peer, assoc, rng, peer_key));
                }
                Err(e) => return Err(TransportError::Protocol(e)),
            }
        }
    }

    /// Accept: bind `bind`, wait for an HS1 (up to `timeout`), reply.
    /// Unprotected bootstrap; see [`UdpHost::accept_with`].
    pub fn accept<A: ToSocketAddrs>(
        cfg: Config,
        bind: A,
        timeout: Duration,
    ) -> Result<UdpHost, TransportError> {
        Self::accept_with(cfg, bind, timeout, HandshakeAuth::default())
    }

    /// [`UdpHost::accept`] with optional protected bootstrapping.
    pub fn accept_with<A: ToSocketAddrs>(
        cfg: Config,
        bind: A,
        timeout: Duration,
        auth: HandshakeAuth<'_>,
    ) -> Result<UdpHost, TransportError> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(MAX_READ_TIMEOUT))?;
        let require = if auth.require_peer {
            AuthRequirement::AnyKey
        } else {
            AuthRequirement::None
        };
        let deadline = Instant::now() + timeout;
        let mut buf = vec![0u8; MAX_DATAGRAM];
        let mut rng = StdRng::from_entropy();
        loop {
            if Instant::now() > deadline {
                // The acceptor never transmits before an HS1 arrives.
                return Err(TransportError::Timeout { attempts: 0 });
            }
            let Ok((n, from)) = socket.recv_from(&mut buf) else {
                continue;
            };
            let Ok(pkt) = Packet::parse(&buf[..n]) else {
                continue;
            };
            match bootstrap::respond(cfg, &pkt, auth.identity, require, &mut rng) {
                Ok((assoc, reply, peer_key)) => {
                    socket.send_to(&reply.emit(), from)?;
                    return Ok(UdpHost::from_parts(socket, from, assoc, rng, peer_key));
                }
                Err(_) => continue, // stray or unauthorized handshake
            }
        }
    }

    fn from_parts(
        socket: UdpSocket,
        peer: SocketAddr,
        assoc: Association,
        rng: StdRng,
        peer_key: Option<PublicKey>,
    ) -> UdpHost {
        let start = Instant::now();
        let core = single_flow_engine(*assoc.config());
        let key = core.add_host(peer, assoc, Timestamp::ZERO);
        UdpHost {
            socket,
            core,
            key,
            start,
            rng,
            peer_key,
        }
    }

    /// The peer's verified public key, when the handshake was protected.
    #[must_use]
    pub fn peer_key(&self) -> Option<&PublicKey> {
        self.peer_key.as_ref()
    }

    /// Local address (useful with port 0 binds).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Protocol-time now.
    fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// The engine core serving this host's association.
    #[must_use]
    pub fn engine(&self) -> &EngineCore {
        &self.core
    }

    /// Run `f` against the association (e.g. for buffer statistics).
    pub fn with_association<R>(&self, f: impl FnOnce(&mut Association) -> R) -> R {
        // Allowlist: the constructor registers this host flow and nothing
        // removes it while the handle is alive.
        self.core
            .with_association(self.key, f)
            .expect("host flow always present")
    }

    /// Block on the socket until the engine's next timer deadline (or
    /// the caps), then drain one datagram through the engine.
    fn pump_once(&mut self, inbound: &mut Vec<Vec<u8>>) -> Result<(), TransportError> {
        let wait = match self.core.next_deadline() {
            Some(t) => {
                Duration::from_micros(t.since(self.now())).clamp(MIN_READ_TIMEOUT, MAX_READ_TIMEOUT)
            }
            None => MAX_READ_TIMEOUT,
        };
        self.socket.set_read_timeout(Some(wait))?;
        let mut buf = [0u8; MAX_DATAGRAM];
        if let Ok((n, from)) = self.socket.recv_from(&mut buf) {
            let out = self
                .core
                .handle_datagram(from, &buf[..n], self.now(), &mut self.rng);
            self.flush(out, inbound)?;
        }
        let out = self.core.poll(self.now(), &mut self.rng);
        self.flush(out, inbound)?;
        Ok(())
    }

    fn flush(&self, out: EngineOutput, inbound: &mut Vec<Vec<u8>>) -> Result<(), TransportError> {
        for (dst, bytes) in &out.datagrams {
            self.socket.send_to(bytes, *dst)?;
        }
        inbound.extend(out.delivered.into_iter().map(|(_, _, p)| p));
        Ok(())
    }

    /// Send one batch through a full signature exchange, driving
    /// retransmissions until the exchange completes, is abandoned, or
    /// `timeout` passes. Returns payloads that were *delivered to us* by
    /// the peer while we waited (full duplex).
    pub fn send_batch(
        &mut self,
        messages: &[&[u8]],
        mode: Mode,
        timeout: Duration,
    ) -> Result<Vec<Vec<u8>>, TransportError> {
        let now = self.now();
        let out = self.core.sign_batch(self.key, messages, mode, now)?;
        let mut attempts = out.datagrams.len() as u32;
        let mut inbound = Vec::new();
        self.flush(out, &mut inbound)?;
        let deadline = Instant::now() + timeout;
        while !self.core.flow_is_idle(self.key) {
            if Instant::now() > deadline {
                return Err(TransportError::Timeout { attempts });
            }
            let sent_before = self
                .core
                .metrics()
                .packets_out
                .load(std::sync::atomic::Ordering::Relaxed);
            self.pump_once(&mut inbound)?;
            let sent_after = self
                .core
                .metrics()
                .packets_out
                .load(std::sync::atomic::Ordering::Relaxed);
            attempts += (sent_after - sent_before) as u32;
        }
        Ok(inbound)
    }

    /// Serve the receiving side for `duration`, answering protocol packets
    /// and collecting verified deliveries.
    pub fn serve(&mut self, duration: Duration) -> Result<Vec<Vec<u8>>, TransportError> {
        let deadline = Instant::now() + duration;
        let mut delivered = Vec::new();
        while Instant::now() < deadline {
            self.pump_once(&mut delivered)?;
        }
        Ok(delivered)
    }
}

/// An on-path UDP middlebox: forwards datagrams between two sides while
/// verifying them with a relay-role engine flow per association.
pub struct UdpRelay {
    socket: UdpSocket,
    core: EngineCore,
    start: Instant,
    /// Verified payloads extracted in transit.
    pub extracted: Vec<Vec<u8>>,
    /// Packets dropped, by any cause (verification, admission,
    /// backpressure, or unparseable frames).
    pub dropped: u64,
    /// Datagrams forwarded.
    pub forwarded: u64,
}

impl UdpRelay {
    /// Bind `bind`; traffic from `left` forwards to `right` and back.
    pub fn new<A: ToSocketAddrs>(
        bind: A,
        left: SocketAddr,
        right: SocketAddr,
        cfg: RelayConfig,
    ) -> Result<UdpRelay, TransportError> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(MAX_READ_TIMEOUT))?;
        // Relay-only engine: host config is irrelevant but required, and
        // unknown-flow HS1s must never stand up host state here.
        let mut ecfg = EngineConfig::new(Config::new(alpha_crypto::Algorithm::Sha1));
        ecfg.relay = cfg;
        ecfg.accept_handshakes = false;
        let core = EngineCore::new(ecfg);
        core.add_route(left, right);
        Ok(UdpRelay {
            socket,
            core,
            start: Instant::now(),
            extracted: Vec::new(),
            dropped: 0,
            forwarded: 0,
        })
    }

    /// Local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The relay's engine core (metrics, flow counts).
    #[must_use]
    pub fn engine(&self) -> &EngineCore {
        &self.core
    }

    /// Forward and verify for `duration`.
    pub fn run_for(&mut self, duration: Duration) -> Result<(), TransportError> {
        let deadline = Instant::now() + duration;
        let mut buf = vec![0u8; MAX_DATAGRAM];
        let mut rng = StdRng::from_entropy();
        while Instant::now() < deadline {
            let Ok((n, from)) = self.socket.recv_from(&mut buf) else {
                continue;
            };
            let now = Timestamp::from_micros(self.start.elapsed().as_micros() as u64);
            let out = self.core.handle_datagram(from, &buf[..n], now, &mut rng);
            for (dst, bytes) in &out.datagrams {
                self.socket.send_to(bytes, *dst)?;
            }
            self.forwarded += out.datagrams.len() as u64;
            self.extracted
                .extend(out.extracted.into_iter().map(|(_, p)| p));
            let m = self.core.metrics();
            use std::sync::atomic::Ordering::Relaxed;
            self.dropped = m.total_drops()
                + m.admission_drops.load(Relaxed)
                + m.backpressure_drops.load(Relaxed)
                + m.parse_errors.load(Relaxed);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_crypto::Algorithm;

    fn cfg() -> Config {
        Config::new(Algorithm::Sha1).with_chain_len(64)
    }

    #[test]
    fn udp_roundtrip_direct() {
        let c = cfg();
        let (tx, rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let socket_probe = UdpSocket::bind("127.0.0.1:0").unwrap();
            let addr = socket_probe.local_addr().unwrap();
            drop(socket_probe);
            tx.send(addr).unwrap();
            let mut host = UdpHost::accept(c, addr, Duration::from_secs(10)).expect("accept");
            host.serve(Duration::from_millis(1500)).expect("serve")
        });
        let addr = rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let mut client =
            UdpHost::connect(c, 7, "127.0.0.1:0", addr, Duration::from_secs(10)).expect("connect");
        client
            .send_batch(&[b"over real udp"], Mode::Base, Duration::from_secs(5))
            .expect("send");
        let delivered = server.join().expect("server thread");
        assert_eq!(delivered, vec![b"over real udp".to_vec()]);
    }

    #[test]
    fn udp_batch_through_relay() {
        let c = cfg();
        // Server.
        let (tx, rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
            let addr = probe.local_addr().unwrap();
            drop(probe);
            tx.send(addr).unwrap();
            let mut host = UdpHost::accept(c, addr, Duration::from_secs(10)).expect("accept");
            host.serve(Duration::from_millis(2500)).expect("serve")
        });
        let server_addr = rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));

        // Client binds first so the relay knows both sides.
        let client_sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let client_addr = client_sock.local_addr().unwrap();
        drop(client_sock);

        let (rtx, rrx) = std::sync::mpsc::channel();
        let relay_thread = std::thread::spawn(move || {
            let mut relay = UdpRelay::new(
                "127.0.0.1:0",
                client_addr,
                server_addr,
                RelayConfig::default(),
            )
            .expect("relay");
            rtx.send(relay.local_addr().unwrap()).unwrap();
            relay
                .run_for(Duration::from_millis(2500))
                .expect("relay run");
            (relay.forwarded, relay.dropped, relay.extracted)
        });
        let relay_addr = rrx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));

        let mut client = UdpHost::connect(c, 7, client_addr, relay_addr, Duration::from_secs(10))
            .expect("connect");
        client
            .send_batch(
                &[
                    b"first".as_slice(),
                    b"second".as_slice(),
                    b"third".as_slice(),
                ],
                Mode::Cumulative,
                Duration::from_secs(5),
            )
            .expect("send");
        let delivered = server.join().expect("server");
        let (forwarded, _dropped, extracted) = relay_thread.join().expect("relay");
        assert_eq!(delivered.len(), 3);
        assert!(forwarded >= 5, "handshake + exchange forwarded");
        assert_eq!(extracted.len(), 3, "relay verified every payload");
    }

    #[test]
    fn timeout_reports_attempts() {
        // Nobody listens on this socket: connect must retry with
        // backoff and report how often it tried.
        let victim = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = victim.local_addr().unwrap();
        let res = UdpHost::connect(cfg(), 9, "127.0.0.1:0", addr, Duration::from_millis(900));
        match res {
            Err(TransportError::Timeout { attempts }) => {
                assert!(
                    (2..=8).contains(&attempts),
                    "expected a few backoff attempts in 900 ms, got {attempts}"
                );
            }
            Err(other) => panic!("expected timeout, got {other}"),
            Ok(_) => panic!("expected timeout, connected to a mute socket"),
        }
    }
}

#[cfg(test)]
mod protected_tests {
    use super::*;
    use alpha_crypto::Algorithm;

    #[test]
    fn protected_udp_handshake_verifies_identities() {
        let cfg = Config::new(Algorithm::Sha1).with_chain_len(64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let server_key = alpha_pk::ecdsa::EcdsaPrivateKey::generate(&mut rng);
        let client_key = alpha_pk::ecdsa::EcdsaPrivateKey::generate(&mut rng);

        let (tx, rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
            let addr = probe.local_addr().unwrap();
            drop(probe);
            tx.send(addr).unwrap();
            let auth = HandshakeAuth {
                identity: Some(&server_key),
                require_peer: true,
            };
            let mut host =
                UdpHost::accept_with(cfg, addr, Duration::from_secs(10), auth).expect("accept");
            assert!(host.peer_key().is_some(), "client identity verified");
            host.serve(Duration::from_millis(1200)).expect("serve")
        });
        let addr = rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let auth = HandshakeAuth {
            identity: Some(&client_key),
            require_peer: true,
        };
        let mut client =
            UdpHost::connect_with(cfg, 5, "127.0.0.1:0", addr, Duration::from_secs(10), auth)
                .expect("connect");
        assert!(client.peer_key().is_some(), "server identity verified");
        client
            .send_batch(
                &[b"authenticated hello"],
                Mode::Base,
                Duration::from_secs(5),
            )
            .expect("send");
        let delivered = server.join().expect("server");
        assert_eq!(delivered, vec![b"authenticated hello".to_vec()]);
    }

    #[test]
    fn unauthenticated_client_rejected_when_auth_required() {
        let cfg = Config::new(Algorithm::Sha1).with_chain_len(64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let server_key = alpha_pk::ecdsa::EcdsaPrivateKey::generate(&mut rng);
        let (tx, rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
            let addr = probe.local_addr().unwrap();
            drop(probe);
            tx.send(addr).unwrap();
            let auth = HandshakeAuth {
                identity: Some(&server_key),
                require_peer: true,
            };
            // The anonymous client below never completes a handshake, so
            // accept times out.
            UdpHost::accept_with(cfg, addr, Duration::from_millis(1500), auth).is_ok()
        });
        let addr = rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let res = UdpHost::connect(cfg, 5, "127.0.0.1:0", addr, Duration::from_millis(1200));
        assert!(res.is_err(), "anonymous client cannot associate");
        assert!(!server.join().unwrap(), "server refused the handshake");
    }
}
