#![warn(missing_docs)]

//! UDP transport for ALPHA: drives the sans-io protocol core over real
//! sockets.
//!
//! The simulator (`alpha-sim`) exercises the protocol under controlled
//! loss and timing; this crate shows the same state machines working over
//! an actual OS network stack:
//!
//! - [`UdpHost`] — an end host: blocking handshake with jittered
//!   exponential-backoff resends, batch send with retransmission driven
//!   by the engine's timer wheel, and a serve loop for the receiving
//!   side.
//! - [`UdpRelay`] — an on-path middlebox that forwards datagrams between
//!   two hosts while running [`alpha_core::Relay`] verification, dropping
//!   forged or unsolicited traffic before it wastes downstream bandwidth.
//! - [`Engine`] — the threaded multi-flow front end (`alpha engine
//!   serve`): worker threads over an [`alpha_engine::EngineCore`], with
//!   per-worker `SO_REUSEPORT` sockets on the batched backend.
//!
//! All of them move datagrams through the runtime-selected backends in
//! [`io`]: io_uring completion mode for the engine's worker loops
//! ([`uring`]), `recvmmsg`/`sendmmsg` batching on Linux ([`mmsg`]), a
//! portable `recv_from` loop elsewhere, overridable per process with
//! `ALPHA_UDP_BACKEND=uring|mmsg|fallback|auto`. Receives land in pooled
//! frames ([`alpha_wire::FramePool`]) and whole bursts go to the engine
//! in one call, so the batched syscall layer lines up with the engine's
//! batch verification; the transport owns sockets and the clock, the
//! engine owns flow state, timers, admission and metrics.

/// Hand-declared Linux FFI for `epoll`, `eventfd` and `timerfd` —
/// the readiness wait backend (empty on other platforms).
pub mod epoll;
pub mod io;
pub mod loadgen;
/// Hand-declared Linux FFI for `recvmmsg`/`sendmmsg` and
/// `SO_REUSEPORT` socket groups (empty on other platforms).
pub mod mmsg;
mod server;
/// Hand-declared Linux io_uring FFI — the completion-mode I/O backend
/// for engine workers (empty on other platforms).
pub mod uring;
pub mod wait;

pub use io::{RxDatagram, UdpBackend, UdpIo};
pub use loadgen::{probe_handoff, HandoffProbe, LoadgenConfig, LoadgenReport};
pub use server::{query_stats, DeliverySink, Engine, RECV_TIMEOUT, STATS_MAGIC};
pub use wait::WaitBackend;

use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::{Duration, Instant};

use alpha_core::bootstrap::{self, AuthRequirement};
use alpha_core::{Association, Config, Mode, RelayConfig, Timestamp};
use alpha_engine::{
    Backoff, EngineConfig, EngineCore, EngineError, EngineOutput, FlowKey, IoWorker,
};
use alpha_pk::{PublicKey, Signer};
use alpha_wire::FramePool;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::io::{MAX_BATCH, MAX_DATAGRAM};

/// Transport errors.
#[derive(Debug)]
pub enum TransportError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The protocol rejected a packet or operation.
    Protocol(alpha_core::ProtocolError),
    /// The operation did not complete before its deadline. `attempts`
    /// counts the transmissions made (first try + resends), so callers
    /// can distinguish "peer unreachable despite retries" from "gave up
    /// early".
    Timeout {
        /// Transmissions attempted before the deadline passed.
        attempts: u32,
    },
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> TransportError {
        TransportError::Io(e)
    }
}

impl From<alpha_core::ProtocolError> for TransportError {
    fn from(e: alpha_core::ProtocolError) -> TransportError {
        TransportError::Protocol(e)
    }
}

impl From<EngineError> for TransportError {
    fn from(e: EngineError) -> TransportError {
        match e {
            EngineError::Protocol(p) => TransportError::Protocol(p),
            other => TransportError::Io(std::io::Error::other(other.to_string())),
        }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Protocol(e) => write!(f, "protocol error: {e}"),
            TransportError::Timeout { attempts } => {
                write!(f, "operation timed out after {attempts} attempt(s)")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Floor for the dynamic read timeout: short enough to notice deadline
/// expiry promptly, long enough not to spin.
const MIN_READ_TIMEOUT: Duration = Duration::from_millis(1);
/// Ceiling for the dynamic read timeout, used when no timer is armed.
const MAX_READ_TIMEOUT: Duration = Duration::from_millis(50);

fn rx_pool() -> FramePool {
    // Full-datagram frames so a receive can never truncate; two bursts
    // deep so a burst can be in flight while the next one lands.
    FramePool::new(MAX_DATAGRAM, 2 * MAX_BATCH)
}

/// An ALPHA end host over UDP: one association, served by an engine.
pub struct UdpHost {
    io: UdpIo,
    pool: FramePool,
    rx: Vec<RxDatagram>,
    core: EngineCore,
    key: FlowKey,
    start: Instant,
    rng: StdRng,
    peer_key: Option<PublicKey>,
}

/// How a [`UdpHost`] authenticates its handshake (§3.4).
#[derive(Default)]
pub struct HandshakeAuth<'a> {
    /// Sign our half of the handshake with this identity.
    pub identity: Option<&'a dyn Signer>,
    /// Demand a valid signature from the peer (trust-on-first-use; the
    /// verified key is surfaced via [`UdpHost::peer_key`]).
    pub require_peer: bool,
}

fn single_flow_engine(cfg: Config) -> EngineCore {
    // A UdpHost serves exactly the association it handshook; stray HS1s
    // from other parties are dropped, as the pre-engine transport did.
    let mut ecfg = EngineConfig::new(cfg);
    ecfg.accept_handshakes = false;
    EngineCore::new(ecfg)
}

impl UdpHost {
    /// Initiate: bind `bind`, handshake with `peer`, block until HS2 (or
    /// `timeout`). Unprotected bootstrap; see [`UdpHost::connect_with`].
    pub fn connect<A: ToSocketAddrs, B: ToSocketAddrs>(
        cfg: Config,
        assoc_id: u64,
        bind: A,
        peer: B,
        timeout: Duration,
    ) -> Result<UdpHost, TransportError> {
        Self::connect_with(cfg, assoc_id, bind, peer, timeout, HandshakeAuth::default())
    }

    /// [`UdpHost::connect`] with optional protected bootstrapping.
    ///
    /// The HS1 is resent on a full-jitter exponential backoff schedule
    /// (~100 ms doubling to 1.6 s) instead of a fixed interval, so a
    /// thundering herd of connecting hosts decorrelates; on timeout the
    /// attempt count is reported in [`TransportError::Timeout`].
    pub fn connect_with<A: ToSocketAddrs, B: ToSocketAddrs>(
        cfg: Config,
        assoc_id: u64,
        bind: A,
        peer: B,
        timeout: Duration,
        auth: HandshakeAuth<'_>,
    ) -> Result<UdpHost, TransportError> {
        let socket = UdpSocket::bind(bind)?;
        Self::connect_socket(cfg, assoc_id, socket, peer, timeout, auth)
    }

    /// [`UdpHost::connect_with`] over a socket the caller already bound
    /// (e.g. one reserved early so the address could be routed before
    /// any traffic flows).
    pub fn connect_socket<B: ToSocketAddrs>(
        cfg: Config,
        assoc_id: u64,
        socket: UdpSocket,
        peer: B,
        timeout: Duration,
        auth: HandshakeAuth<'_>,
    ) -> Result<UdpHost, TransportError> {
        let peer = peer
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no peer addr"))?;
        let mut rng = StdRng::from_entropy();
        let (hs, init_pkt) = bootstrap::initiate(cfg, assoc_id, auth.identity, &mut rng);
        let require = if auth.require_peer {
            AuthRequirement::AnyKey
        } else {
            AuthRequirement::None
        };
        let deadline = Instant::now() + timeout;
        let init_bytes = init_pkt.emit();
        let mut backoff = Backoff::handshake();
        socket.send_to(&init_bytes, peer)?;
        let mut next_resend = Instant::now() + backoff.next_delay(&mut rng);
        // The engine core (and its I/O metrics registry) only exists
        // after the handshake; count into a detached block for now and
        // fold it in via `from_parts`.
        let pool = rx_pool();
        let mut io = UdpIo::new(socket, Arc::new(IoWorker::default()));
        let mut rx: Vec<RxDatagram> = Vec::with_capacity(MAX_BATCH);
        loop {
            let now = Instant::now();
            if now > deadline {
                return Err(TransportError::Timeout {
                    attempts: backoff.attempts(),
                });
            }
            if now >= next_resend {
                io.socket().send_to(&init_bytes, peer)?;
                next_resend = now + backoff.next_delay(&mut rng);
            }
            let wait = next_resend
                .saturating_duration_since(now)
                .clamp(MIN_READ_TIMEOUT, MAX_READ_TIMEOUT);
            io.socket().set_read_timeout(Some(wait))?;
            rx.clear();
            if io.recv_batch(&pool, &mut rx, MAX_BATCH)? == 0 {
                continue;
            }
            for d in &rx {
                let Ok(pkt) = alpha_wire::Packet::parse(&d.frame) else {
                    continue;
                };
                match hs.complete(&pkt, require) {
                    Ok((assoc, peer_key)) => {
                        return Ok(UdpHost::from_parts(io, pool, peer, assoc, rng, peer_key));
                    }
                    Err(e) => return Err(TransportError::Protocol(e)),
                }
            }
        }
    }

    /// Accept: bind `bind`, wait for an HS1 (up to `timeout`), reply.
    /// Unprotected bootstrap; see [`UdpHost::accept_with`].
    pub fn accept<A: ToSocketAddrs>(
        cfg: Config,
        bind: A,
        timeout: Duration,
    ) -> Result<UdpHost, TransportError> {
        Self::accept_with(cfg, bind, timeout, HandshakeAuth::default())
    }

    /// [`UdpHost::accept`] with optional protected bootstrapping.
    pub fn accept_with<A: ToSocketAddrs>(
        cfg: Config,
        bind: A,
        timeout: Duration,
        auth: HandshakeAuth<'_>,
    ) -> Result<UdpHost, TransportError> {
        let socket = UdpSocket::bind(bind)?;
        Self::accept_socket(cfg, socket, timeout, auth)
    }

    /// [`UdpHost::accept_with`] over a socket the caller already bound.
    pub fn accept_socket(
        cfg: Config,
        socket: UdpSocket,
        timeout: Duration,
        auth: HandshakeAuth<'_>,
    ) -> Result<UdpHost, TransportError> {
        socket.set_read_timeout(Some(MAX_READ_TIMEOUT))?;
        let require = if auth.require_peer {
            AuthRequirement::AnyKey
        } else {
            AuthRequirement::None
        };
        let deadline = Instant::now() + timeout;
        let mut rng = StdRng::from_entropy();
        let pool = rx_pool();
        let mut io = UdpIo::new(socket, Arc::new(IoWorker::default()));
        let mut rx: Vec<RxDatagram> = Vec::with_capacity(MAX_BATCH);
        loop {
            if Instant::now() > deadline {
                // The acceptor never transmits before an HS1 arrives.
                return Err(TransportError::Timeout { attempts: 0 });
            }
            rx.clear();
            if io.recv_batch(&pool, &mut rx, MAX_BATCH)? == 0 {
                continue;
            }
            for d in &rx {
                let Ok(pkt) = alpha_wire::Packet::parse(&d.frame) else {
                    continue;
                };
                match bootstrap::respond(cfg, &pkt, auth.identity, require, &mut rng) {
                    Ok((assoc, reply, peer_key)) => {
                        io.socket().send_to(&reply.emit(), d.from)?;
                        return Ok(UdpHost::from_parts(io, pool, d.from, assoc, rng, peer_key));
                    }
                    Err(_) => continue, // stray or unauthorized handshake
                }
            }
        }
    }

    fn from_parts(
        io: UdpIo,
        pool: FramePool,
        peer: SocketAddr,
        assoc: Association,
        rng: StdRng,
        peer_key: Option<PublicKey>,
    ) -> UdpHost {
        let start = Instant::now();
        let core = single_flow_engine(*assoc.config());
        // Adopt the handshake-phase counters so the host's metrics cover
        // the socket's whole life.
        core.metrics().io.set_backend(io.backend().name());
        core.metrics().io.adopt_worker(Arc::clone(io.counters()));
        let key = core.add_host(peer, assoc, Timestamp::ZERO);
        UdpHost {
            io,
            pool,
            rx: Vec::with_capacity(MAX_BATCH),
            core,
            key,
            start,
            rng,
            peer_key,
        }
    }

    /// The peer's verified public key, when the handshake was protected.
    #[must_use]
    pub fn peer_key(&self) -> Option<&PublicKey> {
        self.peer_key.as_ref()
    }

    /// Local address (useful with port 0 binds).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.io.socket().local_addr()
    }

    /// Protocol-time now.
    fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// The engine core serving this host's association.
    #[must_use]
    pub fn engine(&self) -> &EngineCore {
        &self.core
    }

    /// Run `f` against the association (e.g. for buffer statistics).
    pub fn with_association<R>(&self, f: impl FnOnce(&mut Association) -> R) -> R {
        // Allowlist: the constructor registers this host flow and nothing
        // removes it while the handle is alive.
        self.core
            .with_association(self.key, f)
            .expect("host flow always present")
    }

    /// Block on the socket until the engine's next timer deadline (or
    /// the caps), then drain one burst of datagrams through the engine.
    fn pump_once(&mut self, inbound: &mut Vec<Vec<u8>>) -> Result<(), TransportError> {
        let wait = match self.core.next_deadline() {
            Some(t) => {
                Duration::from_micros(t.since(self.now())).clamp(MIN_READ_TIMEOUT, MAX_READ_TIMEOUT)
            }
            None => MAX_READ_TIMEOUT,
        };
        self.io.socket().set_read_timeout(Some(wait))?;
        self.rx.clear();
        if self.io.recv_batch(&self.pool, &mut self.rx, MAX_BATCH)? > 0 {
            let now = self.now();
            let batch: Vec<(SocketAddr, &[u8])> =
                self.rx.iter().map(|d| (d.from, &d.frame[..])).collect();
            let out = self.core.handle_datagrams(&batch, now, &mut self.rng);
            drop(batch);
            self.flush(out, inbound)?;
        }
        let out = self.core.poll(self.now(), &mut self.rng);
        self.flush(out, inbound)?;
        Ok(())
    }

    fn flush(&self, out: EngineOutput, inbound: &mut Vec<Vec<u8>>) -> Result<(), TransportError> {
        self.io.send_batch(&out.datagrams)?;
        inbound.extend(out.delivered.into_iter().map(|(_, _, p)| p));
        Ok(())
    }

    /// Send one batch through a full signature exchange, driving
    /// retransmissions until the exchange completes, is abandoned, or
    /// `timeout` passes. Returns payloads that were *delivered to us* by
    /// the peer while we waited (full duplex).
    pub fn send_batch(
        &mut self,
        messages: &[&[u8]],
        mode: Mode,
        timeout: Duration,
    ) -> Result<Vec<Vec<u8>>, TransportError> {
        let now = self.now();
        let out = self.core.sign_batch(self.key, messages, mode, now)?;
        let mut attempts = out.datagrams.len() as u32;
        let mut inbound = Vec::new();
        self.flush(out, &mut inbound)?;
        let deadline = Instant::now() + timeout;
        while !self.core.flow_is_idle(self.key) {
            if Instant::now() > deadline {
                return Err(TransportError::Timeout { attempts });
            }
            let sent_before = self.core.metrics().packets_out.load(Relaxed);
            self.pump_once(&mut inbound)?;
            let sent_after = self.core.metrics().packets_out.load(Relaxed);
            attempts += (sent_after - sent_before) as u32;
        }
        Ok(inbound)
    }

    /// Serve the receiving side for `duration`, answering protocol packets
    /// and collecting verified deliveries.
    pub fn serve(&mut self, duration: Duration) -> Result<Vec<Vec<u8>>, TransportError> {
        let deadline = Instant::now() + duration;
        let mut delivered = Vec::new();
        while Instant::now() < deadline {
            self.pump_once(&mut delivered)?;
        }
        Ok(delivered)
    }
}

/// An on-path UDP middlebox: forwards datagrams between two sides while
/// verifying them with a relay-role engine flow per association.
pub struct UdpRelay {
    io: UdpIo,
    pool: FramePool,
    rx: Vec<RxDatagram>,
    core: EngineCore,
    start: Instant,
    /// Verified payloads extracted in transit.
    pub extracted: Vec<Vec<u8>>,
    /// Packets dropped, by any cause (verification, admission,
    /// backpressure, or unparseable frames).
    pub dropped: u64,
    /// Datagrams forwarded.
    pub forwarded: u64,
}

impl UdpRelay {
    /// Bind `bind`; traffic from `left` forwards to `right` and back.
    /// More routes can be added through [`UdpRelay::engine`].
    pub fn new<A: ToSocketAddrs>(
        bind: A,
        left: SocketAddr,
        right: SocketAddr,
        cfg: RelayConfig,
    ) -> Result<UdpRelay, TransportError> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(MAX_READ_TIMEOUT))?;
        // Relay-only engine: host config is irrelevant but required, and
        // unknown-flow HS1s must never stand up host state here.
        let mut ecfg = EngineConfig::new(Config::new(alpha_crypto::Algorithm::Sha1));
        ecfg.relay = cfg;
        ecfg.accept_handshakes = false;
        let core = EngineCore::new(ecfg);
        core.add_route(left, right);
        let io = UdpIo::new(socket, core.metrics().io.register_worker());
        core.metrics().io.set_backend(io.backend().name());
        Ok(UdpRelay {
            io,
            pool: rx_pool(),
            rx: Vec::with_capacity(MAX_BATCH),
            core,
            start: Instant::now(),
            extracted: Vec::new(),
            dropped: 0,
            forwarded: 0,
        })
    }

    /// Local address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.io.socket().local_addr()
    }

    /// The relay's engine core (metrics, flow counts, extra routes).
    #[must_use]
    pub fn engine(&self) -> &EngineCore {
        &self.core
    }

    /// Forward and verify for `duration`, draining whole bursts so the
    /// relay's batched signature verification gets full batches.
    pub fn run_for(&mut self, duration: Duration) -> Result<(), TransportError> {
        let deadline = Instant::now() + duration;
        let mut rng = StdRng::from_entropy();
        while Instant::now() < deadline {
            self.rx.clear();
            if self.io.recv_batch(&self.pool, &mut self.rx, MAX_BATCH)? == 0 {
                continue;
            }
            let now = Timestamp::from_micros(self.start.elapsed().as_micros() as u64);
            let batch: Vec<(SocketAddr, &[u8])> =
                self.rx.iter().map(|d| (d.from, &d.frame[..])).collect();
            let out = self.core.handle_datagrams(&batch, now, &mut rng);
            drop(batch);
            self.io.send_batch(&out.datagrams)?;
            self.forwarded += out.datagrams.len() as u64;
            self.extracted
                .extend(out.extracted.into_iter().map(|(_, p)| p));
            let m = self.core.metrics();
            self.dropped = m.total_drops()
                + m.admission_drops.load(Relaxed)
                + m.backpressure_drops.load(Relaxed)
                + m.parse_errors.load(Relaxed);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_crypto::Algorithm;

    fn cfg() -> Config {
        Config::new(Algorithm::Sha1).with_chain_len(64)
    }

    #[test]
    fn udp_roundtrip_direct() {
        let c = cfg();
        let (tx, rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let socket_probe = UdpSocket::bind("127.0.0.1:0").unwrap();
            let addr = socket_probe.local_addr().unwrap();
            drop(socket_probe);
            tx.send(addr).unwrap();
            let mut host = UdpHost::accept(c, addr, Duration::from_secs(10)).expect("accept");
            host.serve(Duration::from_millis(1500)).expect("serve")
        });
        let addr = rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let mut client =
            UdpHost::connect(c, 7, "127.0.0.1:0", addr, Duration::from_secs(10)).expect("connect");
        client
            .send_batch(&[b"over real udp"], Mode::Base, Duration::from_secs(5))
            .expect("send");
        // The host's metrics now carry I/O accounting for its socket.
        let totals = client.engine().metrics().io.totals();
        assert!(totals.datagrams_in > 0, "host counted received datagrams");
        assert!(totals.datagrams_out > 0, "host counted sent datagrams");
        let delivered = server.join().expect("server thread");
        assert_eq!(delivered, vec![b"over real udp".to_vec()]);
    }

    #[test]
    fn udp_batch_through_relay() {
        let c = cfg();
        // Server.
        let (tx, rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
            let addr = probe.local_addr().unwrap();
            drop(probe);
            tx.send(addr).unwrap();
            let mut host = UdpHost::accept(c, addr, Duration::from_secs(10)).expect("accept");
            host.serve(Duration::from_millis(2500)).expect("serve")
        });
        let server_addr = rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));

        // Client binds first so the relay knows both sides.
        let client_sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let client_addr = client_sock.local_addr().unwrap();
        drop(client_sock);

        let (rtx, rrx) = std::sync::mpsc::channel();
        let relay_thread = std::thread::spawn(move || {
            let mut relay = UdpRelay::new(
                "127.0.0.1:0",
                client_addr,
                server_addr,
                RelayConfig::default(),
            )
            .expect("relay");
            rtx.send(relay.local_addr().unwrap()).unwrap();
            relay
                .run_for(Duration::from_millis(2500))
                .expect("relay run");
            (relay.forwarded, relay.dropped, relay.extracted)
        });
        let relay_addr = rrx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));

        let mut client = UdpHost::connect(c, 7, client_addr, relay_addr, Duration::from_secs(10))
            .expect("connect");
        client
            .send_batch(
                &[
                    b"first".as_slice(),
                    b"second".as_slice(),
                    b"third".as_slice(),
                ],
                Mode::Cumulative,
                Duration::from_secs(5),
            )
            .expect("send");
        let delivered = server.join().expect("server");
        let (forwarded, _dropped, extracted) = relay_thread.join().expect("relay");
        assert_eq!(delivered.len(), 3);
        assert!(forwarded >= 5, "handshake + exchange forwarded");
        assert_eq!(extracted.len(), 3, "relay verified every payload");
    }

    #[test]
    fn timeout_reports_attempts() {
        // Nobody listens on this socket: connect must retry with
        // backoff and report how often it tried.
        let victim = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = victim.local_addr().unwrap();
        let res = UdpHost::connect(cfg(), 9, "127.0.0.1:0", addr, Duration::from_millis(900));
        match res {
            Err(TransportError::Timeout { attempts }) => {
                assert!(
                    (2..=8).contains(&attempts),
                    "expected a few backoff attempts in 900 ms, got {attempts}"
                );
            }
            Err(other) => panic!("expected timeout, got {other}"),
            Ok(_) => panic!("expected timeout, connected to a mute socket"),
        }
    }
}

#[cfg(test)]
mod protected_tests {
    use super::*;
    use alpha_crypto::Algorithm;

    #[test]
    fn protected_udp_handshake_verifies_identities() {
        let cfg = Config::new(Algorithm::Sha1).with_chain_len(64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let server_key = alpha_pk::ecdsa::EcdsaPrivateKey::generate(&mut rng);
        let client_key = alpha_pk::ecdsa::EcdsaPrivateKey::generate(&mut rng);

        let (tx, rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
            let addr = probe.local_addr().unwrap();
            drop(probe);
            tx.send(addr).unwrap();
            let auth = HandshakeAuth {
                identity: Some(&server_key),
                require_peer: true,
            };
            let mut host =
                UdpHost::accept_with(cfg, addr, Duration::from_secs(10), auth).expect("accept");
            assert!(host.peer_key().is_some(), "client identity verified");
            host.serve(Duration::from_millis(1200)).expect("serve")
        });
        let addr = rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let auth = HandshakeAuth {
            identity: Some(&client_key),
            require_peer: true,
        };
        let mut client =
            UdpHost::connect_with(cfg, 5, "127.0.0.1:0", addr, Duration::from_secs(10), auth)
                .expect("connect");
        assert!(client.peer_key().is_some(), "server identity verified");
        client
            .send_batch(
                &[b"authenticated hello"],
                Mode::Base,
                Duration::from_secs(5),
            )
            .expect("send");
        let delivered = server.join().expect("server");
        assert_eq!(delivered, vec![b"authenticated hello".to_vec()]);
    }

    #[test]
    fn unauthenticated_client_rejected_when_auth_required() {
        let cfg = Config::new(Algorithm::Sha1).with_chain_len(64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let server_key = alpha_pk::ecdsa::EcdsaPrivateKey::generate(&mut rng);
        let (tx, rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
            let addr = probe.local_addr().unwrap();
            drop(probe);
            tx.send(addr).unwrap();
            let auth = HandshakeAuth {
                identity: Some(&server_key),
                require_peer: true,
            };
            // The anonymous client below never completes a handshake, so
            // accept times out.
            UdpHost::accept_with(cfg, addr, Duration::from_millis(1500), auth).is_ok()
        });
        let addr = rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let res = UdpHost::connect(cfg, 5, "127.0.0.1:0", addr, Duration::from_millis(1200));
        assert!(res.is_err(), "anonymous client cannot associate");
        assert!(!server.join().unwrap(), "server refused the handshake");
    }
}
