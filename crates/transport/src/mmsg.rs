//! Raw Linux batched-UDP FFI: `recvmmsg` / `sendmmsg`, `SO_REUSEPORT`
//! socket construction, and receive-buffer sizing. One of the two FFI
//! modules in the crate containing `unsafe` (the other is
//! [`crate::epoll`], the readiness/timer syscalls).
//!
//! No crates.io access means no `libc`: the ABI is declared by hand —
//! `iovec`, `msghdr`, `mmsghdr` and the `sockaddr` encodings as
//! `#[repr(C)]` types matching the x86_64 / aarch64 Linux layouts, and
//! the socket calls as plain `extern "C"` glibc imports. The layouts
//! are locked down by the property tests in `tests/mmsg_props.rs`,
//! which round-trip real datagrams of every awkward size through a
//! loopback socket pair and assert lengths, payload bytes, source
//! addresses and truncation flags all survive the packing.
//!
//! Safety argument, once for the whole module: every `unsafe` block
//! here is one of exactly three shapes.
//!
//! 1. A call to an imported C function whose pointer arguments are
//!    derived from live Rust allocations (stack arrays or `Vec`
//!    buffers) that outlive the call, with lengths taken from the same
//!    allocation. The kernel reads/writes only within those bounds.
//! 2. `Vec::set_len(n)` on a receive buffer after the kernel reported
//!    writing `n` bytes into it, with `n` clamped to the buffer's
//!    capacity. The bytes are initialized by the kernel's copy.
//! 3. `UdpSocket::from_raw_fd` on a file descriptor this module just
//!    created and exclusively owns, transferring ownership to the
//!    returned socket (which closes it on drop).
//!
//! Blocking model: sockets stay in blocking mode with `SO_RCVTIMEO`
//! (`UdpSocket::set_read_timeout`) as the deadline. [`recv_batch`]
//! passes `MSG_WAITFORONE`, so the *first* datagram may block up to the
//! timeout and everything already queued behind it drains in the same
//! syscall without further waiting — the worker-loop semantics the
//! engine front end wants, with no user-space poll loop.

#![cfg(target_os = "linux")]

use std::io;
use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, SocketAddrV4, SocketAddrV6, UdpSocket};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};
use std::os::raw::{c_int, c_uint, c_void};

use alpha_wire::{Frame, FramePool};

use crate::io::RxDatagram;

/// Most datagrams moved by one `recvmmsg`/`sendmmsg` call. 32 matches
/// the engine's burst cap (`MAX_BURST`), so one syscall fills one
/// engine burst.
pub const VLEN: usize = 32;

// ---------------------------------------------------------------------------
// ABI constants (x86_64 / aarch64 Linux values).
// ---------------------------------------------------------------------------

const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;
const SOCK_DGRAM: c_int = 2;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_RCVBUF: c_int = 8;
const SO_REUSEPORT: c_int = 15;
const SO_RCVBUFFORCE: c_int = 33;
/// Per-message flag set by the kernel when a datagram was cut to fit.
pub(crate) const MSG_TRUNC: c_int = 0x20;
/// Block for the first message only; drain the rest nonblocking.
const MSG_WAITFORONE: c_int = 0x10000;

// ---------------------------------------------------------------------------
// ABI types.
// ---------------------------------------------------------------------------

/// `struct iovec`: one scatter/gather element.
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct IoVec {
    pub(crate) iov_base: *mut c_void,
    pub(crate) iov_len: usize,
}

/// `struct msghdr` (x86_64/aarch64: 4 bytes of padding after
/// `msg_namelen` and after `msg_flags`, which `#[repr(C)]` reproduces).
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct MsgHdr {
    pub(crate) msg_name: *mut c_void,
    pub(crate) msg_namelen: u32,
    pub(crate) msg_iov: *mut IoVec,
    pub(crate) msg_iovlen: usize,
    pub(crate) msg_control: *mut c_void,
    pub(crate) msg_controllen: usize,
    pub(crate) msg_flags: c_int,
}

/// `struct mmsghdr`: a `msghdr` plus the kernel-filled datagram length.
#[repr(C)]
#[derive(Clone, Copy)]
struct MMsgHdr {
    msg_hdr: MsgHdr,
    msg_len: c_uint,
}

/// A `sockaddr_storage`-sized, suitably aligned name buffer. The
/// kernel writes a `sockaddr_in` (16 bytes) or `sockaddr_in6`
/// (28 bytes) into it; we decode by hand from the documented offsets.
#[repr(C, align(8))]
#[derive(Clone, Copy)]
pub(crate) struct SockaddrStorage {
    pub(crate) bytes: [u8; 128],
}

impl SockaddrStorage {
    pub(crate) const fn zeroed() -> SockaddrStorage {
        SockaddrStorage { bytes: [0u8; 128] }
    }
}

extern "C" {
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn bind(fd: c_int, addr: *const c_void, addrlen: u32) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn getsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *mut c_void,
        optlen: *mut u32,
    ) -> c_int;
    fn recvmmsg(
        fd: c_int,
        msgvec: *mut MMsgHdr,
        vlen: c_uint,
        flags: c_int,
        timeout: *mut c_void,
    ) -> c_int;
    fn sendmmsg(fd: c_int, msgvec: *mut MMsgHdr, vlen: c_uint, flags: c_int) -> c_int;
}

// ---------------------------------------------------------------------------
// sockaddr encode / decode (safe byte manipulation at fixed offsets).
// ---------------------------------------------------------------------------

/// Write `addr` into `store` as the kernel expects it; returns the
/// encoded length. Layouts: `sockaddr_in` = family:u16(native) |
/// port:u16(BE) | addr:4B | zero:8B; `sockaddr_in6` = family:u16 |
/// port:u16(BE) | flowinfo:u32 | addr:16B | scope_id:u32(native).
pub(crate) fn encode_addr(addr: &SocketAddr, store: &mut SockaddrStorage) -> u32 {
    store.bytes = [0u8; 128];
    match addr {
        SocketAddr::V4(a) => {
            store.bytes[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
            store.bytes[2..4].copy_from_slice(&a.port().to_be_bytes());
            store.bytes[4..8].copy_from_slice(&a.ip().octets());
            16
        }
        SocketAddr::V6(a) => {
            store.bytes[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
            store.bytes[2..4].copy_from_slice(&a.port().to_be_bytes());
            store.bytes[4..8].copy_from_slice(&a.flowinfo().to_be_bytes());
            store.bytes[8..24].copy_from_slice(&a.ip().octets());
            store.bytes[24..28].copy_from_slice(&a.scope_id().to_ne_bytes());
            28
        }
    }
}

/// Decode a kernel-written name back into a [`SocketAddr`]; `None` for
/// families we do not speak (the caller skips the datagram).
pub(crate) fn decode_addr(store: &SockaddrStorage, len: u32) -> Option<SocketAddr> {
    let b = &store.bytes;
    let family = u16::from_ne_bytes([b[0], b[1]]);
    if family == AF_INET && len as usize >= 16 {
        let port = u16::from_be_bytes([b[2], b[3]]);
        let ip = Ipv4Addr::new(b[4], b[5], b[6], b[7]);
        Some(SocketAddr::V4(SocketAddrV4::new(ip, port)))
    } else if family == AF_INET6 && len as usize >= 28 {
        let port = u16::from_be_bytes([b[2], b[3]]);
        let flowinfo = u32::from_be_bytes([b[4], b[5], b[6], b[7]]);
        let mut octets = [0u8; 16];
        octets.copy_from_slice(&b[8..24]);
        let scope = u32::from_ne_bytes([b[24], b[25], b[26], b[27]]);
        Some(SocketAddr::V6(SocketAddrV6::new(
            Ipv6Addr::from(octets),
            port,
            flowinfo,
            scope,
        )))
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Socket construction.
// ---------------------------------------------------------------------------

fn set_int_opt(fd: RawFd, opt: c_int, value: c_int) -> io::Result<()> {
    // SAFETY: shape 1 — `&value` points at a live c_int for the
    // duration of the call, and optlen matches its size.
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            opt,
            (&value as *const c_int).cast::<c_void>(),
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Bind a UDP socket to `addr` with `SO_REUSEPORT` set *before* the
/// bind (std's `UdpSocket::bind` offers no hook between `socket()` and
/// `bind()`, so the socket is built by hand). Several sockets bound
/// this way to one address form a kernel-balanced group: the 4-tuple
/// hash pins each remote source to one member socket, in order.
pub fn bind_reuseport(addr: SocketAddr) -> io::Result<UdpSocket> {
    let family = match addr {
        SocketAddr::V4(_) => c_int::from(AF_INET),
        SocketAddr::V6(_) => c_int::from(AF_INET6),
    };
    // SAFETY: shape 1 — no pointers; returns a fresh fd or -1.
    let fd = unsafe { socket(family, SOCK_DGRAM | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: shape 3 — `fd` was just created above and nothing else
    // holds it; the UdpSocket now owns it (and closes it on any early
    // return below).
    let sock = unsafe { UdpSocket::from_raw_fd(fd) };
    set_int_opt(fd, SO_REUSEPORT, 1)?;
    let mut store = SockaddrStorage::zeroed();
    let len = encode_addr(&addr, &mut store);
    // SAFETY: shape 1 — `store` is a live 128-byte buffer and
    // `len` ≤ 128 bytes of it are the encoded sockaddr.
    let rc = unsafe { bind(fd, store.bytes.as_ptr().cast::<c_void>(), len) };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(sock)
}

/// Bind `n` `SO_REUSEPORT` sockets to one address (resolving port 0
/// once, via the first bind). Any failure fails the whole group, so the
/// caller can fall back to a single shared socket.
pub fn bind_reuseport_group(addr: SocketAddr, n: usize) -> io::Result<Vec<UdpSocket>> {
    let first = bind_reuseport(addr)?;
    let resolved = first.local_addr()?;
    let mut sockets = vec![first];
    for _ in 1..n.max(1) {
        sockets.push(bind_reuseport(resolved)?);
    }
    Ok(sockets)
}

/// Ask for a `bytes`-sized kernel receive buffer: `SO_RCVBUFFORCE`
/// (exceeds `rmem_max`, needs CAP_NET_ADMIN) when permitted, plain
/// `SO_RCVBUF` (clamped to `rmem_max`) otherwise.
pub fn set_recv_buffer(sock: &UdpSocket, bytes: usize) -> io::Result<()> {
    let fd = sock.as_raw_fd();
    let v = c_int::try_from(bytes.min(c_int::MAX as usize / 2)).unwrap_or(c_int::MAX / 2);
    if set_int_opt(fd, SO_RCVBUFFORCE, v).is_ok() {
        return Ok(());
    }
    set_int_opt(fd, SO_RCVBUF, v)
}

/// The effective kernel receive-buffer size (the kernel doubles the
/// requested value for bookkeeping overhead; this reports its number).
pub fn recv_buffer(sock: &UdpSocket) -> io::Result<usize> {
    let mut value: c_int = 0;
    let mut len = std::mem::size_of::<c_int>() as u32;
    // SAFETY: shape 1 — `value`/`len` are live stack slots sized for
    // the option the kernel writes back.
    let rc = unsafe {
        getsockopt(
            sock.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            (&mut value as *mut c_int).cast::<c_void>(),
            &mut len,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(value.max(0) as usize)
}

// ---------------------------------------------------------------------------
// Batched receive / send.
// ---------------------------------------------------------------------------

/// Receive up to `max.min(VLEN)` datagrams in one `recvmmsg` call, each
/// landing directly in its own pooled frame (one iovec per frame, no
/// intermediate copy), appended to `out`. Blocks for the first datagram
/// up to the socket's read timeout; returns `Ok(0)` on timeout.
///
/// `scratch` is the caller's persistent stash of checked-out frames:
/// it is topped up from `pool` to the batch size, and only frames that
/// actually received a datagram are consumed. Keeping it across calls
/// means an idle poll costs zero pool traffic — checking out (and
/// dropping) a full batch of frames per wakeup is measurably expensive,
/// pathologically so in debug builds where every returned frame is
/// poisoned over its whole capacity.
pub fn recv_batch(
    sock: &UdpSocket,
    pool: &FramePool,
    scratch: &mut Vec<Frame>,
    out: &mut Vec<RxDatagram>,
    max: usize,
) -> io::Result<usize> {
    let want = max.clamp(1, VLEN);
    while scratch.len() < want {
        scratch.push(pool.checkout());
    }
    let mut names = [SockaddrStorage::zeroed(); VLEN];
    let mut iovs = [IoVec {
        iov_base: std::ptr::null_mut(),
        iov_len: 0,
    }; VLEN];
    let mut hdrs = [MMsgHdr {
        msg_hdr: MsgHdr {
            msg_name: std::ptr::null_mut(),
            msg_namelen: 0,
            msg_iov: std::ptr::null_mut(),
            msg_iovlen: 0,
            msg_control: std::ptr::null_mut(),
            msg_controllen: 0,
            msg_flags: 0,
        },
        msg_len: 0,
    }; VLEN];
    for i in 0..want {
        let buf = scratch[i].buf_mut();
        if buf.capacity() == 0 {
            buf.reserve(1);
        }
        iovs[i] = IoVec {
            iov_base: buf.as_mut_ptr().cast::<c_void>(),
            iov_len: buf.capacity(),
        };
        hdrs[i].msg_hdr = MsgHdr {
            msg_name: (&mut names[i] as *mut SockaddrStorage).cast::<c_void>(),
            msg_namelen: 128,
            msg_iov: &mut iovs[i],
            msg_iovlen: 1,
            msg_control: std::ptr::null_mut(),
            msg_controllen: 0,
            msg_flags: 0,
        };
    }
    // SAFETY: shape 1 — `hdrs[..want]` points into live stack arrays;
    // each header references one `names[i]` (128 bytes live) and one
    // `iovs[i]` whose base/len describe the spare capacity of
    // `scratch[i]`'s heap buffer, which stays put (`scratch` is not
    // resized between the pointer captures and the call, and a Vec's
    // heap data does not move when the Vec of Frames itself is left
    // alone) and outlives the call. Null timeout: blocking is governed
    // by SO_RCVTIMEO + MSG_WAITFORONE.
    let rc = unsafe {
        recvmmsg(
            sock.as_raw_fd(),
            hdrs.as_mut_ptr(),
            want as c_uint,
            MSG_WAITFORONE,
            std::ptr::null_mut(),
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    let got = (rc as usize).min(want);
    // One stamp for the whole batch: every datagram in it became
    // visible to user space when this recvmmsg returned.
    let received = std::time::Instant::now();
    for (i, mut frame) in scratch.drain(..got).enumerate() {
        let cap = frame.buf_mut().capacity();
        let n = (hdrs[i].msg_len as usize).min(cap);
        // SAFETY: shape 2 — the kernel wrote `msg_len` bytes into this
        // buffer's allocation (clamped to its capacity).
        unsafe { frame.buf_mut().set_len(n) };
        let truncated = hdrs[i].msg_hdr.msg_flags & MSG_TRUNC != 0;
        let Some(from) = decode_addr(&names[i], hdrs[i].msg_hdr.msg_namelen) else {
            continue; // unknown address family: skip the datagram
        };
        out.push(RxDatagram {
            from,
            frame,
            truncated,
            received,
        });
    }
    Ok(got)
}

/// Send up to `VLEN` of `msgs` in one `sendmmsg` call; returns how many
/// the kernel accepted (possibly fewer — the caller resubmits the
/// tail).
pub fn send_batch(sock: &UdpSocket, msgs: &[(SocketAddr, Frame)]) -> io::Result<usize> {
    let n = msgs.len().min(VLEN);
    if n == 0 {
        return Ok(0);
    }
    let mut names = [SockaddrStorage::zeroed(); VLEN];
    let mut iovs = [IoVec {
        iov_base: std::ptr::null_mut(),
        iov_len: 0,
    }; VLEN];
    let mut hdrs = [MMsgHdr {
        msg_hdr: MsgHdr {
            msg_name: std::ptr::null_mut(),
            msg_namelen: 0,
            msg_iov: std::ptr::null_mut(),
            msg_iovlen: 0,
            msg_control: std::ptr::null_mut(),
            msg_controllen: 0,
            msg_flags: 0,
        },
        msg_len: 0,
    }; VLEN];
    for (i, (dst, frame)) in msgs.iter().take(n).enumerate() {
        let namelen = encode_addr(dst, &mut names[i]);
        iovs[i] = IoVec {
            // Sends only read through iov_base; the *mut is an ABI
            // artifact of sharing iovec with the receive path.
            iov_base: frame.as_ptr().cast_mut().cast::<c_void>(),
            iov_len: frame.len(),
        };
        hdrs[i].msg_hdr = MsgHdr {
            msg_name: (&mut names[i] as *mut SockaddrStorage).cast::<c_void>(),
            msg_namelen: namelen,
            msg_iov: &mut iovs[i],
            msg_iovlen: 1,
            msg_control: std::ptr::null_mut(),
            msg_controllen: 0,
            msg_flags: 0,
        };
    }
    // SAFETY: shape 1 — `hdrs[..n]` references live stack `names`/
    // `iovs`; each iovec covers `frame.len()` initialized bytes of a
    // borrowed frame that outlives the call. The kernel only reads
    // through these pointers on the send path.
    let rc = unsafe { sendmmsg(sock.as_raw_fd(), hdrs.as_mut_ptr(), n as c_uint, 0) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((rc as usize).min(n))
}
