//! CLI command tests that exercise real side effects (temp files, the
//! simulator) without touching the network.

use alpha_cli::args::{parse_args, Command, SimOpts};
use alpha_cli::commands;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("alpha-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn keygen_writes_loadable_identity() {
    let out = tmp("ecdsa.key");
    commands::keygen("ecdsa", out.to_str().unwrap(), 0).expect("keygen");
    let bytes = std::fs::read(&out).expect("file written");
    let key = alpha_pk::PrivateKey::from_bytes(&bytes).expect("parses back");
    let mut rng = alpha::test_rng(1);
    use alpha_pk::VerifyingKey;
    let sig = key
        .as_signer()
        .sign(alpha::crypto::Algorithm::Sha1, b"x", &mut rng);
    assert!(key
        .as_signer()
        .verifying_key()
        .verify(alpha::crypto::Algorithm::Sha1, b"x", &sig));
    std::fs::remove_file(&out).ok();
}

#[test]
fn keygen_rejects_unknown_scheme() {
    let out = tmp("nope.key");
    assert!(commands::keygen("dsa4096", out.to_str().unwrap(), 0).is_err());
    assert!(!out.exists());
}

#[test]
fn sim_subcommand_runs_end_to_end() {
    // Parse a realistic command line, then execute it.
    let argv: Vec<String> = [
        "sim",
        "--relays",
        "1",
        "--messages",
        "10",
        "--batch",
        "5",
        "--loss",
        "0",
        "--device",
        "geode",
        "--payload",
        "64",
        "--seconds",
        "30",
        "--seed",
        "3",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let Command::Sim(opts) = parse_args(&argv).expect("parses") else {
        panic!("expected sim");
    };
    commands::sim(&opts).expect("sim runs");
}

#[test]
fn sim_accepts_all_devices_and_modes() {
    for device in ["xeon", "n770", "ar2315", "bcm5365", "geode", "cc2430"] {
        for mode in ["base", "c", "m", "cm"] {
            let opts = SimOpts {
                relays: 1,
                messages: 4,
                batch: if mode == "base" { 1 } else { 4 },
                device: device.into(),
                payload: 32,
                seconds: 20,
                ..SimOpts::default()
            };
            let argv: Vec<String> = ["sim", "--mode", mode]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let Command::Sim(parsed) = parse_args(&argv).unwrap() else {
                panic!()
            };
            let merged = SimOpts {
                mode: parsed.mode,
                ..opts
            };
            // MMO devices need the matching algorithm for realism but any
            // algorithm is legal; just run it.
            commands::sim(&merged).unwrap_or_else(|e| panic!("{device}/{mode}: {e}"));
        }
    }
}
