//! `alpha` — command-line tooling for the ALPHA protocol.

use alpha_cli::{args, commands, parse_args, Command};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", args::usage());
            std::process::exit(2);
        }
    };
    let result = match &cmd {
        Command::Help => {
            print!("{}", args::usage());
            Ok(())
        }
        Command::Keygen { scheme, out, bits } => commands::keygen(scheme, out, *bits),
        Command::Listen {
            bind,
            opts,
            seconds,
        } => commands::listen(bind, opts, *seconds),
        Command::Send {
            peer,
            messages,
            opts,
            mode,
            bind,
        } => commands::send(peer, messages, opts, *mode, bind),
        Command::Relay {
            bind,
            left,
            right,
            seconds,
            strict,
        } => commands::relay(bind, left, right, *seconds, *strict),
        Command::Sim(opts) => commands::sim(opts),
        Command::Trace { file } => commands::trace_summary(file),
        Command::EngineServe {
            bind,
            opts,
            workers,
            shards,
            seconds,
            s1_budget,
            max_buffered,
            route,
            adapt,
            hibernate_after_ms,
            frozen_budget,
        } => commands::engine_serve(
            bind,
            opts,
            *workers,
            *shards,
            *seconds,
            *s1_budget,
            *max_buffered,
            route,
            *adapt,
            *hibernate_after_ms,
            *frozen_budget,
        ),
        Command::EngineStats {
            addr,
            timeout_ms,
            json,
        } => commands::engine_stats(addr, *timeout_ms, *json),
        Command::MeshServe {
            bind,
            opts,
            workers,
            seconds,
            upstreams,
            next_hops,
            sources,
            probe_ms,
            peer_budget,
            open,
        } => commands::mesh_serve(
            bind,
            opts,
            *workers,
            *seconds,
            upstreams,
            next_hops,
            sources,
            *probe_ms,
            *peer_budget,
            *open,
        ),
        Command::MeshPeers {
            addr,
            timeout_ms,
            json,
        } => commands::mesh_peers(addr, *timeout_ms, *json),
        Command::Loadgen {
            workers,
            senders,
            flows,
            payload,
            seconds,
            shards,
            quick,
            json,
        } => commands::loadgen(
            *workers, *senders, *flows, *payload, *seconds, *shards, *quick, *json,
        ),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
