//! Subcommand implementations.

use std::time::Duration;

use alpha_core::{Config, RelayConfig};
use alpha_pk::PrivateKey;
use alpha_sim::{
    protected_path, App, DeviceModel, LinkConfig, PacketKind, SenderApp, Simulator, Trace,
    TraceEvent,
};
use alpha_transport::{HandshakeAuth, UdpHost, UdpRelay};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::args::{ProtoOpts, SimOpts};

/// Top-level error type: every failure is a printable message.
pub type CliError = Box<dyn std::error::Error>;

fn config_from(opts: &ProtoOpts) -> Config {
    Config::new(opts.alg)
        .with_reliability(opts.reliability)
        .with_mac_scheme(opts.mac)
        .with_chain_len(1024)
}

fn load_identity(path: &Option<String>) -> Result<Option<PrivateKey>, CliError> {
    match path {
        None => Ok(None),
        Some(p) => {
            let bytes = std::fs::read(p)?;
            let key = PrivateKey::from_bytes(&bytes)
                .ok_or_else(|| format!("{p}: not a valid identity file"))?;
            Ok(Some(key))
        }
    }
}

/// `alpha keygen`.
pub fn keygen(scheme: &str, out: &str, bits: usize) -> Result<(), CliError> {
    let mut rng = StdRng::from_entropy();
    let key = match scheme {
        "rsa" => {
            eprintln!("generating RSA-{bits} key…");
            PrivateKey::Rsa(alpha_pk::rsa::RsaPrivateKey::generate(bits, &mut rng))
        }
        "ecdsa" => PrivateKey::Ecdsa(alpha_pk::ecdsa::EcdsaPrivateKey::generate(&mut rng)),
        other => return Err(format!("unknown scheme '{other}'").into()),
    };
    std::fs::write(out, key.to_bytes())?;
    let pk = key.as_signer().verifying_key();
    println!(
        "wrote {scheme} identity to {out} ({} key bytes, public key {} bytes)",
        key.to_bytes().len(),
        pk.to_bytes().len()
    );
    Ok(())
}

/// `alpha listen`.
pub fn listen(bind: &str, opts: &ProtoOpts, seconds: u64) -> Result<(), CliError> {
    let cfg = config_from(opts);
    let identity = load_identity(&opts.identity)?;
    println!(
        "listening on {bind} for {seconds}s ({}, {:?})",
        opts.alg, opts.reliability
    );
    let auth = HandshakeAuth {
        identity: identity.as_ref().map(|k| k.as_signer()),
        require_peer: opts.require_peer_auth,
    };
    let mut host = UdpHost::accept_with(cfg, bind, Duration::from_secs(seconds), auth)?;
    match host.peer_key() {
        Some(k) => println!(
            "association established; peer identity verified ({} key bytes)",
            k.to_bytes().len()
        ),
        None => println!("association established (anonymous peer)"),
    }
    let delivered = host.serve(Duration::from_secs(seconds))?;
    for (i, msg) in delivered.iter().enumerate() {
        match std::str::from_utf8(msg) {
            Ok(text) => println!("[{i}] {text}"),
            Err(_) => println!("[{i}] {} bytes (binary)", msg.len()),
        }
    }
    println!("{} verified message(s) delivered", delivered.len());
    Ok(())
}

/// `alpha send`.
pub fn send(
    peer: &str,
    messages: &[String],
    opts: &ProtoOpts,
    mode: alpha_core::Mode,
    bind: &str,
) -> Result<(), CliError> {
    let cfg = config_from(opts);
    let identity = load_identity(&opts.identity)?;
    println!("connecting to {peer}…");
    let auth = HandshakeAuth {
        identity: identity.as_ref().map(|k| k.as_signer()),
        require_peer: opts.require_peer_auth,
    };
    let mut host = UdpHost::connect_with(
        cfg,
        rand::random(),
        bind,
        peer,
        Duration::from_secs(10),
        auth,
    )?;
    if host.peer_key().is_some() {
        println!("peer identity verified");
    }
    let refs: Vec<&[u8]> = messages.iter().map(|m| m.as_bytes()).collect();
    host.send_batch(&refs, mode, Duration::from_secs(15))?;
    println!("{} message(s) dispatched in mode {mode:?}", messages.len());
    Ok(())
}

/// `alpha relay`.
pub fn relay(
    bind: &str,
    left: &str,
    right: &str,
    seconds: u64,
    strict: bool,
) -> Result<(), CliError> {
    let left: std::net::SocketAddr = left.parse()?;
    let right: std::net::SocketAddr = right.parse()?;
    let cfg = RelayConfig {
        forward_unknown: !strict,
        ..RelayConfig::default()
    };
    let mut relay = UdpRelay::new(bind, left, right, cfg)?;
    println!(
        "relaying {left} <-> {right} on {} for {seconds}s (strict={strict})",
        relay.local_addr()?
    );
    relay.run_for(Duration::from_secs(seconds))?;
    println!(
        "forwarded {} datagrams, dropped {}, verified {} payload(s) in transit:",
        relay.forwarded,
        relay.dropped,
        relay.extracted.len()
    );
    for p in &relay.extracted {
        match std::str::from_utf8(p) {
            Ok(text) => println!("  {text}"),
            Err(_) => println!("  {} bytes (binary)", p.len()),
        }
    }
    Ok(())
}

/// `alpha trace`.
pub fn trace_summary(file: &str) -> Result<(), CliError> {
    let text = if file == "-" {
        use std::io::Read as _;
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        s
    } else {
        std::fs::read_to_string(file)?
    };
    let trace = Trace::from_json_lines(&text).ok_or("not a valid JSON-lines trace")?;
    let mut transmits = 0u64;
    let mut losses = 0u64;
    let mut bytes_total = 0u64;
    let mut first = u64::MAX;
    let mut last = 0u64;
    for e in trace.entries() {
        first = first.min(e.at_us);
        last = last.max(e.at_us);
        match &e.event {
            TraceEvent::Transmit { bytes, .. } => {
                transmits += 1;
                bytes_total += *bytes as u64;
            }
            TraceEvent::Lost { .. } => losses += 1,
        }
    }
    println!(
        "trace: {} entries over {:.3}s virtual time",
        trace.len(),
        last.saturating_sub(first.min(last)) as f64 / 1e6
    );
    println!("transmissions: {transmits} ({bytes_total} bytes), link losses: {losses}");
    for kind in [
        PacketKind::Handshake,
        PacketKind::S1,
        PacketKind::A1,
        PacketKind::S2,
        PacketKind::A2,
        PacketKind::Bundle,
        PacketKind::Unparseable,
    ] {
        let n = trace.count_kind(kind);
        if n > 0 {
            println!("  {kind:?}: {n}");
        }
    }
    Ok(())
}

fn device_by_name(name: &str) -> Result<DeviceModel, CliError> {
    Ok(match name {
        "xeon" => DeviceModel::xeon(),
        "n770" | "nokia770" => DeviceModel::nokia770(),
        "ar2315" | "ar" => DeviceModel::ar2315(),
        "bcm5365" | "bcm" => DeviceModel::bcm5365(),
        "geode" | "geode_lx" => DeviceModel::geode_lx(),
        "cc2430" | "sensor" => DeviceModel::cc2430(),
        other => return Err(format!("unknown device '{other}'").into()),
    })
}

/// `alpha sim`.
pub fn sim(o: &SimOpts) -> Result<(), CliError> {
    let device = device_by_name(&o.device)?;
    let mut sim = Simulator::new(o.seed);
    if o.trace {
        sim.enable_trace();
    }
    let cfg = config_from(&o.proto).with_chain_len(8192);
    let link = LinkConfig::mesh().with_loss(o.loss);
    let app = App::Sender(SenderApp::new(o.mode, o.batch, o.payload, o.messages));
    let (s, relays, v) = protected_path(&mut sim, o.relays, device, device, link, cfg, app);
    sim.run_until(alpha_core::Timestamp::from_millis(o.seconds * 1000));

    let m = &sim.metrics[v];
    println!(
        "scenario: {} relays ({}), mode {:?}, {} x {} B, loss {:.1}%/link",
        o.relays,
        device.name,
        o.mode,
        o.messages,
        o.payload,
        o.loss * 100.0
    );
    println!(
        "delivered: {}/{} messages ({} bytes) in {:.1}s virtual time",
        m.delivered_msgs,
        o.messages,
        m.delivered_bytes,
        sim.now().micros() as f64 / 1e6
    );
    if !m.latencies_us.is_empty() {
        let mut lat = m.latencies_us.clone();
        lat.sort_unstable();
        println!(
            "latency: median {:.1} ms, p95 {:.1} ms",
            lat[lat.len() / 2] as f64 / 1e3,
            lat[lat.len() * 95 / 100] as f64 / 1e3
        );
    }
    let seconds = sim.now().micros() as f64 / 1e6;
    println!(
        "goodput: {:.1} kbit/s end-to-end",
        m.delivered_bytes as f64 * 8.0 / seconds / 1e3
    );
    for (i, r) in relays.iter().enumerate() {
        let rm = &sim.metrics[*r];
        println!(
            "relay {i}: forwarded {}, verified {}, drops {:?}, cpu {:.1} ms, energy {:.1} mJ",
            rm.forwarded,
            rm.extracted_payloads,
            rm.drops,
            rm.cpu_ns / 1e6,
            rm.energy_uj / 1e3
        );
    }
    let sm = &sim.metrics[s];
    println!(
        "sender: cpu {:.1} ms, energy {:.1} mJ; receiver drops {:?}",
        sm.cpu_ns / 1e6,
        sm.energy_uj / 1e3,
        m.drops
    );
    if let Some(trace) = sim.trace() {
        print!("{}", trace.to_json_lines());
    }
    Ok(())
}

/// `alpha engine serve`.
#[allow(clippy::too_many_arguments)]
pub fn engine_serve(
    bind: &str,
    opts: &ProtoOpts,
    workers: usize,
    shards: usize,
    seconds: u64,
    s1_budget: u64,
    max_buffered: u64,
    route: &Option<(String, String)>,
    adapt: bool,
    hibernate_after_ms: u64,
    frozen_budget: u64,
) -> Result<(), CliError> {
    let mut ecfg = alpha_engine::EngineConfig::new(config_from(opts)).with_shards(shards);
    if adapt {
        ecfg = ecfg.with_adapt(alpha_engine::AdaptConfig::default());
    }
    ecfg.s1_bytes_per_sec = (s1_budget > 0).then_some(s1_budget);
    ecfg.max_buffered_bytes = (max_buffered > 0).then_some(max_buffered);
    ecfg.hibernate_after = (hibernate_after_ms > 0).then_some(hibernate_after_ms * 1_000);
    ecfg.frozen_budget = (frozen_budget > 0).then_some(frozen_budget);
    let core = alpha_engine::EngineCore::new(ecfg);
    if let Some((l, r)) = route {
        let l: std::net::SocketAddr = l.parse()?;
        let r: std::net::SocketAddr = r.parse()?;
        core.add_route(l, r);
        println!("relaying {l} <-> {r}");
    }
    if hibernate_after_ms > 0 {
        println!("hibernating flows idle for {hibernate_after_ms} ms (budget {frozen_budget} B)");
    }
    let engine = alpha_transport::Engine::bind(bind, core, workers)?;
    println!(
        "engine on {} ({workers} worker(s), {shards} shard(s)); query with 'alpha engine stats'",
        engine.local_addr()?
    );
    let started = std::time::Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(500));
        if seconds > 0 && started.elapsed() >= Duration::from_secs(seconds) {
            break;
        }
    }
    println!("{}", engine.stats_json());
    engine.shutdown();
    Ok(())
}

fn parse_addrs(list: &[String]) -> Result<Vec<std::net::SocketAddr>, CliError> {
    list.iter()
        .map(|a| a.parse().map_err(|e| format!("{a}: {e}").into()))
        .collect()
}

/// `alpha mesh serve`.
#[allow(clippy::too_many_arguments)]
pub fn mesh_serve(
    bind: &str,
    opts: &ProtoOpts,
    workers: usize,
    seconds: u64,
    upstreams: &[String],
    next_hops: &[String],
    sources: &[String],
    probe_ms: u64,
    peer_budget: u64,
    open: bool,
) -> Result<(), CliError> {
    let listen: std::net::SocketAddr = bind.parse()?;
    let ecfg = alpha_engine::EngineConfig::new(config_from(opts));
    let mut cfg = alpha_mesh::MeshNodeConfig::new(listen, ecfg);
    cfg.workers = workers.max(1);
    cfg.upstreams = parse_addrs(upstreams)?;
    cfg.next_hops = parse_addrs(next_hops)?;
    cfg.route_sources = parse_addrs(sources)?;
    cfg.enforce = !open;
    cfg.mesh.probe_interval_us = probe_ms.max(1) * 1000;
    cfg.mesh.peer_bytes_per_sec = (peer_budget > 0).then_some(peer_budget);
    let node = alpha_mesh::MeshNode::spawn(cfg)?;
    println!(
        "mesh relay on {} ({} upstream(s), {} next hop(s), enforce={}); \
         query with 'alpha mesh peers'",
        node.local_addr()?,
        upstreams.len(),
        next_hops.len(),
        !open,
    );
    let started = std::time::Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(500));
        if seconds > 0 && started.elapsed() >= Duration::from_secs(seconds) {
            break;
        }
    }
    println!("{}", node.peers_json());
    node.shutdown();
    Ok(())
}

/// `alpha mesh peers`.
pub fn mesh_peers(addr: &str, timeout_ms: u64, raw_json: bool) -> Result<(), CliError> {
    use std::net::ToSocketAddrs;
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| format!("cannot resolve '{addr}'"))?;
    let json = alpha_transport::query_stats(addr, Duration::from_millis(timeout_ms))?;
    let snap: serde_json::Value =
        serde_json::from_str(&json).map_err(|e| format!("relay sent malformed stats: {e}"))?;
    let mesh = snap
        .get("metrics")
        .and_then(|m| m.get("mesh"))
        .ok_or("relay reports no mesh state (is it a plain engine?)")?;
    if raw_json {
        println!("{}", serde_json::to_string(mesh)?);
        return Ok(());
    }
    print!("{}", render_mesh_peers(mesh));
    Ok(())
}

/// `alpha loadgen` — saturate a live loopback engine and report
/// verified-S2 throughput.
#[allow(clippy::too_many_arguments)]
pub fn loadgen(
    workers: usize,
    senders: usize,
    flows: usize,
    payload: usize,
    seconds: f64,
    shards: usize,
    quick: bool,
    raw_json: bool,
) -> Result<(), CliError> {
    use alpha_transport::loadgen::{host_cores, run, LoadgenConfig};
    let base = if quick {
        LoadgenConfig::quick()
    } else {
        LoadgenConfig::default()
    };
    let cfg = LoadgenConfig {
        workers: workers.max(1),
        senders: senders.max(1),
        flows_per_sender: flows.max(1),
        payload,
        duration: Duration::from_secs_f64(seconds.max(0.05)),
        shards: shards.max(1),
        ..base
    };
    if !raw_json {
        eprintln!(
            "loadgen: {} workers, {} senders x {} flows, {} B payload, {:.1}s window \
             (host has {} core(s))…",
            cfg.workers,
            cfg.senders,
            cfg.flows_per_sender,
            cfg.payload,
            cfg.duration.as_secs_f64(),
            host_cores(),
        );
    }
    let report = run(&cfg)?;
    if raw_json {
        println!("{}", report.json());
        return Ok(());
    }
    println!(
        "live verified-S2 throughput: {:.0}/s ({} exchanges in {:.2}s, {} flows, {} workers)",
        report.s2_per_sec,
        report.s2_verified,
        report.elapsed.as_secs_f64(),
        report.flows,
        report.workers,
    );
    println!(
        "handoff: in={} out={} overflow={}  lock_contended={}  reuseport={}  backend={}",
        report.io.handoff_in,
        report.io.handoff_out,
        report.io.handoff_overflow,
        report.lock_contended,
        report.reuseport,
        report.udp_backend,
    );
    println!(
        "wait: backend={}  idle_wakeups/s={:.1}  handoff_wait p50={}µs p99={}µs ({} sample(s))",
        report.wait_backend,
        report.idle_wakeups_per_sec,
        report.handoff_p50_us,
        report.handoff_p99_us,
        report.handoff_samples,
    );
    println!(
        "syscalls: {:.4}/datagram (recv={} send={} wait={})  send_retries={}",
        report.io.syscalls_per_datagram(),
        report.io.recv_calls,
        report.io.send_calls,
        report.io.wait_calls,
        report.io.send_retries,
    );
    if report.host_cores < 2 {
        println!("note: host has 1 core; this number is concurrency, not parallel speedup");
    }
    if report.sign_errors > 0 {
        return Err(format!("{} client-side signing errors", report.sign_errors).into());
    }
    if report.s2_verified == 0 {
        return Err("live engine verified no S2 exchanges".into());
    }
    Ok(())
}

/// `alpha engine stats`.
pub fn engine_stats(addr: &str, timeout_ms: u64, raw_json: bool) -> Result<(), CliError> {
    use std::net::ToSocketAddrs;
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| format!("cannot resolve '{addr}'"))?;
    let json = alpha_transport::query_stats(addr, Duration::from_millis(timeout_ms))?;
    if raw_json {
        println!("{json}");
        return Ok(());
    }
    let snap: serde_json::Value =
        serde_json::from_str(&json).map_err(|e| format!("engine sent malformed stats: {e}"))?;
    print!("{}", render_engine_stats(&snap));
    Ok(())
}

/// Human-readable rendering of an engine stats snapshot, including the
/// per-flow adaptation state carried in `adapt_flows`.
fn render_engine_stats(snap: &serde_json::Value) -> String {
    use std::fmt::Write as _;
    let u = |v: Option<&serde_json::Value>| v.and_then(serde_json::Value::as_u64).unwrap_or(0);
    let f = |v: Option<&serde_json::Value>| v.and_then(serde_json::Value::as_f64).unwrap_or(0.0);
    let mut out = String::new();
    let backend = snap
        .get("digest_backend")
        .and_then(serde_json::Value::as_str)
        .unwrap_or("unknown");
    let udp_backend = snap
        .get("udp_backend")
        .and_then(serde_json::Value::as_str)
        .unwrap_or("none");
    let wait_backend = snap
        .get("wait_backend")
        .and_then(serde_json::Value::as_str)
        .unwrap_or("none");
    let chain_storage = snap
        .get("chain_storage")
        .and_then(serde_json::Value::as_str)
        .unwrap_or("unknown");
    let _ = writeln!(
        out,
        "engine: {} flow(s) across {} shard(s), {} buffered byte(s), digest backend {}, \
         udp backend {}, wait backend {}, chain storage {}",
        u(snap.get("flows")),
        u(snap.get("shards")),
        u(snap.get("buffered_bytes")),
        backend,
        udp_backend,
        wait_backend,
        chain_storage,
    );
    if let Some(serde_json::Value::Object(metrics)) = snap.get("metrics") {
        let nonzero: Vec<String> = metrics
            .iter()
            .filter(|(_, v)| v.as_u64().is_some_and(|n| n > 0))
            .map(|(k, v)| format!("{k}={}", v.as_u64().unwrap_or(0)))
            .collect();
        if nonzero.is_empty() {
            let _ = writeln!(out, "metrics: all counters zero");
        } else {
            let _ = writeln!(out, "metrics: {}", nonzero.join(" "));
        }
        if let Some(io) = metrics.get("io") {
            let iu = |k: &str| u(io.get(k));
            if iu("recv_calls") + iu("send_calls") > 0 {
                let workers = io
                    .get("per_worker")
                    .and_then(serde_json::Value::as_array)
                    .map_or(0, |rows| rows.len());
                let _ = writeln!(
                    out,
                    "io: {} datagram(s) in / {} recv syscall(s) ({:.2} per call), \
                     {} out / {} send syscall(s), eagain={} partial_sends={} worker(s)={} \
                     wakeups={} read_timeout_errors={}",
                    iu("datagrams_in"),
                    iu("recv_calls"),
                    f(io.get("datagrams_per_recv_call")),
                    iu("datagrams_out"),
                    iu("send_calls"),
                    iu("eagain"),
                    iu("partial_sends"),
                    workers,
                    iu("wakeups"),
                    iu("read_timeout_errors"),
                );
            }
        }
        if let Some(store) = metrics.get("store") {
            let su = |k: &str| u(store.get(k));
            if su("frozen") + su("thawed") + su("evicted") + su("flows_hibernated") > 0 {
                let _ = writeln!(
                    out,
                    "store: {} hibernated flow(s) in {} frozen byte(s); frozen={} thawed={} \
                     evicted={} thaw_rejected={} renewals={}/{} deferred, thaw p50={}µs p99={}µs",
                    su("flows_hibernated"),
                    su("bytes_frozen"),
                    su("frozen"),
                    su("thawed"),
                    su("evicted"),
                    su("thaw_rejected"),
                    su("renewals_started"),
                    su("renewals_deferred"),
                    u(store.get("thaw_latency_us").and_then(|h| h.get("p50_us"))),
                    u(store.get("thaw_latency_us").and_then(|h| h.get("p99_us"))),
                );
            }
        }
    }
    if let Some(mesh) = snap.get("metrics").and_then(|m| m.get("mesh")) {
        let peers = mesh
            .get("per_peer")
            .and_then(serde_json::Value::as_array)
            .map_or(0, <[serde_json::Value]>::len);
        if peers > 0 || u(mesh.get("forwarded")) + u(mesh.get("upstream_rejects")) > 0 {
            out.push_str(&render_mesh_peers(mesh));
        }
    }
    match snap.get("adapt_flows") {
        Some(serde_json::Value::Array(rows)) if !rows.is_empty() => {
            let _ = writeln!(out, "adaptive flows ({}):", rows.len());
            for row in rows {
                let adapt = row.get("adapt");
                let est = adapt.and_then(|a| a.get("estimator"));
                let _ = writeln!(
                    out,
                    "  {} assoc={} mode={} n={} switches={} loss={:.3} srtt={:.1}ms \
                     rto={:.0}ms exchanges={} abandoned={} goodput={:.2} B/authB",
                    row.get("peer")
                        .and_then(serde_json::Value::as_str)
                        .unwrap_or("?"),
                    u(row.get("assoc_id")),
                    adapt
                        .and_then(|a| a.get("mode"))
                        .and_then(serde_json::Value::as_str)
                        .unwrap_or("?"),
                    u(adapt.and_then(|a| a.get("n"))),
                    u(adapt.and_then(|a| a.get("switches"))),
                    f(est.and_then(|e| e.get("loss"))),
                    f(est.and_then(|e| e.get("srtt_us"))) / 1e3,
                    f(est.and_then(|e| e.get("rto_us"))) / 1e3,
                    u(est.and_then(|e| e.get("exchanges"))),
                    u(est.and_then(|e| e.get("abandoned"))),
                    f(est.and_then(|e| e.get("goodput_per_auth_byte"))),
                );
            }
        }
        _ => {
            let _ = writeln!(
                out,
                "adaptive flows: none (engine runs without --adapt state)"
            );
        }
    }
    out
}

/// Human-readable rendering of the `metrics.mesh` section of a stats
/// snapshot: aggregate hop counters plus one line per registered peer.
fn render_mesh_peers(mesh: &serde_json::Value) -> String {
    use std::fmt::Write as _;
    let u = |v: Option<&serde_json::Value>| v.and_then(serde_json::Value::as_u64).unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mesh: forwarded={} upstream_rejects={} failovers={} replicas_absorbed={}",
        u(mesh.get("forwarded")),
        u(mesh.get("upstream_rejects")),
        u(mesh.get("failovers")),
        u(mesh.get("replicas_absorbed")),
    );
    match mesh.get("per_peer") {
        Some(serde_json::Value::Array(rows)) if !rows.is_empty() => {
            let _ = writeln!(out, "mesh peers ({}):", rows.len());
            for row in rows {
                let s = |k: &str| {
                    row.get(k)
                        .and_then(serde_json::Value::as_str)
                        .unwrap_or("?")
                };
                let srtt = u(row.get("srtt_us"));
                let srtt = if srtt == 0 {
                    "-".to_owned()
                } else {
                    format!("{:.1}ms", srtt as f64 / 1e3)
                };
                let _ = writeln!(
                    out,
                    "  {} health={} srtt={} in={} out={} probes={} pongs={}",
                    s("peer"),
                    s("health"),
                    srtt,
                    u(row.get("datagrams_in")),
                    u(row.get("datagrams_out")),
                    u(row.get("probes_sent")),
                    u(row.get("pongs_received")),
                );
            }
        }
        _ => {
            let _ = writeln!(out, "mesh peers: none registered");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_stats_render_summarizes_adapt_flows() {
        let snap = serde_json::json!({
            "flows": 2u64,
            "shards": 8u64,
            "buffered_bytes": 0u64,
            "digest_backend": "lanes4",
            "udp_backend": "mmsg",
            "wait_backend": "epoll",
            "metrics": {
                "verified": 10u64,
                "dropped": 0u64,
                "adapt_switches": 3u64,
                "io": {
                    "udp_backend": "mmsg",
                    "wait_backend": "epoll",
                    "recv_calls": 4u64,
                    "send_calls": 2u64,
                    "datagrams_in": 32u64,
                    "datagrams_out": 16u64,
                    "eagain": 1u64,
                    "partial_sends": 0u64,
                    "wakeups": 9u64,
                    "read_timeout_errors": 0u64,
                    "datagrams_per_recv_call": 8.0,
                    "per_worker": [{}, {}]
                }
            },
            "adapt_flows": [{
                "peer": "10.0.0.1:700",
                "assoc_id": 21u64,
                "adapt": {
                    "mode": "merkle",
                    "n": 8u64,
                    "switches": 12u64,
                    "estimator": {
                        "loss": 0.25,
                        "srtt_us": 4200u64,
                        "rto_us": 50000u64,
                        "exchanges": 34u64,
                        "abandoned": 3u64,
                        "goodput_per_auth_byte": 1.93
                    }
                }
            }]
        });
        let text = render_engine_stats(&snap);
        assert!(text.contains("2 flow(s) across 8 shard(s)"), "{text}");
        assert!(text.contains("digest backend lanes4"), "{text}");
        assert!(text.contains("udp backend mmsg"), "{text}");
        assert!(text.contains("wait backend epoll"), "{text}");
        assert!(
            text.contains("io: 32 datagram(s) in / 4 recv syscall(s) (8.00 per call)"),
            "{text}"
        );
        assert!(text.contains("worker(s)=2"), "{text}");
        assert!(text.contains("wakeups=9"), "{text}");
        assert!(text.contains("verified=10"), "{text}");
        assert!(text.contains("adapt_switches=3"), "{text}");
        assert!(
            !text.contains("dropped=0"),
            "zero counters stay hidden: {text}"
        );
        assert!(
            text.contains("10.0.0.1:700 assoc=21 mode=merkle n=8 switches=12"),
            "{text}"
        );
        assert!(text.contains("loss=0.250"), "{text}");
        assert!(text.contains("srtt=4.2ms"), "{text}");

        let empty = serde_json::json!({
            "flows": 0u64,
            "shards": 1u64,
            "buffered_bytes": 0u64,
            "metrics": {},
            "adapt_flows": []
        });
        let text = render_engine_stats(&empty);
        assert!(text.contains("adaptive flows: none"), "{text}");
        assert!(text.contains("metrics: all counters zero"), "{text}");
        assert!(
            !text.contains("mesh:"),
            "non-mesh engines stay quiet about the mesh: {text}"
        );
    }

    #[test]
    fn mesh_peers_render_lists_health_and_hop_counters() {
        let mesh = serde_json::json!({
            "forwarded": 120u64,
            "upstream_rejects": 4u64,
            "failovers": 1u64,
            "replicas_absorbed": 2u64,
            "per_peer": [
                {
                    "peer": "10.0.0.9:7200",
                    "datagrams_in": 0u64,
                    "datagrams_out": 120u64,
                    "probes_sent": 50u64,
                    "pongs_received": 49u64,
                    "health": "up",
                    "srtt_us": 1800u64
                },
                {
                    "peer": "10.0.0.10:7200",
                    "datagrams_in": 0u64,
                    "datagrams_out": 0u64,
                    "probes_sent": 12u64,
                    "pongs_received": 0u64,
                    "health": "down",
                    "srtt_us": 0u64
                }
            ]
        });
        let text = render_mesh_peers(&mesh);
        assert!(
            text.contains("forwarded=120 upstream_rejects=4 failovers=1 replicas_absorbed=2"),
            "{text}"
        );
        assert!(text.contains("mesh peers (2):"), "{text}");
        assert!(
            text.contains("10.0.0.9:7200 health=up srtt=1.8ms in=0 out=120 probes=50 pongs=49"),
            "{text}"
        );
        assert!(
            text.contains("10.0.0.10:7200 health=down srtt=- "),
            "unsampled srtt renders as '-': {text}"
        );

        // The same renderer rides the engine-stats summary when the
        // snapshot carries a mesh section with registered peers.
        let snap = serde_json::json!({
            "flows": 1u64,
            "shards": 1u64,
            "buffered_bytes": 0u64,
            "metrics": { "mesh": mesh },
            "adapt_flows": []
        });
        let text = render_engine_stats(&snap);
        assert!(text.contains("mesh peers (2):"), "{text}");
    }
}
