//! Hand-rolled argument parsing (no CLI crates on the approved list).
//!
//! Grammar: `alpha <subcommand> [positional…] [--flag value…]`.
//! Every flag takes exactly one value except boolean switches, which are
//! listed per subcommand.

use std::collections::HashMap;

use alpha_core::{MacScheme, Mode, Reliability};
use alpha_crypto::Algorithm;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `alpha keygen --scheme rsa|ecdsa --out FILE [--bits N]`
    Keygen {
        /// "rsa" or "ecdsa".
        scheme: String,
        /// Output file for the identity.
        out: String,
        /// RSA modulus bits (ignored for ecdsa).
        bits: usize,
    },
    /// `alpha listen BIND [--alg A] [--reliable] [--seconds N]
    ///  [--identity FILE] [--require-peer-auth]`
    Listen {
        /// Bind address, e.g. `0.0.0.0:7001`.
        bind: String,
        /// Protocol options.
        opts: ProtoOpts,
        /// Serve duration in seconds.
        seconds: u64,
    },
    /// `alpha send PEER MSG… [--alg A] [--reliable] [--mode base|c|m]
    ///  [--bind ADDR]`
    Send {
        /// Peer address.
        peer: String,
        /// Messages to send (one exchange).
        messages: Vec<String>,
        /// Protocol options.
        opts: ProtoOpts,
        /// Transfer mode.
        mode: Mode,
        /// Local bind address.
        bind: String,
    },
    /// `alpha relay BIND LEFT RIGHT [--seconds N] [--strict]`
    Relay {
        /// Bind address of the middlebox.
        bind: String,
        /// Address of the first host.
        left: String,
        /// Address of the second host.
        right: String,
        /// Run duration in seconds.
        seconds: u64,
        /// Drop traffic of unknown associations.
        strict: bool,
    },
    /// `alpha sim [--relays N] [--messages N] [--batch N] [--mode base|c|m]
    ///  [--loss P] [--alg A] [--reliable] [--device NAME] [--seconds N]
    ///  [--trace]`
    Sim(SimOpts),
    /// `alpha trace FILE` — summarize a JSON-lines packet trace produced
    /// by `alpha sim --trace`.
    Trace {
        /// Trace file path ("-" for stdin).
        file: String,
    },
    /// `alpha engine serve BIND [--workers N] [--shards N] [--seconds N]
    ///  [--alg A] [--mac hmac|prefix] [--reliable] [--s1-budget BYTES]
    ///  [--max-buffered BYTES] [--route LEFT=RIGHT] [--adapt]
    ///  [--hibernate-after MS] [--frozen-budget BYTES]`
    EngineServe {
        /// Bind address of the shared socket.
        bind: String,
        /// Protocol options for accepted associations.
        opts: ProtoOpts,
        /// Worker threads (shards are spread across them).
        workers: usize,
        /// Flow-table shards.
        shards: usize,
        /// Run duration in seconds (0 = forever).
        seconds: u64,
        /// Per-flow S1 admission budget in bytes/sec (0 = unlimited).
        s1_budget: u64,
        /// Global buffered-bytes valve (0 = unlimited).
        max_buffered: u64,
        /// Optional relay route `LEFT=RIGHT`: also verify-and-forward
        /// between these two addresses.
        route: Option<(String, String)>,
        /// Enable per-flow channel estimation and mode adaptation.
        adapt: bool,
        /// Freeze host flows idle for this many milliseconds into the
        /// hibernation store (0 = never hibernate).
        hibernate_after_ms: u64,
        /// Byte budget for frozen records; LRU-evicted beyond it
        /// (0 = unbounded).
        frozen_budget: u64,
    },
    /// `alpha engine stats ADDR [--timeout-ms N] [--json]` — query a
    /// running engine and print a human summary (or the raw JSON
    /// snapshot with `--json`), including per-flow adaptation state.
    EngineStats {
        /// Address of the engine's shared socket.
        addr: String,
        /// Reply timeout in milliseconds.
        timeout_ms: u64,
        /// Print the raw JSON snapshot instead of the summary.
        json: bool,
    },
    /// `alpha mesh serve BIND [--workers N] [--alg A] [--mac hmac|prefix]
    ///  [--reliable] [--upstream A,B,…] [--next-hop A,B,…] [--source A,B,…]
    ///  [--probe-ms N] [--peer-budget BYTES] [--seconds N] [--open]`
    MeshServe {
        /// Bind address of the relay's shared socket.
        bind: String,
        /// Protocol options for accepted associations.
        opts: ProtoOpts,
        /// Worker threads.
        workers: usize,
        /// Run duration in seconds (0 = forever).
        seconds: u64,
        /// Registered upstream peers (senders this relay accepts from).
        upstreams: Vec<String>,
        /// Downstream next hops; the first is primary, the rest standby.
        next_hops: Vec<String>,
        /// Source addresses routed toward the primary next hop.
        sources: Vec<String>,
        /// Liveness probe interval in milliseconds.
        probe_ms: u64,
        /// Per-peer S1 admission budget in bytes/sec (0 = unlimited).
        peer_budget: u64,
        /// Accept traffic from unregistered upstreams (disables the
        /// static-relay-set bypass defense; monitor-only).
        open: bool,
    },
    /// `alpha mesh peers ADDR [--timeout-ms N] [--json]` — query a
    /// running mesh relay and print its peer table (health, RTT,
    /// per-peer traffic) plus the hop counters.
    MeshPeers {
        /// Address of the relay's shared socket.
        addr: String,
        /// Reply timeout in milliseconds.
        timeout_ms: u64,
        /// Print the raw JSON snapshot instead of the table.
        json: bool,
    },
    /// `alpha loadgen [--workers N] [--senders N] [--flows N]
    ///  [--payload BYTES] [--seconds N] [--shards N] [--quick] [--json]`
    /// — saturate a live loopback engine and print verified-S2
    /// throughput.
    Loadgen {
        /// Server worker threads.
        workers: usize,
        /// Sender threads (each with its own socket and client engine).
        senders: usize,
        /// Concurrent flows per sender.
        flows: usize,
        /// Payload bytes per exchange.
        payload: usize,
        /// Measurement window in seconds (fractions allowed).
        seconds: f64,
        /// Server flow-table shards.
        shards: usize,
        /// Use the small sub-second CI preset as the baseline.
        quick: bool,
        /// Print the report as one JSON object instead of a summary.
        json: bool,
    },
    /// `alpha help` or `--help` anywhere.
    Help,
}

/// Options shared by the networking subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoOpts {
    /// Hash algorithm.
    pub alg: Algorithm,
    /// Delivery guarantee.
    pub reliability: Reliability,
    /// MAC construction.
    pub mac: MacScheme,
    /// Identity file for protected bootstrap.
    pub identity: Option<String>,
    /// Require the peer's handshake to be signed.
    pub require_peer_auth: bool,
}

impl Default for ProtoOpts {
    fn default() -> ProtoOpts {
        ProtoOpts {
            alg: Algorithm::Sha1,
            reliability: Reliability::Unreliable,
            mac: MacScheme::Hmac,
            identity: None,
            require_peer_auth: false,
        }
    }
}

/// Options for `alpha sim`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOpts {
    /// Number of relays on the path.
    pub relays: usize,
    /// Messages to deliver.
    pub messages: usize,
    /// Messages per exchange.
    pub batch: usize,
    /// Transfer mode.
    pub mode: Mode,
    /// Per-link loss probability.
    pub loss: f64,
    /// Protocol options.
    pub proto: ProtoOpts,
    /// Device model name (xeon, n770, ar2315, bcm5365, geode, cc2430).
    pub device: String,
    /// Virtual horizon in seconds.
    pub seconds: u64,
    /// Payload bytes per message.
    pub payload: usize,
    /// Print a JSON-lines packet trace to stdout.
    pub trace: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimOpts {
    fn default() -> SimOpts {
        SimOpts {
            relays: 2,
            messages: 100,
            batch: 10,
            mode: Mode::Cumulative,
            loss: 0.01,
            proto: ProtoOpts::default(),
            device: "ar2315".into(),
            seconds: 120,
            payload: 256,
            trace: false,
            seed: 1,
        }
    }
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Split args into positionals and `--flag [value]` pairs.
/// `switches` lists the flags that take no value.
fn split(
    args: &[String],
    switches: &[&str],
) -> Result<(Vec<String>, HashMap<String, String>), ParseError> {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if switches.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            } else {
                let Some(value) = args.get(i + 1) else {
                    return err(format!("--{name} needs a value"));
                };
                flags.insert(name.to_string(), value.clone());
                i += 2;
            }
        } else {
            pos.push(a.clone());
            i += 1;
        }
    }
    Ok((pos, flags))
}

fn parse_alg(s: &str) -> Result<Algorithm, ParseError> {
    match s {
        "sha1" => Ok(Algorithm::Sha1),
        "sha256" => Ok(Algorithm::Sha256),
        "mmo" => Ok(Algorithm::MmoAes),
        other => err(format!("unknown algorithm '{other}' (sha1|sha256|mmo)")),
    }
}

fn parse_mode(s: &str, batch: usize) -> Result<Mode, ParseError> {
    match s {
        "base" => Ok(Mode::Base),
        "c" | "cumulative" => Ok(Mode::Cumulative),
        "m" | "merkle" => Ok(Mode::Merkle),
        "cm" | "forest" => Ok(Mode::CumulativeMerkle {
            leaves_per_tree: batch.max(2) / 2,
        }),
        other => err(format!("unknown mode '{other}' (base|c|m|cm)")),
    }
}

fn proto_opts(flags: &HashMap<String, String>) -> Result<ProtoOpts, ParseError> {
    let mut o = ProtoOpts::default();
    if let Some(a) = flags.get("alg") {
        o.alg = parse_alg(a)?;
    }
    if flags.contains_key("reliable") {
        o.reliability = Reliability::Reliable;
    }
    if let Some(m) = flags.get("mac") {
        o.mac = match m.as_str() {
            "hmac" => MacScheme::Hmac,
            "prefix" => MacScheme::Prefix,
            other => return err(format!("unknown mac scheme '{other}' (hmac|prefix)")),
        };
    }
    o.identity = flags.get("identity").cloned();
    o.require_peer_auth = flags.contains_key("require-peer-auth");
    Ok(o)
}

fn get_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, ParseError> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| ParseError(format!("--{name}: bad value '{v}'"))),
    }
}

/// Split a comma-separated flag value into its (non-empty) entries.
fn addr_list(flags: &HashMap<String, String>, name: &str) -> Vec<String> {
    flags.get(name).map_or_else(Vec::new, |v| {
        v.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    })
}

/// Parse a full argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, ParseError> {
    if args.is_empty()
        || args
            .iter()
            .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        return Ok(Command::Help);
    }
    let sub = args[0].as_str();
    let rest = &args[1..];
    match sub {
        "keygen" => {
            let (_pos, flags) = split(rest, &[])?;
            let scheme = flags
                .get("scheme")
                .cloned()
                .unwrap_or_else(|| "ecdsa".into());
            if scheme != "rsa" && scheme != "ecdsa" {
                return err(format!("unknown scheme '{scheme}' (rsa|ecdsa)"));
            }
            let Some(out) = flags.get("out").cloned() else {
                return err("keygen needs --out FILE");
            };
            Ok(Command::Keygen {
                scheme,
                out,
                bits: get_num(&flags, "bits", 1024)?,
            })
        }
        "listen" => {
            let (pos, flags) = split(rest, &["reliable", "require-peer-auth"])?;
            let [bind] = pos.as_slice() else {
                return err("listen needs exactly one bind address");
            };
            Ok(Command::Listen {
                bind: bind.clone(),
                opts: proto_opts(&flags)?,
                seconds: get_num(&flags, "seconds", 60)?,
            })
        }
        "send" => {
            let (pos, flags) = split(rest, &["reliable", "require-peer-auth"])?;
            let Some((peer, messages)) = pos.split_first() else {
                return err("send needs a peer address and at least one message");
            };
            if messages.is_empty() {
                return err("send needs at least one message");
            }
            let batch = messages.len();
            let mode = match flags.get("mode") {
                Some(m) => parse_mode(m, batch)?,
                None if batch == 1 => Mode::Base,
                None => Mode::Cumulative,
            };
            Ok(Command::Send {
                peer: peer.clone(),
                messages: messages.to_vec(),
                opts: proto_opts(&flags)?,
                mode,
                bind: flags
                    .get("bind")
                    .cloned()
                    .unwrap_or_else(|| "0.0.0.0:0".into()),
            })
        }
        "relay" => {
            let (pos, flags) = split(rest, &["strict"])?;
            let [bind, left, right] = pos.as_slice() else {
                return err("relay needs BIND LEFT RIGHT addresses");
            };
            Ok(Command::Relay {
                bind: bind.clone(),
                left: left.clone(),
                right: right.clone(),
                seconds: get_num(&flags, "seconds", 60)?,
                strict: flags.contains_key("strict"),
            })
        }
        "engine" => {
            let Some((verb, rest)) = rest.split_first() else {
                return err("engine needs a verb: serve|stats");
            };
            match verb.as_str() {
                "serve" => {
                    let (pos, flags) = split(rest, &["reliable", "require-peer-auth", "adapt"])?;
                    let [bind] = pos.as_slice() else {
                        return err("engine serve needs exactly one bind address");
                    };
                    let route = match flags.get("route") {
                        None => None,
                        Some(r) => {
                            let Some((l, rt)) = r.split_once('=') else {
                                return err("--route wants LEFT=RIGHT addresses");
                            };
                            Some((l.to_string(), rt.to_string()))
                        }
                    };
                    Ok(Command::EngineServe {
                        bind: bind.clone(),
                        opts: proto_opts(&flags)?,
                        workers: get_num(&flags, "workers", 4)?,
                        shards: get_num(&flags, "shards", 8)?,
                        seconds: get_num(&flags, "seconds", 0)?,
                        s1_budget: get_num(&flags, "s1-budget", 1 << 20)?,
                        max_buffered: get_num(&flags, "max-buffered", 64 << 20)?,
                        route,
                        adapt: flags.contains_key("adapt"),
                        hibernate_after_ms: get_num(&flags, "hibernate-after", 0)?,
                        frozen_budget: get_num(&flags, "frozen-budget", 256 << 20)?,
                    })
                }
                "stats" => {
                    let (pos, flags) = split(rest, &["json"])?;
                    let [addr] = pos.as_slice() else {
                        return err("engine stats needs exactly one engine address");
                    };
                    Ok(Command::EngineStats {
                        addr: addr.clone(),
                        timeout_ms: get_num(&flags, "timeout-ms", 2000)?,
                        json: flags.contains_key("json"),
                    })
                }
                other => err(format!("unknown engine verb '{other}' (serve|stats)")),
            }
        }
        "mesh" => {
            let Some((verb, rest)) = rest.split_first() else {
                return err("mesh needs a verb: serve|peers");
            };
            match verb.as_str() {
                "serve" => {
                    let (pos, flags) = split(rest, &["reliable", "require-peer-auth", "open"])?;
                    let [bind] = pos.as_slice() else {
                        return err("mesh serve needs exactly one bind address");
                    };
                    let next_hops = addr_list(&flags, "next-hop");
                    let upstreams = addr_list(&flags, "upstream");
                    if next_hops.is_empty() && upstreams.is_empty() {
                        return err("mesh serve needs at least one --upstream or --next-hop peer");
                    }
                    Ok(Command::MeshServe {
                        bind: bind.clone(),
                        opts: proto_opts(&flags)?,
                        workers: get_num(&flags, "workers", 2)?,
                        seconds: get_num(&flags, "seconds", 0)?,
                        upstreams,
                        next_hops,
                        sources: addr_list(&flags, "source"),
                        probe_ms: get_num(&flags, "probe-ms", 200)?,
                        peer_budget: get_num(&flags, "peer-budget", 1 << 20)?,
                        open: flags.contains_key("open"),
                    })
                }
                "peers" => {
                    let (pos, flags) = split(rest, &["json"])?;
                    let [addr] = pos.as_slice() else {
                        return err("mesh peers needs exactly one relay address");
                    };
                    Ok(Command::MeshPeers {
                        addr: addr.clone(),
                        timeout_ms: get_num(&flags, "timeout-ms", 2000)?,
                        json: flags.contains_key("json"),
                    })
                }
                other => err(format!("unknown mesh verb '{other}' (serve|peers)")),
            }
        }
        "loadgen" => {
            let (pos, flags) = split(rest, &["quick", "json"])?;
            if !pos.is_empty() {
                return err(format!(
                    "loadgen takes no positional arguments, got '{}'",
                    pos[0]
                ));
            }
            let quick = flags.contains_key("quick");
            let (d_workers, d_senders, d_flows, d_seconds) = if quick {
                (2, 2, 8, 0.5)
            } else {
                (4, 4, 16, 2.0)
            };
            Ok(Command::Loadgen {
                workers: get_num(&flags, "workers", d_workers)?,
                senders: get_num(&flags, "senders", d_senders)?,
                flows: get_num(&flags, "flows", d_flows)?,
                payload: get_num(&flags, "payload", 256)?,
                seconds: get_num(&flags, "seconds", d_seconds)?,
                shards: get_num(&flags, "shards", 64)?,
                quick,
                json: flags.contains_key("json"),
            })
        }
        "trace" => {
            let (pos, _flags) = split(rest, &[])?;
            let [file] = pos.as_slice() else {
                return err("trace needs exactly one FILE ('-' for stdin)");
            };
            Ok(Command::Trace { file: file.clone() })
        }
        "sim" => {
            let (pos, flags) = split(rest, &["reliable", "trace", "require-peer-auth"])?;
            if !pos.is_empty() {
                return err(format!(
                    "sim takes no positional arguments, got '{}'",
                    pos[0]
                ));
            }
            let mut o = SimOpts {
                proto: proto_opts(&flags)?,
                ..SimOpts::default()
            };
            o.relays = get_num(&flags, "relays", o.relays)?;
            o.messages = get_num(&flags, "messages", o.messages)?;
            o.batch = get_num(&flags, "batch", o.batch)?;
            o.loss = get_num(&flags, "loss", o.loss)?;
            o.seconds = get_num(&flags, "seconds", o.seconds)?;
            o.payload = get_num(&flags, "payload", o.payload)?;
            o.seed = get_num(&flags, "seed", o.seed)?;
            o.trace = flags.contains_key("trace");
            if let Some(d) = flags.get("device") {
                o.device = d.clone();
            }
            if let Some(m) = flags.get("mode") {
                o.mode = parse_mode(m, o.batch)?;
            }
            Ok(Command::Sim(o))
        }
        other => err(format!("unknown subcommand '{other}'; try 'alpha help'")),
    }
}

/// The help text.
#[must_use]
pub fn usage() -> &'static str {
    "alpha — ALPHA hop-by-hop authentication (CoNEXT 2008) tooling

USAGE:
  alpha keygen --out FILE [--scheme rsa|ecdsa] [--bits N]
  alpha listen BIND [--seconds N] [--alg sha1|sha256|mmo] [--reliable]
               [--mac hmac|prefix] [--identity FILE] [--require-peer-auth]
  alpha send PEER MSG... [--mode base|c|m|cm] [--bind ADDR] [--alg A]
               [--reliable] [--mac hmac|prefix] [--identity FILE]
  alpha relay BIND LEFT RIGHT [--seconds N] [--strict]
  alpha engine serve BIND [--workers N] [--shards N] [--seconds N] [--alg A]
               [--mac hmac|prefix] [--reliable] [--s1-budget BYTES]
               [--max-buffered BYTES] [--route LEFT=RIGHT] [--adapt]
               [--hibernate-after MS] [--frozen-budget BYTES]
  alpha engine stats ADDR [--timeout-ms N] [--json]
  alpha mesh serve BIND --next-hop A[,B...] [--upstream A[,B...]]
               [--source A[,B...]] [--workers N] [--probe-ms N]
               [--peer-budget BYTES] [--seconds N] [--alg A]
               [--mac hmac|prefix] [--reliable] [--open]
  alpha mesh peers ADDR [--timeout-ms N] [--json]
  alpha loadgen [--workers N] [--senders N] [--flows N] [--payload BYTES]
               [--seconds N] [--shards N] [--quick] [--json]
  alpha trace FILE|-   (summarize a JSON-lines trace from 'alpha sim --trace')
  alpha sim [--relays N] [--messages N] [--batch N] [--mode base|c|m|cm]
            [--loss P] [--alg A] [--reliable] [--mac hmac|prefix]
            [--device xeon|n770|ar2315|bcm5365|geode|cc2430]
            [--payload BYTES] [--seconds N] [--seed N] [--trace]

EXAMPLES:
  alpha listen 0.0.0.0:7001 --seconds 30
  alpha send 192.0.2.7:7001 'hello' 'world' --mode c
  alpha relay 0.0.0.0:7000 192.0.2.1:6000 192.0.2.7:7001
  alpha sim --relays 3 --device cc2430 --alg mmo --mac prefix --loss 0.02
  alpha engine serve 0.0.0.0:7000 --workers 8 --shards 16
  alpha engine stats 192.0.2.9:7000
  alpha mesh serve 0.0.0.0:7100 --upstream 192.0.2.1:7000 \\
        --next-hop 192.0.2.9:7200,192.0.2.10:7200 --source 192.0.2.1:7000
  alpha mesh peers 192.0.2.9:7100
  alpha loadgen --workers 4 --senders 4 --seconds 5 --json

'alpha loadgen' saturates a live multi-worker engine over loopback:
N sender threads each drive concurrent flows through full S1/A1/S2
exchanges, and the verified-S2 rate is measured only after every flow
has finished its handshake.

A mesh relay verifies every hop: it only accepts S2 traffic from its
registered --upstream peers (the paper's static-relay-set defense),
probes its peers for liveness, and fails live flows over from the
primary --next-hop to a standby when the primary stops answering.
"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&v(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&v(&["send", "--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn keygen_parses() {
        let cmd = parse_args(&v(&[
            "keygen", "--out", "id.key", "--scheme", "rsa", "--bits", "512",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Keygen {
                scheme: "rsa".into(),
                out: "id.key".into(),
                bits: 512
            }
        );
        assert!(parse_args(&v(&["keygen"])).is_err());
        assert!(parse_args(&v(&["keygen", "--out", "x", "--scheme", "dsa"])).is_err());
    }

    #[test]
    fn send_defaults_mode_by_count() {
        let one = parse_args(&v(&["send", "1.2.3.4:7001", "hi"])).unwrap();
        match one {
            Command::Send { mode, .. } => assert_eq!(mode, Mode::Base),
            _ => panic!(),
        }
        let many = parse_args(&v(&["send", "1.2.3.4:7001", "a", "b", "c"])).unwrap();
        match many {
            Command::Send { mode, messages, .. } => {
                assert_eq!(mode, Mode::Cumulative);
                assert_eq!(messages.len(), 3);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn send_explicit_modes() {
        for (name, want) in [
            ("base", Mode::Base),
            ("c", Mode::Cumulative),
            ("m", Mode::Merkle),
        ] {
            let cmd = parse_args(&v(&["send", "h:1", "a", "--mode", name])).unwrap();
            match cmd {
                Command::Send { mode, .. } => assert_eq!(mode, want),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn listen_flags() {
        let cmd = parse_args(&v(&[
            "listen",
            "0.0.0.0:7001",
            "--reliable",
            "--alg",
            "mmo",
            "--mac",
            "prefix",
            "--seconds",
            "5",
        ]))
        .unwrap();
        match cmd {
            Command::Listen { opts, seconds, .. } => {
                assert_eq!(opts.alg, Algorithm::MmoAes);
                assert_eq!(opts.reliability, Reliability::Reliable);
                assert_eq!(opts.mac, MacScheme::Prefix);
                assert_eq!(seconds, 5);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn relay_positionals() {
        let cmd = parse_args(&v(&["relay", "b:1", "l:2", "r:3", "--strict"])).unwrap();
        match cmd {
            Command::Relay { strict: true, .. } => {}
            _ => panic!(),
        }
        assert!(parse_args(&v(&["relay", "b:1", "l:2"])).is_err());
    }

    #[test]
    fn sim_options() {
        let cmd = parse_args(&v(&[
            "sim",
            "--relays",
            "4",
            "--messages",
            "50",
            "--loss",
            "0.1",
            "--device",
            "cc2430",
            "--trace",
        ]))
        .unwrap();
        match cmd {
            Command::Sim(o) => {
                assert_eq!(o.relays, 4);
                assert_eq!(o.messages, 50);
                assert!((o.loss - 0.1).abs() < 1e-9);
                assert_eq!(o.device, "cc2430");
                assert!(o.trace);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn engine_subcommands_parse() {
        let cmd = parse_args(&v(&[
            "engine",
            "serve",
            "0.0.0.0:7000",
            "--workers",
            "8",
            "--shards",
            "16",
            "--route",
            "10.0.0.1:5000=10.0.0.2:6000",
            "--hibernate-after",
            "30000",
            "--frozen-budget",
            "1048576",
        ]))
        .unwrap();
        match cmd {
            Command::EngineServe {
                workers,
                shards,
                route,
                seconds,
                hibernate_after_ms,
                frozen_budget,
                ..
            } => {
                assert_eq!(workers, 8);
                assert_eq!(shards, 16);
                assert_eq!(seconds, 0);
                assert_eq!(
                    route,
                    Some(("10.0.0.1:5000".into(), "10.0.0.2:6000".into()))
                );
                assert_eq!(hibernate_after_ms, 30_000);
                assert_eq!(frozen_budget, 1 << 20);
            }
            _ => panic!(),
        }
        // Hibernation defaults: off, with a 256 MiB budget once enabled.
        let cmd = parse_args(&v(&["engine", "serve", "0.0.0.0:7000"])).unwrap();
        match cmd {
            Command::EngineServe {
                hibernate_after_ms,
                frozen_budget,
                ..
            } => {
                assert_eq!(hibernate_after_ms, 0);
                assert_eq!(frozen_budget, 256 << 20);
            }
            _ => panic!(),
        }
        let cmd = parse_args(&v(&["engine", "stats", "127.0.0.1:7000"])).unwrap();
        assert_eq!(
            cmd,
            Command::EngineStats {
                addr: "127.0.0.1:7000".into(),
                timeout_ms: 2000,
                json: false
            }
        );
        let cmd = parse_args(&v(&[
            "engine",
            "stats",
            "127.0.0.1:7000",
            "--json",
            "--timeout-ms",
            "50",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::EngineStats {
                addr: "127.0.0.1:7000".into(),
                timeout_ms: 50,
                json: true
            }
        );
        assert!(parse_args(&v(&["engine"])).is_err());
        assert!(parse_args(&v(&["engine", "restart"])).is_err());
        assert!(parse_args(&v(&["engine", "serve", "a:1", "--route", "nope"])).is_err());
    }

    #[test]
    fn mesh_subcommands_parse() {
        let cmd = parse_args(&v(&[
            "mesh",
            "serve",
            "0.0.0.0:7100",
            "--upstream",
            "10.0.0.1:7000",
            "--next-hop",
            "10.0.0.9:7200, 10.0.0.10:7200",
            "--source",
            "10.0.0.1:7000",
            "--probe-ms",
            "50",
            "--open",
        ]))
        .unwrap();
        match cmd {
            Command::MeshServe {
                bind,
                upstreams,
                next_hops,
                sources,
                probe_ms,
                open,
                workers,
                ..
            } => {
                assert_eq!(bind, "0.0.0.0:7100");
                assert_eq!(upstreams, vec!["10.0.0.1:7000".to_string()]);
                assert_eq!(
                    next_hops,
                    vec!["10.0.0.9:7200".to_string(), "10.0.0.10:7200".to_string()]
                );
                assert_eq!(sources, vec!["10.0.0.1:7000".to_string()]);
                assert_eq!(probe_ms, 50);
                assert_eq!(workers, 2);
                assert!(open);
            }
            _ => panic!(),
        }
        let cmd = parse_args(&v(&["mesh", "peers", "127.0.0.1:7100", "--json"])).unwrap();
        assert_eq!(
            cmd,
            Command::MeshPeers {
                addr: "127.0.0.1:7100".into(),
                timeout_ms: 2000,
                json: true
            }
        );
        assert!(parse_args(&v(&["mesh"])).is_err());
        assert!(parse_args(&v(&["mesh", "probe"])).is_err());
        // A relay with no peers at all is a configuration error.
        assert!(parse_args(&v(&["mesh", "serve", "0.0.0.0:7100"])).is_err());
    }

    #[test]
    fn loadgen_parses_with_quick_defaults() {
        let cmd = parse_args(&v(&["loadgen", "--quick"])).unwrap();
        assert_eq!(
            cmd,
            Command::Loadgen {
                workers: 2,
                senders: 2,
                flows: 8,
                payload: 256,
                seconds: 0.5,
                shards: 64,
                quick: true,
                json: false,
            }
        );
        let cmd = parse_args(&v(&[
            "loadgen",
            "--workers",
            "8",
            "--senders",
            "3",
            "--seconds",
            "1.5",
            "--json",
        ]))
        .unwrap();
        match cmd {
            Command::Loadgen {
                workers,
                senders,
                seconds,
                json,
                quick,
                ..
            } => {
                assert_eq!(workers, 8);
                assert_eq!(senders, 3);
                assert!((seconds - 1.5).abs() < 1e-9);
                assert!(json);
                assert!(!quick);
            }
            _ => panic!(),
        }
        assert!(parse_args(&v(&["loadgen", "extra"])).is_err());
        assert!(parse_args(&v(&["loadgen", "--workers", "many"])).is_err());
    }

    #[test]
    fn errors_are_messages_not_panics() {
        assert!(parse_args(&v(&["frobnicate"])).is_err());
        assert!(parse_args(&v(&["sim", "--loss"])).is_err());
        assert!(parse_args(&v(&["sim", "--loss", "lots"])).is_err());
        assert!(parse_args(&v(&["send", "host:1", "m", "--mode", "q"])).is_err());
    }
}
