#![warn(missing_docs)]

//! Library half of the `alpha` command-line tool: argument parsing and
//! subcommand implementations, factored out of `main` for testability.
//!
//! Subcommands:
//!
//! - `alpha keygen` — generate an RSA or ECDSA identity file for protected
//!   bootstrapping.
//! - `alpha listen` — receive ALPHA-protected messages over UDP.
//! - `alpha send` — send messages over UDP (Base / ALPHA-C / ALPHA-M).
//! - `alpha relay` — run a verifying middlebox between two hosts.
//! - `alpha sim` — run a simulated multi-hop scenario and print metrics.
//! - `alpha mesh serve` — run a mesh relay: hop-by-hop verification with
//!   a registered peer set, liveness probes, and next-hop failover.
//! - `alpha mesh peers` — query a relay's peer table and hop counters.

pub mod args;
pub mod commands;

pub use args::{parse_args, Command, ParseError};
