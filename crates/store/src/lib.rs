//! alpha-store: the flow lifecycle store.
//!
//! An engine serving a million associations cannot keep a million live
//! protocol machines resident: each one holds chain storage, buffered
//! pre-signatures and timer state. Most flows are idle at any instant,
//! so the engine freezes them (`alpha_core::freeze`) into compact byte
//! records — chain cursors and anchors, not element vectors — and parks
//! the records here until the next datagram wakes the flow.
//!
//! This crate is deliberately dumb about *what* the records are: it
//! stores opaque `Vec<u8>` blobs keyed by a caller-chosen flow key and
//! enforces exactly two policies:
//!
//! - [`FrozenStore`]: a dense slab arena with an intrusive LRU list and
//!   a configurable byte budget. Inserting past the budget evicts the
//!   coldest records and hands them back to the caller (which counts
//!   them and drops the flow for good).
//! - [`RenewalPacer`]: when thousands of hibernated flows wake in one
//!   burst, their chain-renewal deadlines must not align into a
//!   thundering herd of renewal handshakes. The pacer spreads deadlines
//!   with deterministic per-flow jitter and meters actual renewals
//!   through a global token bucket.
//!
//! Like the protocol crates, nothing here reads a clock or does I/O:
//! time arrives as caller-supplied microsecond counts, so engine tests
//! stay fully deterministic.
#![warn(missing_docs)]

use std::collections::HashMap;
use std::hash::Hash;

/// Intrusive-list null sentinel.
const NIL: u32 = u32::MAX;

/// Fixed per-record accounting overhead (bytes) added to each record's
/// length when charging the byte budget: slot links, hash-table entry
/// and the `Vec` header are real memory too, and at a million
/// ~200-byte records they are a double-digit share of the footprint.
pub const ENTRY_OVERHEAD: u64 = 64;

struct Slot<K> {
    key: K,
    record: Vec<u8>,
    /// Toward the most-recently-used end.
    prev: u32,
    /// Toward the least-recently-used end.
    next: u32,
}

/// A dense arena of frozen flow records with LRU eviction against a
/// byte budget.
///
/// Records live in a slab (`Vec<Slot>`) so a stable `u32` names each
/// one; a `HashMap` maps flow keys to slab indices and an intrusive
/// doubly linked list threads the slots in recency order. Insertion,
/// removal and the LRU bump are all O(1); eviction pops from the cold
/// tail.
///
/// The budget is a soft target: the record being inserted is never
/// evicted by its own insertion, so one record larger than the whole
/// budget is kept alone (and everything else is pushed out).
pub struct FrozenStore<K> {
    slots: Vec<Slot<K>>,
    free: Vec<u32>,
    index: HashMap<K, u32>,
    /// Most-recently-used slot.
    head: u32,
    /// Least-recently-used slot (eviction victim).
    tail: u32,
    bytes: u64,
    max_bytes: Option<u64>,
}

impl<K: Copy + Eq + Hash> FrozenStore<K> {
    /// An empty store. `max_bytes` of `None` disables eviction.
    #[must_use]
    pub fn new(max_bytes: Option<u64>) -> FrozenStore<K> {
        FrozenStore {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            max_bytes,
        }
    }

    /// Records resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no records are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Budgeted bytes currently charged (record lengths plus
    /// [`ENTRY_OVERHEAD`] each).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The configured byte budget, if any.
    #[must_use]
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Whether a record for `key` is resident.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    fn charge(record: &[u8]) -> u64 {
        record.len() as u64 + ENTRY_OVERHEAD
    }

    /// Unlink slot `i` from the recency list.
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    /// Link slot `i` at the most-recently-used end.
    fn link_front(&mut self, i: u32) {
        self.slots[i as usize].prev = NIL;
        self.slots[i as usize].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h as usize].prev = i,
        }
        self.head = i;
    }

    /// Detach slot `i` entirely, returning its key and record.
    fn pop_slot(&mut self, i: u32) -> (K, Vec<u8>) {
        self.unlink(i);
        let slot = &mut self.slots[i as usize];
        let key = slot.key;
        let record = std::mem::take(&mut slot.record);
        self.index.remove(&key);
        self.free.push(i);
        self.bytes -= Self::charge(&record);
        (key, record)
    }

    /// Insert (or replace) the record for `key`, marking it
    /// most-recently-used, then evict from the cold end until the store
    /// is back under budget. Evicted `(key, record)` pairs — never the
    /// one just inserted — are returned for the caller to account and
    /// discard.
    pub fn insert(&mut self, key: K, record: Vec<u8>) -> Vec<(K, Vec<u8>)> {
        if let Some(&i) = self.index.get(&key) {
            let slot = &mut self.slots[i as usize];
            self.bytes -= Self::charge(&slot.record);
            self.bytes += Self::charge(&record);
            slot.record = record;
            self.unlink(i);
            self.link_front(i);
        } else {
            self.bytes += Self::charge(&record);
            let i = match self.free.pop() {
                Some(i) => {
                    self.slots[i as usize] = Slot {
                        key,
                        record,
                        prev: NIL,
                        next: NIL,
                    };
                    i
                }
                None => {
                    let i = u32::try_from(self.slots.len()).expect("slab under 4Gi records");
                    self.slots.push(Slot {
                        key,
                        record,
                        prev: NIL,
                        next: NIL,
                    });
                    i
                }
            };
            self.index.insert(key, i);
            self.link_front(i);
        }
        let mut evicted = Vec::new();
        if let Some(budget) = self.max_bytes {
            while self.bytes > budget && self.tail != NIL && self.tail != self.head {
                let victim = self.tail;
                evicted.push(self.pop_slot(victim));
            }
        }
        evicted
    }

    /// Remove and return the record for `key` (the thaw path).
    pub fn remove(&mut self, key: &K) -> Option<Vec<u8>> {
        let i = *self.index.get(key)?;
        Some(self.pop_slot(i).1)
    }

    /// The key at the cold (next-to-evict) end, if any. Diagnostic.
    #[must_use]
    pub fn coldest(&self) -> Option<K> {
        (self.tail != NIL).then(|| self.slots[self.tail as usize].key)
    }
}

/// `splitmix64` finalizer: a cheap, well-mixed hash for deriving
/// per-flow jitter from a flow-key hash. Identical input, identical
/// output — restarts and replicas agree on every flow's offset.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Renewal-storm pacing configuration.
#[derive(Clone, Copy, Debug)]
pub struct PacerConfig {
    /// Maximum deterministic per-flow jitter added to a renewal
    /// deadline (µs). Spreads deadlines that would otherwise align.
    pub max_jitter_us: u64,
    /// Sustained global renewal admissions per second.
    pub rate_per_sec: u64,
    /// Bucket depth: renewals admitted instantly after an idle spell.
    pub burst: u64,
}

impl Default for PacerConfig {
    fn default() -> PacerConfig {
        PacerConfig {
            max_jitter_us: 2_000_000,
            rate_per_sec: 256,
            burst: 64,
        }
    }
}

/// Meters chain renewals so a synchronized wake of thousands of flows
/// does not become a renewal thundering herd.
///
/// Two independent mechanisms compose:
///
/// 1. [`RenewalPacer::jitter_us`] — a pure function of the flow key's
///    hash, bounded by [`PacerConfig::max_jitter_us`]. Callers add it
///    to every renewal deadline so deadlines de-align *before* any
///    contention exists.
/// 2. [`RenewalPacer::admit`] — a global token bucket (integer
///    micro-token arithmetic, no floats, no clock reads) consulted when
///    a deadline actually fires. A denied flow retries after a backoff;
///    the herd drains at the configured rate.
pub struct RenewalPacer {
    cfg: PacerConfig,
    /// Scaled tokens: one admission costs `SCALE` token-units.
    tokens: u64,
    last_refill_us: u64,
}

/// Token scale: admissions cost `SCALE`, refills accrue
/// `rate_per_sec * SCALE` per second.
const SCALE: u64 = 1_000_000;

impl RenewalPacer {
    /// A pacer with a full bucket.
    #[must_use]
    pub fn new(cfg: PacerConfig) -> RenewalPacer {
        RenewalPacer {
            cfg,
            tokens: cfg.burst.saturating_mul(SCALE),
            last_refill_us: 0,
        }
    }

    /// The pacer's configuration.
    #[must_use]
    pub fn config(&self) -> &PacerConfig {
        &self.cfg
    }

    /// Deterministic per-flow deadline jitter in
    /// `[0, max_jitter_us]`, derived from the flow key's stable hash.
    #[must_use]
    pub fn jitter_us(&self, key_hash: u64) -> u64 {
        if self.cfg.max_jitter_us == 0 {
            return 0;
        }
        mix64(key_hash) % (self.cfg.max_jitter_us + 1)
    }

    fn refill(&mut self, now_us: u64) {
        if now_us <= self.last_refill_us {
            return; // time never runs backwards for the bucket
        }
        let elapsed = now_us - self.last_refill_us;
        let earned = (elapsed as u128 * self.cfg.rate_per_sec as u128 * SCALE as u128
            / 1_000_000u128) as u64;
        // Only advance the refill cursor by the time actually converted
        // to tokens, so sub-token intervals are not rounded away.
        if earned > 0 {
            self.tokens = self
                .tokens
                .saturating_add(earned)
                .min(self.cfg.burst.saturating_mul(SCALE));
            self.last_refill_us = now_us;
        }
    }

    /// Try to admit one renewal at `now_us`. Returns `false` when the
    /// bucket is dry; the caller reschedules the flow's deadline.
    pub fn admit(&mut self, now_us: u64) -> bool {
        self.refill(now_us);
        if self.tokens >= SCALE {
            self.tokens -= SCALE;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(n: usize) -> Vec<u8> {
        vec![0xAB; n]
    }

    #[test]
    fn insert_remove_roundtrip_and_accounting() {
        let mut s: FrozenStore<u64> = FrozenStore::new(None);
        assert!(s.is_empty());
        assert!(s.insert(1, rec(100)).is_empty());
        assert!(s.insert(2, rec(50)).is_empty());
        assert_eq!(s.len(), 2);
        assert_eq!(s.bytes(), 150 + 2 * ENTRY_OVERHEAD);
        assert!(s.contains(&1));
        assert_eq!(s.remove(&1), Some(rec(100)));
        assert_eq!(s.remove(&1), None);
        assert_eq!(s.bytes(), 50 + ENTRY_OVERHEAD);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn replacement_rebills_and_bumps_recency() {
        let budget = 3 * (10 + ENTRY_OVERHEAD);
        let mut s: FrozenStore<u64> = FrozenStore::new(Some(budget));
        s.insert(1, rec(10));
        s.insert(2, rec(10));
        s.insert(3, rec(10));
        // Re-inserting 1 bumps it hot; inserting 4 must now evict 2.
        s.insert(1, rec(10));
        let evicted = s.insert(4, rec(10));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, 2);
        assert!(s.contains(&1) && s.contains(&3) && s.contains(&4));
    }

    #[test]
    fn eviction_is_lru_ordered_and_returns_records() {
        let budget = 2 * (8 + ENTRY_OVERHEAD);
        let mut s: FrozenStore<u32> = FrozenStore::new(Some(budget));
        assert!(s.insert(10, rec(8)).is_empty());
        assert!(s.insert(11, rec(8)).is_empty());
        assert_eq!(s.coldest(), Some(10));
        let ev = s.insert(12, rec(8));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0], (10, rec(8)));
        let ev = s.insert(13, rec(8));
        assert_eq!(ev[0].0, 11);
        assert_eq!(s.len(), 2);
        assert!(s.bytes() <= budget);
    }

    #[test]
    fn oversized_record_survives_alone() {
        let mut s: FrozenStore<u8> = FrozenStore::new(Some(200));
        s.insert(1, rec(10));
        s.insert(2, rec(10));
        // A record bigger than the whole budget evicts everything else
        // but is itself kept: the budget is a soft target.
        let ev = s.insert(3, rec(500));
        assert_eq!(ev.len(), 2);
        assert!(s.contains(&3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut s: FrozenStore<u64> = FrozenStore::new(None);
        for k in 0..64 {
            s.insert(k, rec(16));
        }
        for k in 0..64 {
            s.remove(&k);
        }
        for k in 64..128 {
            s.insert(k, rec(16));
        }
        assert_eq!(s.slots.len(), 64, "freed slots were reused");
        // The recency list survived the churn intact.
        assert_eq!(s.coldest(), Some(64));
        for k in 64..128 {
            assert_eq!(s.remove(&k), Some(rec(16)));
        }
        assert!(s.is_empty());
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RenewalPacer::new(PacerConfig {
            max_jitter_us: 1000,
            ..PacerConfig::default()
        });
        let mut seen = std::collections::HashSet::new();
        for k in 0..256u64 {
            let j = p.jitter_us(k);
            assert!(j <= 1000);
            assert_eq!(j, p.jitter_us(k), "same key, same jitter");
            seen.insert(j);
        }
        assert!(seen.len() > 64, "jitter actually spreads keys");
        let zero = RenewalPacer::new(PacerConfig {
            max_jitter_us: 0,
            ..PacerConfig::default()
        });
        assert_eq!(zero.jitter_us(42), 0);
    }

    #[test]
    fn token_bucket_meters_a_herd() {
        let mut p = RenewalPacer::new(PacerConfig {
            max_jitter_us: 0,
            rate_per_sec: 100,
            burst: 10,
        });
        // The initial burst admits instantly, then the bucket is dry.
        let admitted = (0..1000).filter(|_| p.admit(0)).count();
        assert_eq!(admitted, 10);
        // 100 ms later exactly 10 more tokens have accrued.
        let admitted = (0..1000).filter(|_| p.admit(100_000)).count();
        assert_eq!(admitted, 10);
        // Accrual is capped at the burst depth even after a long idle.
        let admitted = (0..1000).filter(|_| p.admit(3_600_000_000)).count();
        assert_eq!(admitted, 10);
        // Time moving backwards neither panics nor mints tokens.
        assert!(!p.admit(0));
    }

    #[test]
    fn sub_token_intervals_accumulate() {
        let mut p = RenewalPacer::new(PacerConfig {
            max_jitter_us: 0,
            rate_per_sec: 10, // one token per 100 ms
            burst: 1,
        });
        assert!(p.admit(0));
        // Polling every 10 ms must not lose the fractional refill.
        let mut admitted = 0;
        for ms in (10..=200).step_by(10) {
            if p.admit(ms * 1000) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 2, "two full tokens over 200 ms at 10/s");
    }
}
