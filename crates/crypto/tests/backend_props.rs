//! Backend equivalence properties: every digest backend must produce
//! output byte-identical to the scalar reference for every input shape.
//!
//! This suite is the test-coverage half of the safety argument for the
//! `unsafe` intrinsic blocks (see `crates/crypto/src/shani.rs` and
//! DESIGN.md §10): the intrinsics are only trusted because these sweeps
//! pin them to the scalar implementation across lane counts (1..9,
//! covering partial final sweeps), input lengths (0..3 blocks), and the
//! MD-padding block boundaries (55/56/63/64/65 bytes). ci.sh runs the
//! suite once with `ALPHA_DIGEST_BACKEND=scalar` and once auto-detected.

use alpha_crypto::backend;
use alpha_crypto::{hmac, Algorithm, Digest};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

const ALGS: [Algorithm; 3] = [Algorithm::Sha1, Algorithm::Sha256, Algorithm::MmoAes];

/// Block-boundary message lengths for 64-byte-block algorithms: 55/56
/// straddle the point where the MD length field no longer fits the final
/// block, 63/64/65 the block edge itself; 0/1 and multi-block round it out.
const EDGE_LENS: [usize; 9] = [0, 1, 55, 56, 63, 64, 65, 128, 192];

fn rand_msg(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut m = vec![0u8; len];
    rng.fill_bytes(&mut m);
    m
}

/// `digest_batch_using` vs the scalar one-shot hash, for every supported
/// backend, every algorithm, every edge length, lane counts 1..9.
#[test]
fn batched_digests_match_scalar_at_block_edges() {
    let mut rng = StdRng::seed_from_u64(0xb10c);
    for kind in backend::available() {
        for alg in ALGS {
            for len in EDGE_LENS {
                for lanes in 1..9usize {
                    let msgs: Vec<Vec<u8>> = (0..lanes).map(|_| rand_msg(&mut rng, len)).collect();
                    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
                    let mut out = vec![Digest::zero(alg); lanes];
                    backend::digest_batch_using(kind, alg, &refs, &mut out);
                    for (msg, got) in msgs.iter().zip(&out) {
                        assert_eq!(
                            *got,
                            alg.hash(msg),
                            "{kind:?} {alg} len={len} lanes={lanes}"
                        );
                    }
                }
            }
        }
    }
}

/// Random sweep: lengths drawn from 0..3 blocks, random lane counts.
#[test]
fn batched_digests_match_scalar_random_shapes() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for kind in backend::available() {
        for alg in ALGS {
            for _ in 0..64 {
                let lanes = rng.gen_range(1..9usize);
                let msgs: Vec<Vec<u8>> = (0..lanes)
                    .map(|_| {
                        let len = rng.gen_range(0..192usize); // 0..3 blocks
                        rand_msg(&mut rng, len)
                    })
                    .collect();
                let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
                let mut out = vec![Digest::zero(alg); lanes];
                backend::digest_batch_using(kind, alg, &refs, &mut out);
                for (msg, got) in msgs.iter().zip(&out) {
                    assert_eq!(*got, alg.hash(msg), "{kind:?} {alg} len={}", msg.len());
                }
            }
        }
    }
}

/// `mac_parts_batch_using` vs scalar `hmac::mac_parts`, all backends,
/// chain-element-sized keys, 1..=3 message parts, edge + random lengths.
#[test]
fn batched_hmacs_match_scalar() {
    let mut rng = StdRng::seed_from_u64(0xac5);
    for kind in backend::available() {
        for alg in ALGS {
            for _ in 0..48 {
                let lanes = rng.gen_range(1..9usize);
                // In ALPHA an HMAC key is always one chain element.
                let keys: Vec<Vec<u8>> = (0..lanes)
                    .map(|_| rand_msg(&mut rng, alg.digest_len()))
                    .collect();
                let parts: Vec<Vec<Vec<u8>>> = (0..lanes)
                    .map(|_| {
                        let n = rng.gen_range(1..=3usize);
                        (0..n)
                            .map(|_| {
                                let len = *EDGE_LENS
                                    .get(rng.gen_range(0..EDGE_LENS.len() + 1))
                                    .unwrap_or(&rng.gen_range(0..192usize));
                                rand_msg(&mut rng, len)
                            })
                            .collect()
                    })
                    .collect();
                let key_refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
                let part_refs: Vec<Vec<&[u8]>> = parts
                    .iter()
                    .map(|p| p.iter().map(Vec::as_slice).collect())
                    .collect();
                let msg_refs: Vec<&[&[u8]]> = part_refs.iter().map(Vec::as_slice).collect();
                let mut out = vec![Digest::zero(alg); lanes];
                backend::mac_parts_batch_using(kind, alg, &key_refs, &msg_refs, &mut out);
                for i in 0..lanes {
                    assert_eq!(
                        out[i],
                        hmac::mac_parts(alg, &keys[i], &part_refs[i]),
                        "{kind:?} {alg} lane {i}"
                    );
                }
            }
        }
    }
}

/// The convenience wrappers over the *active* backend agree with scalar
/// too (whatever `ALPHA_DIGEST_BACKEND` resolves to in this run).
#[test]
fn active_backend_wrappers_match_scalar() {
    let mut rng = StdRng::seed_from_u64(0xac71);
    for alg in ALGS {
        let msgs: Vec<Vec<u8>> = EDGE_LENS.iter().map(|&l| rand_msg(&mut rng, l)).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let mut out = vec![Digest::zero(alg); msgs.len()];
        backend::digest_batch(alg, &refs, &mut out);
        for (msg, got) in msgs.iter().zip(&out) {
            assert_eq!(*got, alg.hash(msg), "{alg} len={}", msg.len());
        }

        let keys: Vec<Vec<u8>> = msgs
            .iter()
            .map(|_| rand_msg(&mut rng, alg.digest_len()))
            .collect();
        let key_refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let mut macs = vec![Digest::zero(alg); msgs.len()];
        backend::mac_batch(alg, &key_refs, &refs, &mut macs);
        for i in 0..msgs.len() {
            assert_eq!(macs[i], hmac::mac(alg, &keys[i], &msgs[i]), "{alg} mac {i}");
        }
    }
}

/// Long keys (beyond one block) take the scalar pre-hash fallback; they
/// must still agree with scalar HMAC on every backend.
#[test]
fn long_key_hmac_fallback_matches_scalar() {
    let mut rng = StdRng::seed_from_u64(0x10f);
    for kind in backend::available() {
        for alg in [Algorithm::Sha1, Algorithm::Sha256] {
            let keys: Vec<Vec<u8>> = (0..4).map(|_| rand_msg(&mut rng, 100)).collect();
            let msgs: Vec<Vec<u8>> = (0..4).map(|_| rand_msg(&mut rng, 64)).collect();
            let key_refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
            let parts: Vec<[&[u8]; 1]> = msgs.iter().map(|m| [m.as_slice()]).collect();
            let msg_refs: Vec<&[&[u8]]> = parts.iter().map(|p| p.as_slice()).collect();
            let mut out = vec![Digest::zero(alg); 4];
            backend::mac_parts_batch_using(kind, alg, &key_refs, &msg_refs, &mut out);
            for i in 0..4 {
                assert_eq!(out[i], hmac::mac(alg, &keys[i], &msgs[i]), "{kind:?} {alg}");
            }
        }
    }
}
